"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network access, so
PEP 660 editable installs are unavailable; this file lets
``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
