"""Serialize and merge registries across process boundaries.

The sharded execution backend (:mod:`repro.parallel`) runs one
:class:`~repro.telemetry.registry.MetricsRegistry` per worker process.
Workers cannot tick the parent's samplers, so instead each batch response
carries a *cumulative dump* of the worker registry (:func:`dump_metrics`,
plain tuples — picklable, no registry objects cross the pipe) and the
parent folds the delta since the previous dump into its own registry under
an extra ``shard`` label (:func:`apply_dump`).

Counters merge by increment, gauges by last-write, histograms by per-bucket
delta (see :meth:`~repro.telemetry.registry.Histogram.merge_counts`), so a
parent registry scraped mid-run is always consistent: cumulative counts,
current gauge values, additive distributions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

#: One dumped instrument: (kind, name, labels, help, payload...).
MetricRow = tuple

#: Dump index key: (kind, name, labels).
RowKey = Tuple[str, str, tuple]


def dump_metrics(registry: MetricsRegistry) -> List[MetricRow]:
    """Flatten every instrument into picklable tuples (cumulative values)."""
    rows: List[MetricRow] = []
    for metric in registry.metrics():
        if isinstance(metric, Histogram):
            rows.append(("histogram", metric.name, metric.labels, metric.help,
                         tuple(metric.bounds), tuple(metric.bucket_counts),
                         metric.sum, metric.count))
        elif isinstance(metric, Counter):
            rows.append(("counter", metric.name, metric.labels, metric.help,
                         metric.value))
        elif isinstance(metric, Gauge):
            rows.append(("gauge", metric.name, metric.labels, metric.help,
                         metric.value))
    return rows


def _index(rows: Optional[List[MetricRow]]) -> Dict[RowKey, MetricRow]:
    if not rows:
        return {}
    return {(row[0], row[1], row[2]): row for row in rows}


def apply_dump(
    registry: MetricsRegistry,
    rows: List[MetricRow],
    previous: Optional[List[MetricRow]] = None,
    **extra_labels,
) -> None:
    """Fold a cumulative dump into ``registry`` as a delta since ``previous``.

    ``extra_labels`` (e.g. ``shard="2"``) are added to every instrument so
    dumps from different workers land on distinct series.  Passing the same
    dump twice with the correct ``previous`` is a no-op — the merge is
    idempotent over cumulative snapshots.
    """
    prior = _index(previous)
    for row in rows:
        kind, name, labels, help_text = row[0], row[1], row[2], row[3]
        all_labels = dict(labels)
        all_labels.update(extra_labels)
        before = prior.get((kind, name, labels))
        if kind == "counter":
            delta = row[4] - (before[4] if before else 0)
            if delta:
                registry.counter(name, help_text, **all_labels).inc(delta)
        elif kind == "gauge":
            registry.gauge(name, help_text, **all_labels).set(row[4])
        elif kind == "histogram":
            bounds, buckets, total, count = row[4], row[5], row[6], row[7]
            if before is not None:
                buckets = tuple(b - p for b, p in zip(buckets, before[5]))
                total -= before[6]
                count -= before[7]
            if count or any(buckets):
                hist = registry.histogram(name, help_text, bounds=bounds,
                                          **all_labels)
                hist.merge_counts(buckets, total, count)
