"""Serialize and merge registries across process boundaries.

The sharded execution backend (:mod:`repro.parallel`) runs one
:class:`~repro.telemetry.registry.MetricsRegistry` per worker process.
Workers cannot tick the parent's samplers, so instead each batch response
carries a *cumulative dump* of the worker registry (:func:`dump_metrics`,
plain tuples — picklable, no registry objects cross the pipe) and the
parent folds the delta since the previous dump into its own registry under
an extra ``shard`` label (:func:`apply_dump`).

Counters merge by increment, gauges by last-write, histograms by per-bucket
delta (see :meth:`~repro.telemetry.registry.Histogram.merge_counts`), so a
parent registry scraped mid-run is always consistent: cumulative counts,
current gauge values, additive distributions.

The same machinery aggregates a *fleet*: :func:`rows_from_prometheus`
reconstructs dump rows from a scraped ``/metrics`` text page (the inverse
of :func:`~repro.telemetry.exporters.to_prometheus`), and
:func:`aggregate_fleet` folds every node's page into one registry — each
instrument twice, once summed fleet-wide and once under a ``node`` label
for the per-node breakdown (``repro fleet-stats``).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

#: One dumped instrument: (kind, name, labels, help, payload...).
MetricRow = tuple

#: Dump index key: (kind, name, labels).
RowKey = Tuple[str, str, tuple]


def dump_metrics(registry: MetricsRegistry) -> List[MetricRow]:
    """Flatten every instrument into picklable tuples (cumulative values)."""
    rows: List[MetricRow] = []
    for metric in registry.metrics():
        if isinstance(metric, Histogram):
            rows.append(("histogram", metric.name, metric.labels, metric.help,
                         tuple(metric.bounds), tuple(metric.bucket_counts),
                         metric.sum, metric.count))
        elif isinstance(metric, Counter):
            rows.append(("counter", metric.name, metric.labels, metric.help,
                         metric.value))
        elif isinstance(metric, Gauge):
            rows.append(("gauge", metric.name, metric.labels, metric.help,
                         metric.value))
    return rows


def _index(rows: Optional[List[MetricRow]]) -> Dict[RowKey, MetricRow]:
    if not rows:
        return {}
    return {(row[0], row[1], row[2]): row for row in rows}


def apply_dump(
    registry: MetricsRegistry,
    rows: List[MetricRow],
    previous: Optional[List[MetricRow]] = None,
    **extra_labels,
) -> None:
    """Fold a cumulative dump into ``registry`` as a delta since ``previous``.

    ``extra_labels`` (e.g. ``shard="2"``) are added to every instrument so
    dumps from different workers land on distinct series.  Passing the same
    dump twice with the correct ``previous`` is a no-op — the merge is
    idempotent over cumulative snapshots.
    """
    prior = _index(previous)
    for row in rows:
        kind, name, labels, help_text = row[0], row[1], row[2], row[3]
        all_labels = dict(labels)
        all_labels.update(extra_labels)
        before = prior.get((kind, name, labels))
        if kind == "counter":
            delta = row[4] - (before[4] if before else 0)
            if delta:
                registry.counter(name, help_text, **all_labels).inc(delta)
        elif kind == "gauge":
            registry.gauge(name, help_text, **all_labels).set(row[4])
        elif kind == "histogram":
            bounds, buckets, total, count = row[4], row[5], row[6], row[7]
            if before is not None:
                buckets = tuple(b - p for b, p in zip(buckets, before[5]))
                total -= before[6]
                count -= before[7]
            if count or any(buckets):
                hist = registry.histogram(name, help_text, bounds=bounds,
                                          **all_labels)
                hist.merge_counts(buckets, total, count)


def rows_from_prometheus(text: str) -> List[MetricRow]:
    """Reconstruct dump rows from a Prometheus text exposition page.

    The inverse of :func:`~repro.telemetry.exporters.to_prometheus`, as
    far as the format allows: counters and gauges come back exactly;
    histograms are rebuilt from their cumulative ``_bucket`` series
    (finite ``le`` edges become the bounds, the ``+Inf`` series the
    overflow bucket, de-cumulated back to per-bucket counts) with
    ``_sum``/``_count`` riding along.  The rows feed straight into
    :func:`apply_dump`, which is how a scraped remote node's metrics
    merge into a local registry.
    """
    from repro.telemetry.exporters import parse_prometheus

    rows: List[MetricRow] = []
    # (base, labels-sans-le) -> {"le": {edge: cumulative}, "sum": x, ...}
    partial: Dict[Tuple[str, tuple], dict] = {}
    order: List[Tuple[str, tuple]] = []
    for sample in parse_prometheus(text):
        labels = tuple(sorted(sample.labels.items()))
        if sample.kind == "counter":
            rows.append(("counter", sample.name, labels, sample.help,
                         sample.value))
        elif sample.kind == "gauge":
            rows.append(("gauge", sample.name, labels, sample.help,
                         sample.value))
        elif sample.kind == "histogram":
            base = sample.name
            for suffix in ("_bucket", "_sum", "_count"):
                if base.endswith(suffix):
                    base = base[:-len(suffix)]
                    break
            bare = tuple(sorted((k, v) for k, v in sample.labels.items()
                                if k != "le"))
            key = (base, bare)
            if key not in partial:
                partial[key] = {"le": {}, "sum": 0.0, "count": 0,
                                "help": sample.help}
                order.append(key)
            slot = partial[key]
            if sample.name.endswith("_bucket"):
                slot["le"][float(sample.labels["le"])] = sample.value
            elif sample.name.endswith("_sum"):
                slot["sum"] = sample.value
            elif sample.name.endswith("_count"):
                slot["count"] = int(sample.value)
    for (base, labels) in order:
        slot = partial[(base, labels)]
        edges = sorted(slot["le"])
        cumulative = [slot["le"][edge] for edge in edges]
        if not edges or not math.isinf(edges[-1]):
            cumulative.append(float(slot["count"]))  # implicit +Inf
        else:
            edges = edges[:-1]
        counts = tuple(int(c - p) for c, p in
                       zip(cumulative, [0.0] + cumulative[:-1]))
        rows.append(("histogram", base, labels, slot["help"],
                     tuple(edges), counts, slot["sum"], slot["count"]))
    return rows


def aggregate_fleet(
    pages: Dict[str, str],
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Merge every node's scraped ``/metrics`` page into one registry.

    Each instrument lands twice: once under a ``node`` label (the
    per-node breakdown) and once unlabelled (the fleet-wide view,
    counters and histograms summed across nodes).  Gauges stay per-node
    only — summing one node's uptime with another's is not a fleet
    uptime, and last-write-wins across nodes is noise.
    """
    if registry is None:
        registry = MetricsRegistry()
    for name in sorted(pages):
        rows = rows_from_prometheus(pages[name])
        apply_dump(registry, rows, node=name)
        apply_dump(registry, [row for row in rows if row[0] != "gauge"])
    return registry
