"""The metrics registry: counters, gauges, and log-bucket histograms.

Zero dependencies, two implementations of one interface:

- :class:`MetricsRegistry` — a live registry.  ``counter``/``gauge``/
  ``histogram`` get-or-create named instruments (optionally labelled), and
  :meth:`MetricsRegistry.tick` fans a simulated-time pulse out to attached
  samplers (the bitmap filter ticks once per rotation, i.e. once per
  simulated Δt).
- :class:`NullRegistry` — the process-wide default.  Every accessor returns
  a shared no-op instrument and ``enabled`` is False, so instrumented
  components can skip their telemetry blocks entirely; the uninstrumented
  hot path pays one pointer comparison, nothing more.

The module-level default registry (:func:`get_registry` /
:func:`set_registry` / :func:`use_registry`) is what components capture at
construction time when no explicit registry is passed.
"""

from __future__ import annotations

import bisect
import math
import threading
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

LabelSet = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelSet:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_labels(labels: LabelSet) -> str:
    """Render a label set as the ``{k="v",...}`` suffix ("" when empty)."""
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + inner + "}"


def log_buckets(minimum: float, maximum: float, per_decade: int = 3) -> List[float]:
    """Fixed log-scale bucket bounds from ``minimum`` up to >= ``maximum``.

    ``per_decade`` bounds per factor of 10, log-uniformly spaced; the list
    always starts at ``minimum`` and ends at the first bound >= ``maximum``.
    """
    if minimum <= 0 or maximum <= minimum:
        raise ValueError("need 0 < minimum < maximum")
    if per_decade < 1:
        raise ValueError("need at least one bucket per decade")
    step = 10.0 ** (1.0 / per_decade)
    bounds = [minimum]
    while bounds[-1] < maximum:
        bounds.append(bounds[-1] * step)
    return bounds


#: Default histogram buckets: 1 µs to ~100 s, three per decade (wall times).
DEFAULT_TIME_BUCKETS = tuple(log_buckets(1e-6, 100.0, per_decade=3))


class Metric:
    """Common identity of one registered instrument."""

    kind = "untyped"

    __slots__ = ("name", "labels", "help")

    def __init__(self, name: str, labels: LabelSet = (), help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help

    @property
    def full_name(self) -> str:
        return self.name + format_labels(self.labels)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.full_name!r})"


class Counter(Metric):
    """A monotonically increasing count."""

    kind = "counter"

    __slots__ = ("_value",)

    def __init__(self, name: str, labels: LabelSet = (), help: str = ""):
        super().__init__(name, labels, help)
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge(Metric):
    """A value that can go up and down."""

    kind = "gauge"

    __slots__ = ("_value",)

    def __init__(self, name: str, labels: LabelSet = (), help: str = ""):
        super().__init__(name, labels, help)
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram(Metric):
    """A distribution over fixed log-scale buckets.

    ``bounds`` are upper bucket edges (ascending); an implicit +Inf bucket
    catches the overflow.  ``observe`` is O(log #buckets) via bisection.
    """

    kind = "histogram"

    __slots__ = ("bounds", "bucket_counts", "_sum", "_count")

    def __init__(self, name: str, labels: LabelSet = (), help: str = "",
                 bounds: Sequence[float] = DEFAULT_TIME_BUCKETS):
        super().__init__(name, labels, help)
        bounds = list(bounds)
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be strictly ascending")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # trailing +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else math.nan

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper edge of the bucket)."""
        if not 0 <= q <= 1:
            raise ValueError("quantile must be in [0, 1]")
        if not self._count:
            return math.nan
        target = q * self._count
        running = 0
        for i, n in enumerate(self.bucket_counts):
            running += n
            if running >= target:
                return self.bounds[i] if i < len(self.bounds) else math.inf
        return math.inf

    def merge_counts(self, bucket_deltas: Sequence[int], sum_delta: float,
                     count_delta: int) -> None:
        """Fold pre-aggregated observations in (cross-process merges).

        ``bucket_deltas`` must use this histogram's bucket layout (same
        bounds, trailing +Inf bucket included).
        """
        if len(bucket_deltas) != len(self.bucket_counts):
            raise ValueError(
                f"bucket layout mismatch: {len(bucket_deltas)} deltas for "
                f"{len(self.bucket_counts)} buckets")
        for i, delta in enumerate(bucket_deltas):
            self.bucket_counts[i] += delta
        self._sum += sum_delta
        self._count += count_delta


class MetricsRegistry:
    """A live registry of named instruments plus simulated-time samplers."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelSet], Metric] = {}
        self._samplers: List[object] = []
        self._lock = threading.Lock()

    # -- instrument accessors (get-or-create) --------------------------------

    def _get_or_create(self, factory: Callable[..., Metric], name: str,
                       help: str, labels: Dict[str, object],
                       **kwargs) -> Metric:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory(name, key[1], help, **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, factory):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  bounds: Sequence[float] = DEFAULT_TIME_BUCKETS,
                  **labels) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels,
                                   bounds=bounds)

    # -- introspection ----------------------------------------------------------

    def metrics(self) -> Iterator[Metric]:
        """All registered instruments, in registration order."""
        return iter(list(self._metrics.values()))

    def get(self, name: str, **labels) -> Optional[Metric]:
        """The registered instrument with this name/labels, or None."""
        return self._metrics.get((name, _label_key(labels)))

    def snapshot(self) -> Dict[str, float]:
        """Current value of every counter and gauge, keyed by full name.

        Histograms contribute their ``_count`` and ``_sum`` as two scalar
        entries so a snapshot row is always flat.
        """
        out: Dict[str, float] = {}
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                out[metric.full_name + "_count"] = metric.count
                out[metric.full_name + "_sum"] = metric.sum
            else:
                out[metric.full_name] = metric.value  # type: ignore[attr-defined]
        return out

    # -- simulated-time sampling ----------------------------------------------

    def add_sampler(self, sampler) -> None:
        """Attach a sampler: ``sampler.on_tick(ts, registry)`` per tick."""
        self._samplers.append(sampler)

    def remove_sampler(self, sampler) -> None:
        self._samplers.remove(sampler)

    def tick(self, ts: float) -> None:
        """Pulse attached samplers at simulated time ``ts``.

        Instrumented components call this on every Δt boundary they own
        (the bitmap filter: once per rotation), giving samplers a
        simulated-time series without any wall-clock machinery.
        """
        for sampler in self._samplers:
            sampler.on_tick(ts, self)


class _NullInstrument:
    """Absorbs every instrument mutation; shared by all null metrics."""

    __slots__ = ()

    name = "null"
    labels: LabelSet = ()
    help = ""
    kind = "null"
    full_name = "null"
    value = 0
    sum = 0.0
    count = 0
    bounds: List[float] = []
    bucket_counts: List[int] = []

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """The default no-op registry: nothing is recorded, nothing is kept."""

    enabled = False

    def counter(self, name: str, help: str = "", **labels):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", **labels):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "",
                  bounds: Sequence[float] = DEFAULT_TIME_BUCKETS,
                  **labels):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def add_sampler(self, sampler) -> None:
        pass

    def tick(self, ts: float) -> None:
        pass


#: The shared default: telemetry off unless a live registry is installed.
NULL_REGISTRY = NullRegistry()

_default_registry: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The registry components capture when none is passed explicitly."""
    return _default_registry


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` as the process default (None → the null one).

    Returns the previously installed registry so callers can restore it.
    """
    global _default_registry
    previous = _default_registry
    _default_registry = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def use_registry(registry: Optional[MetricsRegistry] = None):
    """Scoped :func:`set_registry`: yields the registry, restores on exit."""
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
