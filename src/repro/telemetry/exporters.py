"""Exporters: Prometheus text format and JSON-lines simulated-time series.

:func:`to_prometheus` renders a whole registry in the Prometheus text
exposition format (``# HELP`` / ``# TYPE`` headers, cumulative histogram
buckets with an ``+Inf`` edge).

:class:`JsonLinesSampler` attaches to a registry and, on every simulated-Δt
tick (see :meth:`~repro.telemetry.registry.MetricsRegistry.tick`), appends
one JSON object holding the snapshot — cumulative counter/gauge values plus
per-interval counter deltas — giving a replayable time series of the run.
:class:`LiveSummarySampler` prints a compact one-line summary every N ticks
for interactive runs (``repro stats``).

:func:`parse_prometheus` is the inverse of :func:`to_prometheus` — it reads
text exposition back into plain sample dicts, which is what lets
``repro stats --from-url`` pretty-print a live daemon's ``/metrics`` page
without any client library.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, TextIO

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_labels,
)


def _format_value(value: float) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
    return repr(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render every registered metric in Prometheus text exposition format."""
    by_name: Dict[str, List] = {}
    order: List[str] = []
    for metric in registry.metrics():
        if metric.name not in by_name:
            by_name[metric.name] = []
            order.append(metric.name)
        by_name[metric.name].append(metric)

    lines: List[str] = []
    for name in order:
        group = by_name[name]
        first = group[0]
        if first.help:
            lines.append(f"# HELP {name} {first.help}")
        lines.append(f"# TYPE {name} {first.kind}")
        for metric in group:
            suffix = format_labels(metric.labels)
            if isinstance(metric, (Counter, Gauge)):
                lines.append(f"{name}{suffix} {_format_value(metric.value)}")
            elif isinstance(metric, Histogram):
                label_items = list(metric.labels)
                cumulative = 0
                for bound, count in zip(
                    list(metric.bounds) + [math.inf], metric.bucket_counts
                ):
                    cumulative += count
                    bucket_labels = format_labels(
                        tuple(label_items + [("le", _format_value(float(bound)))])
                    )
                    lines.append(f"{name}_bucket{bucket_labels} {cumulative}")
                lines.append(f"{name}_sum{suffix} {_format_value(metric.sum)}")
                lines.append(f"{name}_count{suffix} {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


@dataclass
class PromSample:
    """One parsed sample line of a Prometheus text exposition page."""

    name: str
    labels: Dict[str, str]
    value: float
    kind: str = "untyped"
    help: str = ""

    @property
    def full_name(self) -> str:
        return self.name + format_labels(tuple(sorted(self.labels.items())))


_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_label_block(block: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    for key, raw in _LABEL_RE.findall(block):
        labels[key] = raw.replace(r"\"", '"').replace(r"\n", "\n") \
            .replace("\\\\", "\\")
    return labels


def parse_prometheus(text: str) -> List[PromSample]:
    """Parse text exposition format into a flat list of samples.

    Handles ``# HELP``/``# TYPE`` headers (attached to the samples that
    follow), labelled and unlabelled samples, and the ``+Inf``/``NaN``
    value spellings.  Histogram series come back as their underlying
    ``_bucket``/``_sum``/``_count`` samples — flat and greppable, which is
    all the CLI summary needs.  Malformed lines raise :class:`ValueError`
    with the offending line number.
    """
    kinds: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    samples: List[PromSample] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                target = kinds if parts[1] == "TYPE" else helps
                target[parts[2]] = parts[3] if len(parts) > 3 else ""
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            block, _, value_text = rest.rpartition("}")
            labels = _parse_label_block(block)
        else:
            pieces = line.split()
            if len(pieces) < 2:
                raise ValueError(
                    f"line {lineno}: sample without a value: {line!r}")
            name, value_text = pieces[0], pieces[1]
            labels = {}
        name = name.strip()
        value_text = value_text.split()[0] if value_text.split() else ""
        try:
            value = float(value_text.replace("+Inf", "inf")
                          .replace("-Inf", "-inf"))
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: bad sample value {value_text!r}") from exc
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in kinds:
                base = name[:-len(suffix)]
                break
        samples.append(PromSample(
            name=name, labels=labels, value=value,
            kind=kinds.get(base, "untyped"), help=helps.get(base, "")))
    return samples


def summarize_prometheus(text: str, prefix: str = "") -> str:
    """A human-readable table of a metrics page (``repro stats --from-url``).

    Histogram bucket series are folded into one ``name: count=…, sum=…``
    line; counters and gauges print their value per label set.  ``prefix``
    filters by metric-name prefix (e.g. ``repro_serve_``).
    """
    samples = [s for s in parse_prometheus(text)
               if s.name.startswith(prefix)]
    lines: List[str] = []
    seen_histograms: set = set()
    for sample in samples:
        if sample.kind == "histogram":
            base = sample.name
            for suffix in ("_bucket", "_sum", "_count"):
                if base.endswith(suffix):
                    base = base[:-len(suffix)]
            key = (base, tuple(sorted(
                (k, v) for k, v in sample.labels.items() if k != "le")))
            if key in seen_histograms:
                continue
            seen_histograms.add(key)
            label_part = format_labels(key[1])
            total = sum(s.value for s in samples
                        if s.name == base + "_count"
                        and tuple(sorted(s.labels.items())) == key[1])
            total_sum = sum(s.value for s in samples
                            if s.name == base + "_sum"
                            and tuple(sorted(s.labels.items())) == key[1])
            mean = total_sum / total if total else math.nan
            lines.append(f"{base}{label_part}  count={int(total)}  "
                         f"sum={total_sum:g}  mean={mean:g}")
        else:
            lines.append(f"{sample.full_name}  {_format_value(sample.value)}")
    return "\n".join(lines)


class JsonLinesSampler:
    """Snapshot the registry into one JSON object per simulated-Δt tick.

    Each row carries the tick's simulated timestamp, the cumulative value
    of every counter and gauge, and per-interval deltas for the counters —
    so ``deltas`` reads directly as "admits/drops/rotations this Δt".
    Attach with ``registry.add_sampler(sampler)``; rows accumulate in
    ``rows`` and are optionally streamed to ``stream`` as they happen.
    """

    def __init__(self, stream: Optional[TextIO] = None):
        self.stream = stream
        self.rows: List[dict] = []
        self._last_counters: Dict[str, float] = {}

    def on_tick(self, ts: float, registry: MetricsRegistry) -> None:
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        for metric in registry.metrics():
            if isinstance(metric, Counter):
                counters[metric.full_name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[metric.full_name] = metric.value
        deltas = {
            name: value - self._last_counters.get(name, 0)
            for name, value in counters.items()
        }
        self._last_counters = counters
        row = {"ts": ts, "counters": counters, "deltas": deltas,
               "gauges": gauges}
        self.rows.append(row)
        if self.stream is not None:
            self.stream.write(json.dumps(row, sort_keys=True) + "\n")

    def to_jsonl(self) -> str:
        """All rows as newline-delimited JSON (one object per line)."""
        return "".join(json.dumps(row, sort_keys=True) + "\n"
                       for row in self.rows)


class LiveSummarySampler:
    """Print a one-line summary of selected counters every ``every`` ticks.

    ``watch`` maps display keys to metric-name *prefixes*; each summary
    line shows the per-interval delta summed over every counter whose full
    name starts with the prefix.  The default watches the admission
    headline: admits, drops, marks, rotations.
    """

    DEFAULT_WATCH = {
        "admits": "repro_filter_admits_total",
        "drops": "repro_filter_drops_total",
        "marks": "repro_filter_marks_total",
        "rotations": "repro_filter_rotations_total",
    }

    def __init__(self, every: int = 1,
                 watch: Optional[Dict[str, str]] = None,
                 emit: Callable[[str], None] = print):
        if every < 1:
            raise ValueError("summary interval must be at least one tick")
        self.every = every
        self.watch = dict(watch) if watch is not None else dict(self.DEFAULT_WATCH)
        self.emit = emit
        self.ticks = 0
        self._last: Dict[str, float] = {}

    def _totals(self, registry: MetricsRegistry) -> Dict[str, float]:
        totals = {key: 0.0 for key in self.watch}
        for metric in registry.metrics():
            if not isinstance(metric, Counter):
                continue
            for key, prefix in self.watch.items():
                if metric.full_name.startswith(prefix):
                    totals[key] += metric.value
        return totals

    def on_tick(self, ts: float, registry: MetricsRegistry) -> None:
        self.ticks += 1
        if self.ticks % self.every:
            return
        totals = self._totals(registry)
        parts = [f"t={ts:9.1f}s"]
        for key, total in totals.items():
            delta = total - self._last.get(key, 0.0)
            parts.append(f"{key}={int(delta):>8} (Σ{int(total)})")
        self._last = totals
        self.emit("  ".join(parts))
