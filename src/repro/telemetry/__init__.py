"""Runtime telemetry: metrics registry, profiling hooks, and exporters.

The package gives the running system the observability layer the paper's
operational claims need (O(1) admission, bounded memory, Δt-periodic
rotation): counters, gauges, and fixed log-scale-bucket histograms in a
zero-dependency :class:`MetricsRegistry`, plus lightweight profiling
(:class:`Timer` / :func:`profiled`) and exporters (Prometheus text format,
JSON-lines time series sampled every simulated Δt).

Instrumentation is optional by design: the process-wide default registry is
:data:`NULL_REGISTRY`, whose instruments are shared no-op singletons, and
every instrumented hot path guards its telemetry behind a single ``is not
None`` check so the uninstrumented fast path pays nothing.  Install a live
registry with :func:`set_registry` or scoped via :func:`use_registry`::

    from repro import telemetry

    with telemetry.use_registry(telemetry.MetricsRegistry()) as registry:
        run_fig5(SMALL)
        print(telemetry.to_prometheus(registry))
"""

from repro.telemetry.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    log_buckets,
    set_registry,
    use_registry,
)
from repro.telemetry.profiling import (
    StageTimings,
    Timer,
    current_profile,
    profile_run,
    profiled,
)
from repro.telemetry.exporters import (
    JsonLinesSampler,
    LiveSummarySampler,
    PromSample,
    parse_prometheus,
    summarize_prometheus,
    to_prometheus,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLinesSampler",
    "LiveSummarySampler",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "PromSample",
    "StageTimings",
    "Timer",
    "current_profile",
    "get_registry",
    "log_buckets",
    "parse_prometheus",
    "profile_run",
    "profiled",
    "set_registry",
    "summarize_prometheus",
    "to_prometheus",
    "use_registry",
]
