"""Lightweight profiling: per-stage wall-time breakdowns for experiments.

A :class:`StageTimings` is an ordered accumulation of named stage
durations.  :func:`profile_run` pushes one onto a thread-local stack;
:class:`Timer` (a context manager) and :func:`profiled` (a decorator)
record into whatever profile is active, so library code can be annotated
once and pay two ``perf_counter`` calls per stage whether or not anyone is
collecting — per *stage*, never per packet.

    with profile_run() as timings:
        with Timer("generate"):
            trace = generate_trace(scale)
        run_filter_on_trace(filt, trace)   # annotated internally
    print(timings.report())
"""

from __future__ import annotations

import functools
import threading
import time
from typing import Callable, Dict, Iterator, List, Optional, Tuple


class StageTimings:
    """Ordered per-stage wall-time accumulation (seconds)."""

    def __init__(self) -> None:
        self._stages: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}

    def add(self, stage: str, seconds: float) -> None:
        self._stages[stage] = self._stages.get(stage, 0.0) + seconds
        self._calls[stage] = self._calls.get(stage, 0) + 1

    def get(self, stage: str) -> float:
        return self._stages.get(stage, 0.0)

    def calls(self, stage: str) -> int:
        return self._calls.get(stage, 0)

    @property
    def total(self) -> float:
        return sum(self._stages.values())

    def items(self) -> Iterator[Tuple[str, float]]:
        return iter(self._stages.items())

    def as_dict(self) -> Dict[str, float]:
        return dict(self._stages)

    def __len__(self) -> int:
        return len(self._stages)

    def __contains__(self, stage: str) -> bool:
        return stage in self._stages

    def report(self, title: str = "stage breakdown") -> str:
        """Render the breakdown as an aligned text table."""
        if not self._stages:
            return f"{title}: (no stages recorded)"
        total = self.total
        width = max(len(stage) for stage in self._stages)
        lines = [f"{title} (total {total:.3f}s):"]
        for stage, seconds in self._stages.items():
            share = seconds / total * 100.0 if total else 0.0
            calls = self._calls[stage]
            lines.append(
                f"  {stage:<{width}}  {seconds:>9.4f}s  {share:>5.1f}%"
                f"  ({calls} call{'s' if calls != 1 else ''})"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:.4f}s" for k, v in self._stages.items())
        return f"StageTimings({inner})"


class _ProfileStack(threading.local):
    def __init__(self) -> None:
        self.stack: List[StageTimings] = []


_profiles = _ProfileStack()


def current_profile() -> Optional[StageTimings]:
    """The innermost active profile, or None when nothing is collecting."""
    stack = _profiles.stack
    return stack[-1] if stack else None


class profile_run:
    """Context manager collecting stage timings for everything inside it."""

    def __init__(self, timings: Optional[StageTimings] = None):
        self.timings = timings if timings is not None else StageTimings()

    def __enter__(self) -> StageTimings:
        _profiles.stack.append(self.timings)
        return self.timings

    def __exit__(self, *exc) -> None:
        _profiles.stack.pop()


class Timer:
    """Measure one stage: records into the active profile (if any) on exit.

    Usable standalone too — ``elapsed`` holds the duration after exit::

        with Timer("filter") as t:
            filt.process_batch(packets)
        print(t.elapsed)
    """

    __slots__ = ("stage", "timings", "elapsed", "_start")

    def __init__(self, stage: str, timings: Optional[StageTimings] = None):
        self.stage = stage
        self.timings = timings
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start
        target = self.timings if self.timings is not None else current_profile()
        if target is not None:
            target.add(self.stage, self.elapsed)


def profiled(stage: Optional[str] = None) -> Callable:
    """Decorator form of :class:`Timer`: times every call of the function.

    ``stage`` defaults to the function's qualified name.  Works bare or
    with an argument::

        @profiled()
        def score(...): ...

        @profiled("filter")
        def run_batch(...): ...
    """
    if callable(stage):  # @profiled without parentheses
        func, stage = stage, None
        return profiled(None)(func)

    def decorate(func: Callable) -> Callable:
        name = stage if stage is not None else func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with Timer(name):
                return func(*args, **kwargs)

        return wrapper

    return decorate
