"""Trace-driven simulation: engine, routers, topology, evaluation pipeline.

- :mod:`repro.sim.engine` — a discrete-event timeline (heap of timer events
  interleaved with packet streams).
- :mod:`repro.sim.router` — an edge-router model wiring a filter, link
  accounting, and APD indicators together.
- :mod:`repro.sim.topology` — the ISP graph of Figure 1 and filter-placement
  validation.
- :mod:`repro.sim.pipeline` — the experiment harness: trace -> filter ->
  labelled verdicts -> per-second metrics.
- :mod:`repro.sim.metrics` — confusion counts and time series.
"""

from repro.sim.engine import SimulationEngine, TimerEvent
from repro.sim.metrics import ConfusionCounts, FilterRunResult, PerSecondSeries
from repro.sim.pipeline import run_filter_on_trace
from repro.sim.router import EdgeRouter
from repro.sim.topology import IspTopology, NodeKind

__all__ = [
    "SimulationEngine",
    "TimerEvent",
    "ConfusionCounts",
    "FilterRunResult",
    "PerSecondSeries",
    "run_filter_on_trace",
    "EdgeRouter",
    "IspTopology",
    "NodeKind",
]
