"""A small discrete-event timeline for packet + timer co-simulation.

Most experiments only need the batch pipeline, but router-level scenarios
(APD indicators sampling link state, staged attacks, multiple filters with
different clocks) need interleaved timer events.  :class:`SimulationEngine`
merges any number of packet streams with scheduled timer events and delivers
both, in timestamp order, to registered handlers.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional

from repro.net.packet import Packet, PacketArray
from repro.telemetry.registry import get_registry

PacketHandler = Callable[[Packet], None]
TimerHandler = Callable[[float], None]


class OutOfOrderPacketError(ValueError):
    """A packet's timestamp went backwards past already-fired timers."""


@dataclass(order=True)
class TimerEvent:
    """A scheduled callback, optionally recurring."""

    ts: float
    seq: int = field(compare=True)
    handler: TimerHandler = field(compare=False)
    interval: Optional[float] = field(default=None, compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)


class SimulationEngine:
    """Merges packet streams and timers into one ordered event loop.

    ``reorder_tolerance`` selects the out-of-order policy: ``None`` (the
    default) raises :class:`OutOfOrderPacketError` for any packet whose
    timestamp precedes the current clock — a late packet would otherwise
    silently rewind ``now`` past timers that already fired.  A float value
    opts into tolerating up to that many seconds of reordering: late packets
    within the bound are delivered at the *current* clock (timers never
    rewind), matching how a real filter judges a reordered packet against
    present bitmap state.  The packet-reordering fault injector uses this.
    """

    def __init__(self, start_time: float = 0.0,
                 reorder_tolerance: Optional[float] = None,
                 backend: str = "serial",
                 workers: Optional[int] = None):
        if reorder_tolerance is not None and reorder_tolerance < 0:
            raise ValueError("reorder tolerance must be non-negative")
        if backend not in ("serial", "sharded", "shared"):
            raise ValueError(f"unknown backend {backend!r}")
        if workers is not None and backend == "serial":
            raise ValueError('workers= requires a parallel backend '
                             '("sharded" or "shared")')
        self.now = start_time
        self.reorder_tolerance = reorder_tolerance
        self.backend = backend
        self.workers = (workers or 2) if backend != "serial" else 1
        self._shard_pools: dict = {}
        self._timers: List[TimerEvent] = []
        self._seq = itertools.count()
        self._packet_handlers: List[PacketHandler] = []
        self._packets_processed = 0
        self._timers_fired = 0
        self._packets_reordered = 0
        registry = get_registry()
        if registry.enabled:
            self._tel_packets = registry.counter(
                "repro_engine_packets_total",
                "Packets delivered by the simulation engine")
            self._tel_timers = registry.counter(
                "repro_engine_timers_fired_total",
                "Timer events fired by the simulation engine")
            self._tel_queue = registry.gauge(
                "repro_engine_pending_timers",
                "Timer events currently queued in the simulation engine")
        else:
            self._tel_packets = None
            self._tel_timers = None
            self._tel_queue = None

    # -- registration ---------------------------------------------------------

    def on_packet(self, handler: PacketHandler) -> None:
        """Register a handler invoked for every packet, in time order."""
        self._packet_handlers.append(handler)

    def schedule(
        self,
        ts: float,
        handler: TimerHandler,
        interval: Optional[float] = None,
        name: str = "",
    ) -> TimerEvent:
        """Schedule ``handler(ts)`` at ``ts``; ``interval`` makes it recur."""
        if interval is not None and interval <= 0:
            raise ValueError("timer interval must be positive")
        event = TimerEvent(ts=ts, seq=next(self._seq), handler=handler,
                           interval=interval, name=name)
        heapq.heappush(self._timers, event)
        return event

    def cancel(self, event: TimerEvent) -> None:
        """Cancel a scheduled event: it will neither fire nor recur.

        The handle returned by :meth:`schedule` stays live for recurring
        timers (recurrence reuses the event object), so cancelling it tears
        the timer down no matter how many times it has already fired.
        Cancelling an already-fired one-shot event is a no-op.
        """
        event.cancelled = True

    # -- execution ---------------------------------------------------------------

    def run(self, packets: Iterable[Packet], until: Optional[float] = None) -> None:
        """Drive the loop over a time-sorted packet iterable.

        Timers due at or before each packet fire first (ties: timer wins,
        matching the filter semantics where a rotation at t applies to a
        packet arriving at t).  After the stream ends, remaining timers up
        to ``until`` still fire.

        A packet whose timestamp precedes the current clock raises
        :class:`OutOfOrderPacketError` unless the engine was constructed
        with a ``reorder_tolerance``; tolerated packets are delivered at the
        current clock so timers that already fired are never rewound.
        """
        for pkt in packets:
            if pkt.ts < self.now:
                lateness = self.now - pkt.ts
                if self.reorder_tolerance is None:
                    raise OutOfOrderPacketError(
                        f"packet at t={pkt.ts:.6f} arrived after the clock "
                        f"reached t={self.now:.6f} ({lateness:.6f}s late); "
                        "sort the stream, or construct the engine with "
                        "reorder_tolerance to accept bounded reordering"
                    )
                if lateness > self.reorder_tolerance:
                    raise OutOfOrderPacketError(
                        f"packet at t={pkt.ts:.6f} is {lateness:.6f}s late, "
                        f"beyond the {self.reorder_tolerance:.6f}s tolerance"
                    )
                self._packets_reordered += 1
                # Deliver at the current clock: self.now stands, no timer rewind.
            else:
                self._fire_timers(pkt.ts)
                self.now = pkt.ts
            for handler in self._packet_handlers:
                handler(pkt)
            self._packets_processed += 1
            if self._tel_packets is not None:
                self._tel_packets.inc()
        if until is not None:
            self._fire_timers(until)
            self.now = max(self.now, until)

    def run_array(self, packets: PacketArray, until: Optional[float] = None) -> None:
        """Convenience wrapper accepting a PacketArray."""
        self.run(iter(packets), until=until)

    # -- batch filter co-simulation -------------------------------------------

    def _backend_filter(self, filt):
        """The filter this engine actually drives: under a parallel backend
        a pristine bitmap filter is wrapped in a worker pool once and reused
        for every subsequent call with the same instance."""
        if self.backend == "serial":
            return filt
        from repro.parallel import (
            SharedBitmapFilter,
            ShardedBitmapFilter,
            shard_filter,
            share_filter,
        )

        if isinstance(filt, (ShardedBitmapFilter, SharedBitmapFilter)):
            return filt
        pool = self._shard_pools.get(id(filt))
        if pool is None:
            wrap = share_filter if self.backend == "shared" else shard_filter
            pool = wrap(filt, self.workers)
            self._shard_pools[id(filt)] = pool
        return pool

    def run_filter(self, filt, packets: PacketArray,
                   exact: bool = True,
                   until: Optional[float] = None) -> "np.ndarray":
        """Drive a filter over a time-sorted batch, firing timers between
        sub-batches.

        The batch is split at every pending timer's timestamp, so a timer
        scheduled at ``t`` observes exactly the filter state a scalar
        :meth:`run` loop would give it: all packets with ``ts < t``
        processed, none at or after (ties: timer wins, as in :meth:`run`).
        Under ``backend="sharded"`` the batches run on the worker pool;
        verdicts are identical either way.  Returns the boolean PASS mask.
        """
        import numpy as np

        filt = self._backend_filter(filt)
        ts = packets.ts
        n = len(packets)
        verdicts = np.ones(n, dtype=bool)
        cursor = 0
        while cursor < n:
            next_pkt_ts = float(ts[cursor])
            self._fire_timers(next_pkt_ts)
            if next_pkt_ts > self.now:
                self.now = next_pkt_ts
            horizon = self._next_timer_ts()
            if horizon is None:
                end = n
            else:
                # Packets at the timer's own timestamp belong to the next
                # segment (the timer fires first).
                end = int(np.searchsorted(ts, horizon, side="left"))
            end = max(end, cursor + 1)
            verdicts[cursor:end] = filt.process_batch(packets[cursor:end],
                                                      exact=exact)
            self._packets_processed += end - cursor
            if self._tel_packets is not None:
                self._tel_packets.inc(end - cursor)
            last_ts = float(ts[end - 1])
            if last_ts > self.now:
                self.now = last_ts
            cursor = end
        if until is not None:
            self._fire_timers(until)
            self.now = max(self.now, until)
        return verdicts

    def _next_timer_ts(self) -> Optional[float]:
        """Timestamp of the next live timer (cancelled ones are discarded)."""
        while self._timers and self._timers[0].cancelled:
            heapq.heappop(self._timers)
        return self._timers[0].ts if self._timers else None

    def close_shard_pools(self) -> None:
        """Tear down any worker pools :meth:`run_filter` spun up."""
        for pool in self._shard_pools.values():
            pool.close()
        self._shard_pools.clear()

    def _fire_timers(self, horizon: float) -> None:
        fired = 0
        while self._timers and self._timers[0].ts <= horizon:
            event = heapq.heappop(self._timers)
            if event.cancelled:
                continue
            self.now = event.ts
            event.handler(event.ts)
            fired += 1
            if event.interval is not None:
                # Reuse the event object so the caller's handle from
                # schedule() remains cancellable across recurrences.
                event.ts += event.interval
                heapq.heappush(self._timers, event)
        self._timers_fired += fired
        if self._tel_timers is not None and fired:
            self._tel_timers.inc(fired)
            self._tel_queue.set(len(self._timers))

    # -- stats ---------------------------------------------------------------------

    @property
    def packets_processed(self) -> int:
        return self._packets_processed

    @property
    def timers_fired(self) -> int:
        return self._timers_fired

    @property
    def pending_timers(self) -> int:
        return sum(1 for event in self._timers if not event.cancelled)

    @property
    def packets_reordered(self) -> int:
        """Late packets delivered under the reorder tolerance."""
        return self._packets_reordered


def merge_packet_streams(*streams: Iterable[Packet]) -> Iterator[Packet]:
    """Merge independently time-sorted packet iterables into one."""
    return heapq.merge(*streams, key=lambda pkt: pkt.ts)
