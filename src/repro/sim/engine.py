"""A small discrete-event timeline for packet + timer co-simulation.

Most experiments only need the batch pipeline, but router-level scenarios
(APD indicators sampling link state, staged attacks, multiple filters with
different clocks) need interleaved timer events.  :class:`SimulationEngine`
merges any number of packet streams with scheduled timer events and delivers
both, in timestamp order, to registered handlers.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional

from repro.net.packet import Packet, PacketArray

PacketHandler = Callable[[Packet], None]
TimerHandler = Callable[[float], None]


@dataclass(order=True)
class TimerEvent:
    """A scheduled callback, optionally recurring."""

    ts: float
    seq: int = field(compare=True)
    handler: TimerHandler = field(compare=False)
    interval: Optional[float] = field(default=None, compare=False)
    name: str = field(default="", compare=False)


class SimulationEngine:
    """Merges packet streams and timers into one ordered event loop."""

    def __init__(self, start_time: float = 0.0):
        self.now = start_time
        self._timers: List[TimerEvent] = []
        self._seq = itertools.count()
        self._packet_handlers: List[PacketHandler] = []
        self._packets_processed = 0
        self._timers_fired = 0

    # -- registration ---------------------------------------------------------

    def on_packet(self, handler: PacketHandler) -> None:
        """Register a handler invoked for every packet, in time order."""
        self._packet_handlers.append(handler)

    def schedule(
        self,
        ts: float,
        handler: TimerHandler,
        interval: Optional[float] = None,
        name: str = "",
    ) -> TimerEvent:
        """Schedule ``handler(ts)`` at ``ts``; ``interval`` makes it recur."""
        if interval is not None and interval <= 0:
            raise ValueError("timer interval must be positive")
        event = TimerEvent(ts=ts, seq=next(self._seq), handler=handler,
                           interval=interval, name=name)
        heapq.heappush(self._timers, event)
        return event

    # -- execution ---------------------------------------------------------------

    def run(self, packets: Iterable[Packet], until: Optional[float] = None) -> None:
        """Drive the loop over a time-sorted packet iterable.

        Timers due at or before each packet fire first (ties: timer wins,
        matching the filter semantics where a rotation at t applies to a
        packet arriving at t).  After the stream ends, remaining timers up
        to ``until`` still fire.
        """
        for pkt in packets:
            self._fire_timers(pkt.ts)
            self.now = pkt.ts
            for handler in self._packet_handlers:
                handler(pkt)
            self._packets_processed += 1
        if until is not None:
            self._fire_timers(until)
            self.now = max(self.now, until)

    def run_array(self, packets: PacketArray, until: Optional[float] = None) -> None:
        """Convenience wrapper accepting a PacketArray."""
        self.run(iter(packets), until=until)

    def _fire_timers(self, horizon: float) -> None:
        while self._timers and self._timers[0].ts <= horizon:
            event = heapq.heappop(self._timers)
            self.now = event.ts
            event.handler(event.ts)
            self._timers_fired += 1
            if event.interval is not None:
                self.schedule(
                    event.ts + event.interval, event.handler,
                    interval=event.interval, name=event.name,
                )

    # -- stats ---------------------------------------------------------------------

    @property
    def packets_processed(self) -> int:
        return self._packets_processed

    @property
    def timers_fired(self) -> int:
        return self._timers_fired

    @property
    def pending_timers(self) -> int:
        return len(self._timers)


def merge_packet_streams(*streams: Iterable[Packet]) -> Iterator[Packet]:
    """Merge independently time-sorted packet iterables into one."""
    return heapq.merge(*streams, key=lambda pkt: pkt.ts)
