"""Evaluation metrics: confusion counts and per-second time series.

Terminology follows Section 4.1: a *false positive* is normal traffic the
filter drops; a *false negative* is attack traffic that penetrates the
filter.  Counts are computed from the ground-truth ``label`` field carried
by every packet — labels are invisible to the filters themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.net.packet import PacketArray


@dataclass(frozen=True)
class ConfusionCounts:
    """Outcome counts over the *incoming* packets of one filter run."""

    attack_dropped: int      # true positives (attack filtered)
    attack_passed: int       # false negatives (penetrations)
    normal_dropped: int      # false positives (legitimate traffic lost)
    normal_passed: int       # true negatives
    background_dropped: int = 0  # unsolicited radiation filtered (not FP)
    background_passed: int = 0

    @property
    def incoming_total(self) -> int:
        return (
            self.attack_dropped + self.attack_passed
            + self.normal_dropped + self.normal_passed
            + self.background_dropped + self.background_passed
        )

    @property
    def attack_total(self) -> int:
        return self.attack_dropped + self.attack_passed

    @property
    def normal_total(self) -> int:
        return self.normal_dropped + self.normal_passed

    @property
    def attack_filter_rate(self) -> float:
        """Fraction of attack packets filtered out (Fig. 5b's metric)."""
        if not self.attack_total:
            return 0.0
        return self.attack_dropped / self.attack_total

    @property
    def penetration_rate(self) -> float:
        """Fraction of attack packets that got through (false negatives)."""
        if not self.attack_total:
            return 0.0
        return self.attack_passed / self.attack_total

    @property
    def false_positive_rate(self) -> float:
        """Fraction of normal incoming packets wrongly dropped."""
        if not self.normal_total:
            return 0.0
        return self.normal_dropped / self.normal_total

    def as_dict(self) -> Dict[str, float]:
        return {
            "attack_dropped": self.attack_dropped,
            "attack_passed": self.attack_passed,
            "normal_dropped": self.normal_dropped,
            "normal_passed": self.normal_passed,
            "background_dropped": self.background_dropped,
            "background_passed": self.background_passed,
            "attack_filter_rate": self.attack_filter_rate,
            "penetration_rate": self.penetration_rate,
            "false_positive_rate": self.false_positive_rate,
        }


@dataclass(frozen=True)
class PerSecondSeries:
    """Per-second packet counts over a run (the Fig. 5a series)."""

    seconds: np.ndarray          # bin start times
    normal_incoming: np.ndarray
    attack_incoming: np.ndarray
    passed_incoming: np.ndarray  # everything that penetrated or legitimately passed
    dropped_incoming: np.ndarray

    def attack_filter_rate_series(self) -> np.ndarray:
        """Per-second attack filtering rate (Fig. 5b), NaN where no attack."""
        with np.errstate(invalid="ignore", divide="ignore"):
            passed_attack = self.attack_incoming - np.minimum(
                self.dropped_incoming, self.attack_incoming
            )
            rate = 1.0 - passed_attack / self.attack_incoming
        return rate


@dataclass
class FilterRunResult:
    """Everything produced by one filter run over one labelled trace."""

    verdicts: np.ndarray                # PASS=True per packet (all directions)
    incoming_mask: np.ndarray           # which packets were incoming
    confusion: ConfusionCounts
    series: PerSecondSeries
    filter_stats: Dict[str, int] = field(default_factory=dict)
    wall_time: float = 0.0

    @property
    def incoming_drop_rate(self) -> float:
        incoming = int(self.incoming_mask.sum())
        if not incoming:
            return 0.0
        dropped = int((~self.verdicts[self.incoming_mask]).sum())
        return dropped / incoming


def score_run(
    packets: PacketArray,
    verdicts: np.ndarray,
    incoming_mask: np.ndarray,
    duration: Optional[float] = None,
) -> "tuple[ConfusionCounts, PerSecondSeries]":
    """Compute confusion counts and per-second series from raw verdicts."""
    labels = packets.label
    inc = incoming_mask
    attack_in = (labels == 1) & inc
    normal_in = (labels == 0) & inc
    background_in = (labels == 2) & inc
    passed = verdicts

    confusion = ConfusionCounts(
        attack_dropped=int((attack_in & ~passed).sum()),
        attack_passed=int((attack_in & passed).sum()),
        normal_dropped=int((normal_in & ~passed).sum()),
        normal_passed=int((normal_in & passed).sum()),
        background_dropped=int((background_in & ~passed).sum()),
        background_passed=int((background_in & passed).sum()),
    )

    ts = packets.ts
    if duration is None:
        duration = float(ts.max()) + 1.0 if len(ts) else 1.0
    edges = np.arange(0.0, np.ceil(duration) + 1.0, 1.0)
    seconds = edges[:-1]

    def bucket(mask: np.ndarray) -> np.ndarray:
        counts, _ = np.histogram(ts[mask], bins=edges)
        return counts

    series = PerSecondSeries(
        seconds=seconds,
        normal_incoming=bucket(normal_in),
        attack_incoming=bucket(attack_in),
        passed_incoming=bucket(inc & passed),
        dropped_incoming=bucket(inc & ~passed),
    )
    return confusion, series
