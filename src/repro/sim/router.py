"""The edge-router model: link accounting around a filter.

An :class:`EdgeRouter` represents the ISP-side device of Figure 1 where a
bitmap filter is installed: it fronts one client network's up-link, counts
bytes/packets per direction, applies its filter to every forwarded packet,
and exposes the link-state the APD indicators monitor (bandwidth
utilization, in/out packet ratio).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.bitmap_filter import BitmapFilter, Decision
from repro.core.resilience import FailPolicy
from repro.net.address import AddressSpace
from repro.net.packet import Direction, Packet
from repro.spi.base import StatefulFilter
from repro.telemetry.registry import get_registry


class _RouterInstruments:
    """Per-router telemetry (labelled by router name); live registries only."""

    __slots__ = ("packets_in", "packets_out", "dropped_in", "filter_errors",
                 "fail_policy_activations", "utilization")

    def __init__(self, registry, name: str):
        self.packets_in = registry.counter(
            "repro_router_packets_total",
            "Packets seen on the link, by direction", router=name,
            direction="in")
        self.packets_out = registry.counter(
            "repro_router_packets_total",
            "Packets seen on the link, by direction", router=name,
            direction="out")
        self.dropped_in = registry.counter(
            "repro_router_dropped_in_total",
            "Inbound packets dropped at this router", router=name)
        self.filter_errors = registry.counter(
            "repro_router_filter_errors_total",
            "Packets whose filter raised (verdict from the fail policy)",
            router=name)
        self.fail_policy_activations = registry.counter(
            "repro_router_fail_policy_activations_total",
            "Fail-policy verdicts issued for inbound packets", router=name)
        self.utilization = registry.gauge(
            "repro_router_downlink_utilization",
            "Rolling 1-second downlink utilization estimate", router=name)


@dataclass
class LinkCounters:
    """Per-direction link accounting."""

    packets_in: int = 0
    packets_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    dropped_in: int = 0
    dropped_bytes_in: int = 0
    filter_errors: int = 0  # packets judged by fail policy, not the filter

    @property
    def in_out_ratio(self) -> float:
        if not self.packets_out:
            return float("inf") if self.packets_in else 0.0
        return self.packets_in / self.packets_out


class EdgeRouter:
    """An ISP edge router protecting one client network."""

    def __init__(
        self,
        name: str,
        protected: AddressSpace,
        filt: Optional[Union[BitmapFilter, StatefulFilter]] = None,
        downlink_capacity_bps: float = 100e6,
        fail_policy: FailPolicy = FailPolicy.FAIL_CLOSED,
    ):
        if downlink_capacity_bps <= 0:
            raise ValueError("link capacity must be positive")
        self.name = name
        self.protected = protected
        self.filter = filt
        self.downlink_capacity_bps = downlink_capacity_bps
        self.fail_policy = fail_policy
        self.counters = LinkCounters()
        registry = get_registry()
        self._tel = (_RouterInstruments(registry, name)
                     if registry.enabled else None)
        self._window_start = 0.0
        self._window_bytes_in = 0
        self._utilization = 0.0
        self._utilization_window = 1.0

    def forward(self, pkt: Packet) -> Decision:
        """Account for a packet and apply the installed filter.

        A filter that raises does not take the link down with it: the
        packet is judged by the router's ``fail_policy`` instead (fail-open
        admits it, fail-closed drops inbound), and ``counters.filter_errors``
        records the degraded verdict.
        """
        direction = pkt.direction(self.protected)
        counters = self.counters
        tel = self._tel
        if direction is Direction.OUTGOING:
            counters.packets_out += 1
            counters.bytes_out += pkt.size
            if tel is not None:
                tel.packets_out.inc()
        elif direction is Direction.INCOMING:
            counters.packets_in += 1
            counters.bytes_in += pkt.size
            self._account_utilization(pkt)
            if tel is not None:
                tel.packets_in.inc()

        if self.filter is None:
            return Decision.PASS
        try:
            decision = self.filter.process(pkt)
        except Exception:
            counters.filter_errors += 1
            if tel is not None:
                tel.filter_errors.inc()
            if direction is Direction.INCOMING:
                if tel is not None:
                    tel.fail_policy_activations.inc()
                if self.fail_policy is FailPolicy.FAIL_CLOSED:
                    decision = Decision.DROP
                else:
                    decision = Decision.PASS
            else:
                decision = Decision.PASS
        if decision is Decision.DROP and direction is Direction.INCOMING:
            counters.dropped_in += 1
            counters.dropped_bytes_in += pkt.size
            if tel is not None:
                tel.dropped_in.inc()
        return decision

    def _account_utilization(self, pkt: Packet) -> None:
        """Rolling 1-second estimate of downlink utilization."""
        if pkt.ts - self._window_start >= self._utilization_window:
            elapsed = max(pkt.ts - self._window_start, self._utilization_window)
            self._utilization = min(
                1.0, self._window_bytes_in * 8.0 / elapsed / self.downlink_capacity_bps
            )
            self._window_start = pkt.ts
            self._window_bytes_in = 0
            if self._tel is not None:
                self._tel.utilization.set(self._utilization)
        self._window_bytes_in += pkt.size

    @property
    def downlink_utilization(self) -> float:
        """Most recent completed-window utilization estimate."""
        return self._utilization

    def __repr__(self) -> str:
        c = self.counters
        return (
            f"EdgeRouter({self.name!r}, in={c.packets_in}, out={c.packets_out}, "
            f"dropped={c.dropped_in})"
        )
