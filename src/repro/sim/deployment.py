"""Filter deployments over an ISP topology (the Figure 1 usage model).

A :class:`FilterDeployment` binds bitmap filters to routers of an
:class:`~repro.sim.topology.IspTopology`: either one filter per edge router
(each protecting its own client network) or one filter at an aggregating
core router protecting the union of several networks.  The deployment
validates placements against the topology's dominator analysis — a filter
only defends a network if all external traffic to that network crosses it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig
from repro.net.address import AddressSpace
from repro.net.packet import PacketArray
from repro.sim.topology import IspTopology, NodeKind


def union_address_space(spaces: Sequence[AddressSpace]) -> AddressSpace:
    """The combined address space of several client networks."""
    networks = []
    for space in spaces:
        networks.extend(space.networks)
    return AddressSpace(networks)


@dataclass
class PlacedFilter:
    """One bitmap filter installed at a router."""

    router: str
    filter: BitmapFilter
    covered_networks: List[str]


class FilterDeployment:
    """A set of bitmap filters placed on topology routers."""

    def __init__(self, topology: IspTopology):
        self.topology = topology
        self._placements: List[PlacedFilter] = []

    @property
    def placements(self) -> Sequence[PlacedFilter]:
        return tuple(self._placements)

    def install(
        self,
        router: str,
        client_networks: Sequence[str],
        config: BitmapFilterConfig,
        start_time: float = 0.0,
    ) -> PlacedFilter:
        """Install one filter at ``router`` covering the given networks.

        Raises :class:`ValueError` if the router is not a valid choke point
        for every listed network (Figure 1's placement rule) or a network
        has no attached address space.
        """
        if not client_networks:
            raise ValueError("a filter must cover at least one client network")
        spaces = []
        for net in client_networks:
            if router not in self.topology.valid_filter_locations(net):
                raise ValueError(
                    f"{router!r} is not on every external path to {net!r}"
                )
            space = self.topology.address_space(net)
            if space is None:
                raise ValueError(f"client network {net!r} has no address space")
            spaces.append(space)
        protected = union_address_space(spaces)
        placed = PlacedFilter(
            router=router,
            filter=BitmapFilter(config, protected, start_time=start_time),
            covered_networks=list(client_networks),
        )
        self._placements.append(placed)
        return placed

    def covered_networks(self) -> List[str]:
        out: List[str] = []
        for placed in self._placements:
            out.extend(placed.covered_networks)
        return out

    def uncovered_networks(self) -> List[str]:
        covered = set(self.covered_networks())
        return [
            net for net in self.topology.nodes_of_kind(NodeKind.CLIENT_NETWORK)
            if net not in covered
        ]

    def process_batch(self, packets: PacketArray, exact: bool = True) -> np.ndarray:
        """Run a time-sorted batch through every placed filter.

        Each filter only sees (and votes on) traffic of its own networks; a
        packet is passed iff every filter covering it passes it.  Packets
        covered by no filter pass unfiltered.
        """
        verdict = np.ones(len(packets), dtype=bool)
        for placed in self._placements:
            directions = packets.directions(placed.filter.protected)
            relevant = (directions == 0) | (directions == 1)
            if not relevant.any():
                continue
            sub = packets[relevant]
            sub_verdict = placed.filter.process_batch(sub, exact=exact)
            indices = np.nonzero(relevant)[0]
            verdict[indices[~sub_verdict]] = False
        return verdict

    def total_memory_bytes(self) -> int:
        return sum(p.filter.config.memory_bytes for p in self._placements)
