"""The ISP topology of Figure 1 and filter-placement analysis.

Figure 1 shows an ISP as core routers (white), edge routers (black), client
networks hanging off edge routers, and peer-ISP links.  "The bitmap filter
can be installed at any location through which traffic from client networks
must pass."  :meth:`IspTopology.valid_filter_locations` computes exactly that
set: the routers present on *every* path from any peering point to the
client network (via dominator analysis on the routing graph).
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, List, Optional, Set

import networkx as nx

from repro.net.address import AddressSpace


class NodeKind(enum.Enum):
    CORE = "core"
    EDGE = "edge"
    CLIENT_NETWORK = "client"
    PEER = "peer"


class IspTopology:
    """An undirected ISP graph with typed nodes."""

    _VIRTUAL_SOURCE = "__internet__"

    def __init__(self):
        self._graph = nx.Graph()
        self._client_spaces: Dict[str, AddressSpace] = {}

    # -- construction -----------------------------------------------------------

    def add_core_router(self, name: str) -> None:
        self._add_node(name, NodeKind.CORE)

    def add_edge_router(self, name: str) -> None:
        self._add_node(name, NodeKind.EDGE)

    def add_peer(self, name: str) -> None:
        """A peering point where external (attack) traffic enters."""
        self._add_node(name, NodeKind.PEER)

    def add_client_network(
        self, name: str, attach_to: str, address_space: Optional[AddressSpace] = None
    ) -> None:
        """A client network hanging off an edge router."""
        if attach_to not in self._graph:
            raise KeyError(f"unknown attachment router {attach_to!r}")
        if self.kind(attach_to) is not NodeKind.EDGE:
            raise ValueError("client networks attach to edge routers")
        self._add_node(name, NodeKind.CLIENT_NETWORK)
        self._graph.add_edge(name, attach_to)
        if address_space is not None:
            self._client_spaces[name] = address_space

    def connect(self, a: str, b: str) -> None:
        """Link two routers (or a router and a peer)."""
        for node in (a, b):
            if node not in self._graph:
                raise KeyError(f"unknown node {node!r}")
            if self.kind(node) is NodeKind.CLIENT_NETWORK:
                raise ValueError("use add_client_network to attach client networks")
        self._graph.add_edge(a, b)

    def _add_node(self, name: str, kind: NodeKind) -> None:
        if name in self._graph:
            raise ValueError(f"duplicate node name {name!r}")
        if name == self._VIRTUAL_SOURCE:
            raise ValueError(f"{name!r} is reserved")
        self._graph.add_node(name, kind=kind)

    # -- queries -------------------------------------------------------------------

    def attach_address_space(self, client_network: str, space: AddressSpace) -> None:
        """Attach (or replace) the address space of an existing client network."""
        if self.kind(client_network) is not NodeKind.CLIENT_NETWORK:
            raise ValueError(f"{client_network!r} is not a client network")
        self._client_spaces[client_network] = space

    def kind(self, name: str) -> NodeKind:
        return self._graph.nodes[name]["kind"]

    def nodes_of_kind(self, kind: NodeKind) -> List[str]:
        return [n for n, data in self._graph.nodes(data=True) if data["kind"] is kind]

    def address_space(self, client_network: str) -> Optional[AddressSpace]:
        return self._client_spaces.get(client_network)

    @property
    def graph(self) -> nx.Graph:
        return self._graph

    def valid_filter_locations(self, client_network: str) -> FrozenSet[str]:
        """Routers through which *all* peer-to-client traffic must pass.

        Computed as the dominators of the client network relative to a
        virtual source connected to every peer: a node dominates the client
        iff every path from outside reaches the client through it.  Client
        networks and peers themselves are excluded — only routers are valid
        installation points.
        """
        if client_network not in self._graph:
            raise KeyError(f"unknown client network {client_network!r}")
        if self.kind(client_network) is not NodeKind.CLIENT_NETWORK:
            raise ValueError(f"{client_network!r} is not a client network")
        peers = self.nodes_of_kind(NodeKind.PEER)
        if not peers:
            raise ValueError("topology has no peering points")

        directed = self._graph.to_directed()
        directed.add_node(self._VIRTUAL_SOURCE)
        for peer in peers:
            directed.add_edge(self._VIRTUAL_SOURCE, peer)
        if not nx.has_path(directed, self._VIRTUAL_SOURCE, client_network):
            return frozenset()

        dominators = nx.immediate_dominators(directed, self._VIRTUAL_SOURCE)
        chain: Set[str] = set()
        node = client_network
        while node != self._VIRTUAL_SOURCE:
            chain.add(node)
            node = dominators[node]
        routers = {
            n for n in chain
            if self.kind(n) in (NodeKind.CORE, NodeKind.EDGE)
        }
        return frozenset(routers)

    def covers_aggregate(self, router: str, client_networks: List[str]) -> bool:
        """True if one filter at ``router`` protects all listed networks.

        Figure 1's "core router aggregating two or more client networks"
        case: the router must be a valid location for each network.
        """
        return all(
            router in self.valid_filter_locations(net) for net in client_networks
        )

    @classmethod
    def paper_example(cls) -> "IspTopology":
        """A topology in the shape of Figure 1.

        Three client networks: two behind their own edge routers that share
        an aggregating core router, one behind a separate edge router, and a
        peer-ISP link into the core mesh.
        """
        topo = cls()
        for core in ("core1", "core2", "core3"):
            topo.add_core_router(core)
        for edge in ("edge1", "edge2", "edge3"):
            topo.add_edge_router(edge)
        topo.add_peer("peer-isp")
        topo.connect("core1", "core2")
        topo.connect("core2", "core3")
        topo.connect("core1", "core3")
        topo.connect("peer-isp", "core2")
        topo.connect("edge1", "core1")
        topo.connect("edge2", "core1")
        topo.connect("edge3", "core3")
        topo.add_client_network("clientA", "edge1")
        topo.add_client_network("clientB", "edge2")
        topo.add_client_network("clientC", "edge3")
        return topo
