"""The experiment harness: run a filter over a labelled trace and score it.

One entry point, :func:`run_filter_on_trace`, accepts any filter in the
repository — a :class:`~repro.core.bitmap_filter.BitmapFilter` (batch paths)
or a :class:`~repro.spi.base.StatefulFilter` baseline — plus a labelled
:class:`~repro.traffic.trace.Trace`, and produces a
:class:`~repro.sim.metrics.FilterRunResult` with verdicts, confusion counts
(attack filter rate, penetration, false positives), and per-second series.
"""

from __future__ import annotations

import time
from typing import Union

import numpy as np

from repro.core.bitmap_filter import BitmapFilter
from repro.sim.metrics import FilterRunResult, score_run
from repro.spi.base import StatefulFilter
from repro.traffic.trace import Trace

AnyFilter = Union[BitmapFilter, StatefulFilter]


def run_filter_on_trace(
    filt: AnyFilter,
    trace: Trace,
    exact: bool = True,
) -> FilterRunResult:
    """Run ``filt`` over ``trace`` (time-sorted) and score the verdicts.

    ``exact`` selects the bitmap filter's batch mode: ``True`` preserves
    per-packet ordering; ``False`` uses the fully vectorized windowed path
    (see BitmapFilter.process_batch_windowed for the approximation bound).
    SPI filters always run their exact array path.
    """
    packets = trace.packets
    directions = packets.directions(trace.protected)
    incoming_mask = directions == 1

    start = time.perf_counter()
    if isinstance(filt, BitmapFilter):
        verdicts = filt.process_batch(packets, exact=exact)
        filter_stats = filt.stats.as_dict()
    elif isinstance(filt, StatefulFilter):
        verdicts = filt.process_array(packets)
        filter_stats = {
            "outgoing": filt.stats.outgoing,
            "incoming": filt.stats.incoming,
            "incoming_dropped": filt.stats.incoming_dropped,
            "inserts": filt.stats.inserts,
            "gc_removed": filt.stats.gc_removed,
            "flows_kept": filt.num_flows,
        }
    else:
        raise TypeError(f"unsupported filter type {type(filt).__name__}")
    wall = time.perf_counter() - start

    confusion, series = score_run(packets, verdicts, incoming_mask, trace.duration)
    return FilterRunResult(
        verdicts=verdicts,
        incoming_mask=incoming_mask,
        confusion=confusion,
        series=series,
        filter_stats=filter_stats,
        wall_time=wall,
    )


def windowed_drop_rates(
    result: FilterRunResult, window: float = 10.0
) -> "tuple[np.ndarray, np.ndarray]":
    """Incoming drop rate per ``window``-second bucket (Fig. 4's points)."""
    seconds = result.series.seconds
    incoming = result.series.normal_incoming + result.series.attack_incoming
    dropped = result.series.dropped_incoming
    bins = int(np.ceil(len(seconds) / window))
    xs = np.zeros(bins)
    rates = np.zeros(bins)
    width = int(window)
    for b in range(bins):
        lo, hi = b * width, min((b + 1) * width, len(seconds))
        total = incoming[lo:hi].sum()
        xs[b] = seconds[lo]
        rates[b] = dropped[lo:hi].sum() / total if total else 0.0
    return xs, rates
