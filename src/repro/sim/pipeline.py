"""The experiment harness: run a filter over a labelled trace and score it.

One entry point, :func:`run_filter_on_trace`, accepts any filter speaking
the :class:`~repro.core.filter_api.PacketFilter` protocol — the
:class:`~repro.core.bitmap_filter.BitmapFilter`, the
:class:`~repro.spi.base.StatefulFilter` baselines, ablations — plus a
labelled :class:`~repro.traffic.trace.Trace`, and produces a
:class:`~repro.sim.metrics.FilterRunResult` with verdicts, confusion counts
(attack filter rate, penetration, false positives), and per-second series.

The harness is annotated with :class:`~repro.telemetry.profiling.Timer`
stages (``classify``/``filter``/``score``) so any run inside
:func:`~repro.telemetry.profiling.profile_run` contributes to the stage
breakdown, and publishes throughput metrics (packets filtered, packets/sec)
when a live telemetry registry is installed.
"""

from __future__ import annotations

import numpy as np

from repro.core.filter_api import PacketFilter
from repro.sim.metrics import FilterRunResult, score_run
from repro.telemetry.profiling import Timer
from repro.telemetry.registry import get_registry
from repro.traffic.trace import Trace

AnyFilter = PacketFilter


def run_filter_on_trace(
    filt: PacketFilter,
    trace: Trace,
    exact: bool = True,
    *,
    backend: "str | None" = None,
    workers: "int | None" = None,
) -> FilterRunResult:
    """Run ``filt`` over ``trace`` (time-sorted) and score the verdicts.

    ``exact`` selects the batch mode where the filter offers a choice: the
    bitmap filter's ``True`` preserves per-packet ordering while ``False``
    uses the fully vectorized windowed path (see
    ``BitmapFilter.process_batch_windowed`` for the approximation bound).
    Filters without an approximate path ignore the flag.

    ``backend="sharded"`` runs a pristine bitmap filter across ``workers``
    processes via :func:`repro.parallel.shard_filter`; ``backend="shared"``
    wraps it over one shared-memory bitmap via
    :func:`repro.parallel.share_filter` — results are bit-for-bit identical
    to the serial run either way (see docs/parallel.md); the temporary
    worker pool is torn down before returning.  Most callers should not
    pass these and instead rely on the ambient backend
    (:func:`repro.core.filter_api.build_filter`), which the CLI's ``--backend``/
    ``--workers`` flags install.
    """
    if not isinstance(filt, PacketFilter):
        raise TypeError(
            f"unsupported filter type {type(filt).__name__}: does not "
            "implement the PacketFilter protocol")
    if backend not in (None, "serial", "sharded", "shared"):
        raise ValueError(f"unknown backend {backend!r}")
    if workers is not None and backend in (None, "serial"):
        raise ValueError('workers= requires a parallel backend '
                         '("sharded" or "shared")')
    owned_pool = None
    if backend in ("sharded", "shared"):
        from repro.core.hybrid import HybridVerifiedFilter
        from repro.parallel import (
            SharedBitmapFilter,
            ShardedBitmapFilter,
            shard_filter,
            share_filter,
        )

        wrap = share_filter if backend == "shared" else shard_filter
        if isinstance(filt, HybridVerifiedFilter):
            # Parallelize the bitmap tier underneath the verification
            # wrapper; the cuckoo table stays wrapper-local either way.
            if not isinstance(filt.inner,
                              (ShardedBitmapFilter, SharedBitmapFilter)):
                inner = wrap(filt.inner, workers or 2)
                filt = owned_pool = HybridVerifiedFilter(
                    inner, filt.spec, table=filt.table)
        elif not isinstance(filt, (ShardedBitmapFilter, SharedBitmapFilter)):
            filt = owned_pool = wrap(filt, workers or 2)
    try:
        return _run_scored(filt, trace, exact)
    finally:
        if owned_pool is not None:
            owned_pool.close()


def _run_scored(
    filt: PacketFilter,
    trace: Trace,
    exact: bool,
) -> FilterRunResult:
    packets = trace.packets
    with Timer("classify"):
        directions = packets.directions(trace.protected)
        incoming_mask = directions == 1

    with Timer("filter") as timer:
        verdicts = filt.process_batch(packets, exact=exact)
    wall = timer.elapsed

    stats = getattr(filt, "stats", None)
    if stats is not None and hasattr(stats, "as_dict"):
        filter_stats = stats.as_dict()
    elif stats is not None:
        filter_stats = {"repr": repr(stats)}
    else:
        filter_stats = {}
    num_flows = getattr(filt, "num_flows", None)
    if num_flows is not None:
        filter_stats["flows_kept"] = num_flows

    registry = get_registry()
    if registry.enabled:
        n = len(packets)
        registry.counter(
            "repro_pipeline_packets_total",
            "Packets pushed through run_filter_on_trace",
        ).inc(n)
        registry.counter(
            "repro_pipeline_runs_total", "run_filter_on_trace invocations"
        ).inc()
        if wall > 0:
            registry.gauge(
                "repro_pipeline_packets_per_second",
                "Throughput of the most recent filter run (packets/sec)",
            ).set(n / wall)
        registry.histogram(
            "repro_pipeline_filter_seconds",
            "Wall-clock duration of the filter stage per run",
        ).observe(wall)

    with Timer("score"):
        confusion, series = score_run(packets, verdicts, incoming_mask,
                                      trace.duration)
    return FilterRunResult(
        verdicts=verdicts,
        incoming_mask=incoming_mask,
        confusion=confusion,
        series=series,
        filter_stats=filter_stats,
        wall_time=wall,
    )


def run_filter_with_reconfig(
    config,
    new_config,
    trace: Trace,
    rebuild_at: float,
    *,
    exact: bool = True,
) -> np.ndarray:
    """Offline twin of a live geometry reconfig: verdicts across a rebuild.

    Reproduces exactly what a ``FilterDaemon`` (and hence every node of a
    fleet under :meth:`FleetManager.rolling_reconfig`) does when geometry
    changes mid-stream: packets with ``ts < rebuild_at`` go through a
    filter built from ``config``; at the boundary a fresh filter is built
    from ``new_config`` — anchored at the boundary so its rotation
    schedule stays origin-aligned, with a warm-up grace window of the
    *old* expiry timer (marks in the old geometry are unreadable by the
    new one) — and the rest of the trace goes through it.

    Because the split point is a function of packet timestamps alone,
    this serial replay is byte-identical to a fleet whose every node
    rebuilds at the same shared ``rebuild_at`` — the invariant
    ``tests/differential/test_fleet_equivalence.py`` pins.
    """
    from repro.core.filter_api import build_filter

    packets = trace.packets
    old = build_filter(config, trace.protected, backend="serial")
    ts = np.asarray(packets.ts, dtype=np.float64)
    split = int(np.searchsorted(ts, float(rebuild_at), side="left"))
    if split >= len(packets):  # boundary never crossed: no rebuild happens
        return np.asarray(old.process_batch(packets, exact=exact),
                          dtype=bool)
    head = (np.asarray(old.process_batch(packets[:split], exact=exact),
                       dtype=bool)
            if split else np.zeros(0, dtype=bool))
    # Anchor where the daemon anchors: the shared boundary, unless the
    # old filter's clock already ran past it (never in packet mode).
    last_crossed = old.next_rotation - old.config.rotation_interval
    boundary = max(float(rebuild_at), last_crossed)
    new = build_filter(new_config, trace.protected,
                       start_time=boundary, backend="serial")
    new.begin_warmup(boundary + old.config.expiry_timer)
    tail = np.asarray(new.process_batch(packets[split:], exact=exact),
                      dtype=bool)
    return np.concatenate([head, tail])


def windowed_drop_rates(
    result: FilterRunResult, window: float = 10.0
) -> "tuple[np.ndarray, np.ndarray]":
    """Incoming drop rate per ``window``-second bucket (Fig. 4's points)."""
    seconds = result.series.seconds
    incoming = result.series.normal_incoming + result.series.attack_incoming
    dropped = result.series.dropped_incoming
    bins = int(np.ceil(len(seconds) / window))
    xs = np.zeros(bins)
    rates = np.zeros(bins)
    width = int(window)
    for b in range(bins):
        lo, hi = b * width, min((b + 1) * width, len(seconds))
        total = incoming[lo:hi].sum()
        xs[b] = seconds[lo]
        rates[b] = dropped[lo:hi].sum() / total if total else 0.0
    return xs, rates
