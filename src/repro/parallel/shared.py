"""The shared-memory bitmap filter: one buffer, zero broadcast.

Why shared memory
-----------------
The sharded backend (:mod:`repro.parallel.sharded`) buys bit-for-bit
equivalence by replicating the bitmap into every worker and broadcasting
every outgoing mark — O(workers) pipe traffic per mark, which is pure
overhead and what capped measured serve throughput at ~440k pps.
:class:`SharedBitmapFilter` removes the broadcast entirely:

- **One copy of the bits.**  The {k x n}-bitmap lives in a single
  :class:`multiprocessing.shared_memory` segment
  (:class:`~repro.parallel.shm.SharedBitmap`).  The parent process is the
  only writer; reader workers attach by name and get zero-copy NumPy views
  of the same pages.  A mark is globally visible the moment the store
  retires — nothing is shipped anywhere.
- **Epoch-indexed rotation.**  ``rotate()`` bumps a shared epoch counter
  and zeroes only the retiring slab (no copied state); the index/epoch
  advance and the clear are one seqlocked unit, so a reader can never
  judge a packet against a retired epoch (the property suite proves it).
- **Vectorized exact batch path.**  The serial filter's ``exact=True``
  batch path walks packets one-by-one in Python to preserve ordering
  semantics; this class replaces it with a fully vectorized algorithm that
  is *order-exact*: per rotation window it tests all incoming packets
  against the pre-window bits, applies all marks at once, re-tests, and
  resolves the order-ambiguous tests (miss-before-marks, hit-after-marks)
  by comparing each packet's position against the first position that
  marked each of its bits.  Identical verdicts and stats to the serial
  per-packet loop, at NumPy speed — this is what moves the serve daemon
  past the 1M pps north star on the same hardware.
- **Shard-aware APD.**  Adaptive packet dropping needs global arrival
  order, which is why the sharded backend never supported it.  Here the
  policy lives in the parent — the one process that sees every arrival in
  sequence, so drop decisions and RNG draws match serial exactly — and the
  global arrival counters are published into the shared header
  (:meth:`~repro.parallel.shm.SharedBitmap.publish_arrivals`) where every
  reader worker observes them.

Scalar lookups are partitioned across the reader workers exactly like the
sharded backend (``local_addr % N`` ownership), but the worker answers off
the *shared* bits under the seqlock instead of a private replica — which
is also what the differential suite exercises to prove cross-process
visibility.

Everything else — degraded mode, warm-up grace, rotation stalls, bit
flips, snapshot state, telemetry — is inherited unchanged from
:class:`~repro.core.bitmap_filter.BitmapFilter`, because the parent *is* a
serial filter whose bitmap happens to live in shared memory.
``tests/differential/`` holds the equivalence proof for this backend, the
sharded one, and serial, across the full fault matrix.
"""

from __future__ import annotations

import multiprocessing
import weakref
from time import perf_counter
from typing import Optional

import numpy as np

from repro.core.apd import AdaptiveDroppingPolicy
from repro.core.bitmap_filter import AnyFilterConfig, BitmapFilter
from repro.core.resilience import FailPolicy
from repro.net.address import AddressSpace
from repro.net.packet import (
    DIRECTION_INCOMING,
    DIRECTION_INTERNAL,
    DIRECTION_OUTGOING,
    DIRECTION_TRANSIT,
    Packet,
    PacketArray,
)
from repro.parallel.shared_worker import SharedWorkerSpec, shared_worker_main
from repro.parallel.shm import SharedBitmap
from repro.parallel.worker import ShardWorkerError
from repro.telemetry.registry import MetricsRegistry

__all__ = ["SharedBitmapFilter", "share_filter"]

_NEG_INF = float("-inf")


def _preferred_context(name: Optional[str] = None):
    """fork when the platform offers it (cheap, no re-import in children)."""
    if name is not None:
        return multiprocessing.get_context(name)
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


def _shutdown(conns, processes, bitmap: SharedBitmap) -> None:
    """Finalizer: close readers, then unmap and unlink the segment."""
    for conn in conns:
        try:
            conn.send(("close",))
        except (BrokenPipeError, OSError):
            pass
    for conn in conns:
        try:
            conn.close()
        except OSError:
            pass
    for proc in processes:
        proc.join(timeout=2.0)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=1.0)
    bitmap.close()


class SharedBitmapFilter(BitmapFilter):
    """A bitmap filter whose bit state lives in shared memory.

    Subclasses :class:`~repro.core.bitmap_filter.BitmapFilter` — the parent
    process runs the complete serial algorithm (so stats, telemetry, fail
    policies, warm-up, stalls and snapshots are serial-identical by
    construction) — and adds:

    - ``N`` reader worker processes that answer partitioned scalar lookups
      off the shared bits under a seqlock,
    - the vectorized order-exact batch path (see the module docstring),
    - the shared arrival counter that makes APD shard-aware.

    Unlike the sharded backend, adaptive packet dropping **is** supported:
    the policy runs in the parent, which observes every arrival in global
    order, exactly like serial.
    """

    def __init__(
        self,
        config: Optional[AnyFilterConfig] = None,
        protected: Optional[AddressSpace] = None,
        num_workers: int = 2,
        start_time: float = 0.0,
        fail_policy: Optional[FailPolicy] = None,
        *,
        apd: Optional[AdaptiveDroppingPolicy] = None,
        telemetry: Optional[MetricsRegistry] = None,
        mp_context: Optional[str] = None,
        **config_fields,
    ):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        super().__init__(
            config,
            protected,
            start_time=start_time,
            apd=apd,
            fail_policy=fail_policy,
            telemetry=telemetry,
            **config_fields,
        )
        # Replace the private in-process bitmap with the shared segment.
        self.bitmap = SharedBitmap(self.config.num_vectors, self.config.order)
        self.num_workers = num_workers
        self._closed = False

        spec_fields = dict(
            shm_name=self.bitmap.name,
            num_hashes=self.config.num_hashes,
            order=self.config.order,
            seed=self.config.seed,
            num_workers=num_workers,
        )
        ctx = _preferred_context(mp_context)
        self._conns = []
        self._procs = []
        for w in range(num_workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=shared_worker_main,
                args=(child_conn,
                      SharedWorkerSpec(worker_index=w, **spec_fields)),
                name=f"repro-shared-{w}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        self._finalizer = weakref.finalize(
            self, _shutdown, self._conns, self._procs, self.bitmap)

    # -- wire helpers ---------------------------------------------------------

    def _request(self, worker: int, msg: tuple):
        self._conns[worker].send(msg)
        status, payload = self._conns[worker].recv()
        if status == "err":
            raise ShardWorkerError(
                f"shared reader worker {worker} failed:\n{payload}")
        return payload

    # -- reader introspection (property/differential suites) ------------------

    def worker_test_indices(self, worker: int, indices) -> tuple:
        """Seqlocked cross-process bit test: ``(hit, epoch)`` from a reader."""
        return self._request(worker, ("test_indices", tuple(indices)))

    def worker_header(self, worker: int) -> tuple:
        """The shared header words as seen by a reader process."""
        return self._request(worker, ("header",))

    def worker_vector(self, worker: int, index: int) -> bytes:
        """Raw slab bytes as seen by a reader process."""
        return self._request(worker, ("vector", index))

    def worker_epoch(self, worker: int) -> int:
        """The epoch counter as seen by a reader process."""
        return self._request(worker, ("epoch",))

    # -- scalar path ----------------------------------------------------------

    def _test_incoming(self, pkt: Packet) -> bool:
        """Route the lookup to the packet's owner reader (``dst % N``).

        The reader tests the same shared bits the parent would, under the
        seqlock; a closed filter falls back to the parent-side read so
        drained filters remain inspectable.
        """
        if self._closed:
            return super()._test_incoming(pkt)
        owner = pkt.dst % self.num_workers
        hit, _epoch = self._request(
            owner, ("test", pkt.proto, pkt.dst, pkt.dport, pkt.src))
        return hit

    def process(self, pkt: Packet):
        decision = super().process(pkt)
        self._publish_arrivals()
        return decision

    def _publish_arrivals(self) -> None:
        stats = self.stats
        self.bitmap.publish_arrivals(stats.total, stats.outgoing,
                                     stats.incoming)

    # -- batch path -----------------------------------------------------------

    def process_batch(self, packets: PacketArray,
                      exact: bool = True) -> np.ndarray:
        verdict = super().process_batch(packets, exact=exact)
        self._publish_arrivals()
        return verdict

    def _process_batch_exact(self, packets: PacketArray) -> np.ndarray:
        """Vectorized *order-exact* batch filtering on the shared buffer.

        Semantics are identical to the serial per-packet loop; the trick is
        resolving intra-window ordering without walking packets one at a
        time.  Per rotation window:

        1. test every incoming packet against the pre-window bits
           (``hits0``/``ok0``);
        2. apply every outgoing mark in one vectorized pass;
        3. re-test (``ok1``).  Only packets with ``~ok0 & ok1`` are
           order-ambiguous — their bits were completed by marks *somewhere*
           in this window, and the verdict depends on whether those marks
           came before or after the packet;
        4. for each ambiguous packet, compare its batch position against
           the **first** position that marked each of its missing bits: it
           passes iff every such first-mark precedes it — exactly what the
           serial loop would have observed.

        Warm-up grace, stats, rotation cadence and telemetry flushes all
        match the serial exact path per window.
        """
        n = len(packets)
        verdict = np.ones(n, dtype=bool)
        if not n:
            return verdict
        directions = packets.directions(self.protected)
        index_matrix = self._directional_indices(packets, directions)
        ts = packets.ts

        stats = self.stats
        out_mask = directions == DIRECTION_OUTGOING
        in_mask = directions == DIRECTION_INCOMING
        stats.internal += int((directions == DIRECTION_INTERNAL).sum())
        stats.transit += int((directions == DIRECTION_TRANSIT).sum())
        # Stall/warm-up state cannot change mid-batch (only the fault
        # harness toggles it, between batches) — hoisted like serial.
        stalled = self._stalled
        warmup_until = self._warmup_until
        interval = self.config.rotation_interval
        bitmap = self.bitmap
        tel = self._tel
        before = tel.stats_snapshot(stats) if tel is not None else None

        start = 0
        while start < n:
            boundary = float("inf") if stalled else self._next_rotation
            end = int(np.searchsorted(ts[start:], boundary, side="left")) + start
            if end > start:
                self._filter_window(index_matrix, ts, out_mask, in_mask,
                                    verdict, start, end, warmup_until)
                start = end
            if start < n:
                if tel is None:
                    bitmap.rotate()
                else:
                    # Per-window flush before the tick (see serial path).
                    tel.count_batch("exact_batch", stats, before)
                    before = tel.stats_snapshot(stats)
                    begin = perf_counter()
                    bitmap.rotate()
                    tel.on_rotation(self._next_rotation,
                                    perf_counter() - begin)
                self._next_rotation += interval
                stats.rotations += 1
        if tel is not None:
            tel.count_batch("exact_batch", stats, before)
        return verdict

    def _filter_window(self, index_matrix: np.ndarray, ts: np.ndarray,
                       out_mask: np.ndarray, in_mask: np.ndarray,
                       verdict: np.ndarray, start: int, end: int,
                       warmup_until: float) -> None:
        """One rotation window of the order-exact vectorized algorithm."""
        window = slice(start, end)
        w_out = out_mask[window]
        w_in = in_mask[window]
        stats = self.stats
        bitmap = self.bitmap
        current = bitmap.current
        n_out = int(w_out.sum())
        have_in = bool(w_in.any())

        if have_in:
            test_mat = index_matrix[:, window][:, w_in]          # (m, I)
            hits0 = current.test_many_vec(
                test_mat.reshape(-1)).reshape(test_mat.shape)
            ok = hits0.all(axis=0)                               # (I,)
        if n_out:
            mark_mat = index_matrix[:, window][:, w_out]          # (m, P)
            bitmap.mark_vec(mark_mat)
            stats.outgoing += n_out
        if not have_in:
            return

        in_pos = np.nonzero(w_in)[0]
        stats.incoming += in_pos.size
        if n_out:
            ok1 = current.test_many_vec(
                test_mat.reshape(-1)).reshape(test_mat.shape).all(axis=0)
            ambiguous = ~ok & ok1
            if ambiguous.any():
                out_pos = np.nonzero(w_out)[0]
                m = index_matrix.shape[0]
                # First position that marked each bit this window.
                flat_bits = mark_mat.reshape(-1)
                flat_pos = np.tile(out_pos, m)
                order = np.lexsort((flat_pos, flat_bits))
                sorted_bits = flat_bits[order]
                sorted_pos = flat_pos[order]
                first = np.ones(len(sorted_bits), dtype=bool)
                first[1:] = sorted_bits[1:] != sorted_bits[:-1]
                unique_bits = sorted_bits[first]
                first_pos = sorted_pos[first]
                # Each ambiguous packet passes iff every bit it needs was
                # either set pre-window or first-marked before its position.
                amb_bits = test_mat[:, ambiguous]                 # (m, A)
                amb_pre = hits0[:, ambiguous]
                loc = np.searchsorted(unique_bits, amb_bits)
                loc = np.minimum(loc, len(unique_bits) - 1)
                marked_at = first_pos[loc]
                # Pre-set bits need no mark; every other bit of an
                # ambiguous packet is guaranteed present in unique_bits
                # (ok1 says the window's marks completed it).
                marked_at = np.where(amb_pre, -1, marked_at)
                ok[ambiguous] = marked_at.max(axis=0) < in_pos[ambiguous]

        if warmup_until > ts[start]:
            grace = ~ok & (ts[window][w_in] < warmup_until)
            if grace.any():
                ok |= grace
                stats.warmup_admitted += int(grace.sum())
        verdict[in_pos[~ok] + start] = False
        stats.incoming_passed += int(ok.sum())
        stats.incoming_dropped += int((~ok).sum())

    # -- structural writes (seqlocked) ----------------------------------------

    def apply_snapshot_state(self, *args, **kwargs) -> None:
        with self.bitmap.write_guard():
            super().apply_snapshot_state(*args, **kwargs)
        self._publish_arrivals()

    def flip_bits(self, fraction: float, seed: int = 0xB17F11) -> int:
        with self.bitmap.write_guard():
            return super().flip_bits(fraction, seed)

    # -- lifecycle ------------------------------------------------------------

    @property
    def shared_memory_name(self) -> str:
        """The segment name reader workers (and diagnostics) attach to."""
        return self.bitmap.name

    def close(self) -> None:
        """Shut the readers down and release the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._finalizer()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "SharedBitmapFilter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        cfg = self.config
        return (
            f"SharedBitmapFilter(workers={self.num_workers}, "
            f"k={cfg.num_vectors}, n={cfg.order}, m={cfg.num_hashes}, "
            f"dt={cfg.rotation_interval}, Te={cfg.expiry_timer}, "
            f"shm={self.bitmap.name!r})"
        )


def share_filter(
    filt: BitmapFilter,
    num_workers: int,
    *,
    mp_context: Optional[str] = None,
    telemetry: Optional[MetricsRegistry] = None,
) -> SharedBitmapFilter:
    """Wrap a *pristine* serial filter's configuration in a shared one.

    The donor only contributes configuration (geometry, protected space,
    fail policy, APD policy, any open warm-up window, rotation schedule
    origin); a filter that has already processed packets is refused loudly
    rather than silently diverging — mirror of
    :func:`repro.parallel.sharded.shard_filter`.
    """
    if isinstance(filt, SharedBitmapFilter):
        return filt
    if filt.stats.total or filt.stats.rotations or not filt.bitmap.is_empty():
        raise ValueError(
            "share_filter needs a pristine filter: this one has already "
            "processed traffic, so its bit state cannot be reproduced "
            "by a fresh shared segment")
    start_time = filt.next_rotation - filt.config.rotation_interval
    shared = SharedBitmapFilter(
        filt.config,
        filt.protected,
        num_workers=num_workers,
        start_time=start_time,
        fail_policy=filt.fail_policy,
        apd=filt.apd,
        telemetry=telemetry,
        mp_context=mp_context,
    )
    if filt.warmup_until > _NEG_INF:
        shared.begin_warmup(filt.warmup_until)
    return shared
