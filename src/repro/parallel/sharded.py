"""The sharded bitmap filter: N worker processes, one serial-equivalent view.

Why replicated marking
----------------------
A naive shard-by-key split (each worker owns ``1/N`` of the keyspace and
only sees its own packets) is **not** bit-for-bit equivalent to the serial
filter: Bloom lookups are judged against *every* mark in the bitmap, so a
cross-shard hash collision that admits a packet serially would be missing
from the owner's partial bitmap.  The design here keeps exact equivalence:

- **Marks are broadcast.**  Every outgoing packet goes to every worker, so
  each worker's {k x n}-bitmap is byte-for-byte identical to the serial
  filter's at any packet timestamp (rotations are driven by packet
  timestamps, not wall-clock, so replicas rotate in lockstep).
- **Lookups are partitioned.**  Incoming/internal/transit packets go only
  to their owner — ``local_addr % N`` on the vectorized direction split
  (incoming: ``dst``; otherwise ``src``) — which judges them against its
  (identical) replica.  Only the owner's verdict is kept, re-scattered into
  input order.

Outgoing traffic is a small fraction of an attack workload (the expensive
side is the flood of incoming lookups), so partitioned lookups are where
the parallel speedup comes from while broadcast marking buys equality.

Stats merge with the same ownership logic: outgoing-side counters are read
from worker 0 (every worker saw every outgoing packet, so they all agree);
incoming/internal/transit counters are summed (disjoint by ownership).

Control operations (``fail``/``recover``/``stall_rotations``/
``flip_bits``/…) are broadcast, preceded by a sync that advances every
worker to the last globally dispatched timestamp — this keeps
rotation-schedule-dependent behavior (e.g. ``recover``'s missed-rotation
count, which sizes the default warm-up grace) identical to serial.  The
sync is skipped while the filter is down, because the serial filter's
rotation schedule freezes during an outage.

``tests/differential/`` holds the proof: identical traces through serial
and sharded filters, asserting bit-for-bit verdict, stats, telemetry, and
snapshot agreement, across rotation boundaries, fault injection, and both
fail policies.
"""

from __future__ import annotations

import multiprocessing
import weakref
from typing import List, Optional

import numpy as np

from repro.core.bitmap import Bitmap
from repro.core.bitmap_filter import (
    AnyFilterConfig,
    BitmapFilter,
    BitmapFilterConfig,
    FilterConfig,
    FilterStats,
)
from repro.core.filter_api import Decision, PacketFilterMixin
from repro.core.resilience import FailPolicy
from repro.net.address import AddressSpace
from repro.net.packet import (
    DIRECTION_INCOMING,
    DIRECTION_OUTGOING,
    Direction,
    Packet,
    PacketArray,
)
from repro.parallel.worker import (
    ShardWorkerError,
    WorkerSpec,
    shard_worker_main,
)
from repro.telemetry.merge import apply_dump
from repro.telemetry.registry import MetricsRegistry, get_registry

__all__ = ["ShardedBitmapFilter", "shard_filter"]

_NEG_INF = float("-inf")


def _preferred_context(name: Optional[str] = None):
    """fork when the platform offers it (cheap, inherits numpy pages)."""
    if name is not None:
        return multiprocessing.get_context(name)
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


def _shutdown(conns, processes) -> None:
    """Finalizer: best-effort orderly close, then terminate stragglers."""
    for conn in conns:
        try:
            conn.send(("close",))
        except (BrokenPipeError, OSError):
            pass
    for conn in conns:
        try:
            conn.close()
        except OSError:
            pass
    for proc in processes:
        proc.join(timeout=2.0)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=1.0)


class _ShardInstruments:
    """Parent-side telemetry for a live registry: the unified serial-parity
    counters (published under ``path="sharded"``) plus per-shard detail."""

    __slots__ = ("registry", "marks", "admits", "drops", "rotations",
                 "warmup_admits", "degraded_admits", "degraded_drops",
                 "degraded", "stalled", "warmup_until", "shard_packets",
                 "published")

    def __init__(self, registry: MetricsRegistry, num_workers: int):
        self.registry = registry
        path = {"path": "sharded"}
        self.marks = registry.counter(
            "repro_filter_marks_total",
            "Outgoing packets marked into the bitmap, by admission path",
            **path)
        self.admits = registry.counter(
            "repro_filter_admits_total",
            "Incoming packets admitted while the filter is up, by path",
            **path)
        self.drops = registry.counter(
            "repro_filter_drops_total",
            "Incoming packets dropped while the filter is up, by path",
            **path)
        self.rotations = registry.counter(
            "repro_filter_rotations_total", "Bitmap rotations performed")
        self.warmup_admits = registry.counter(
            "repro_filter_warmup_admits_total",
            "Bitmap misses admitted by the warm-up grace window")
        self.degraded_admits = registry.counter(
            "repro_filter_degraded_admits_total",
            "Inbound packets admitted by the fail policy while down")
        self.degraded_drops = registry.counter(
            "repro_filter_degraded_drops_total",
            "Inbound packets dropped by the fail policy while down")
        self.degraded = registry.gauge(
            "repro_filter_degraded",
            "1 while the filter is down and verdicts come from the fail policy")
        self.stalled = registry.gauge(
            "repro_filter_rotations_stalled",
            "1 while the rotation timer is wedged")
        self.warmup_until = registry.gauge(
            "repro_filter_warmup_until_seconds",
            "End of the active warm-up grace window in simulated time "
            "(0 when inactive)")
        self.shard_packets = [
            registry.counter(
                "repro_shard_packets_total",
                "Packets dispatched to each shard worker "
                "(broadcast marks + owned lookups)",
                shard=str(w))
            for w in range(num_workers)
        ]
        self.degraded.set(0)
        self.stalled.set(0)
        self.warmup_until.set(0)
        self.published = {
            "marks": 0, "admits": 0, "drops": 0, "warmup": 0,
            "deg_admits": 0, "deg_drops": 0, "rotations": 0,
        }

    def publish(self, parts: List[dict], next_rotation: float,
                rotation_interval: float) -> None:
        """Credit the delta between the merged counters and what was
        already published; tick the Δt samplers once per new rotation."""
        w0 = parts[0]
        current = {
            "marks": w0["outgoing"] - w0["unmarked_outgoing"]
            - w0["marks_suppressed"],
            "admits": sum(p["incoming_passed"] for p in parts)
            - sum(p["degraded_admitted"] for p in parts),
            "drops": sum(p["incoming_dropped"] for p in parts)
            - sum(p["degraded_dropped"] for p in parts),
            "warmup": sum(p["warmup_admitted"] for p in parts),
            "deg_admits": sum(p["degraded_admitted"] for p in parts),
            "deg_drops": sum(p["degraded_dropped"] for p in parts),
            "rotations": w0["rotations"],
        }
        prev = self.published
        counters = {
            "marks": self.marks, "admits": self.admits, "drops": self.drops,
            "warmup": self.warmup_admits, "deg_admits": self.degraded_admits,
            "deg_drops": self.degraded_drops, "rotations": self.rotations,
        }
        for key, counter in counters.items():
            delta = current[key] - prev[key]
            if delta > 0:
                counter.inc(delta)
        new_rotations = current["rotations"] - prev["rotations"]
        for i in range(new_rotations, 0, -1):
            self.registry.tick(next_rotation - i * rotation_interval)
        self.published = current


class ShardedBitmapFilter(PacketFilterMixin):
    """N-worker sharded execution of one logical bitmap filter.

    Speaks the full :class:`~repro.core.filter_api.PacketFilter` protocol
    plus the :class:`~repro.core.bitmap_filter.BitmapFilter` control
    surface (degraded mode, warm-up, rotation stalls, bit flips, snapshot
    state), so the fault harness and every experiment run against it
    unchanged.  See the module docstring for the equivalence argument.

    Adaptive packet dropping is not supported (its drop decisions depend on
    global arrival order); :func:`repro.core.filter_api.build_filter`
    falls back to a serial filter when an APD policy is requested.
    """

    def __init__(
        self,
        config: Optional[AnyFilterConfig] = None,
        protected: Optional[AddressSpace] = None,
        num_workers: int = 2,
        start_time: float = 0.0,
        fail_policy: Optional[FailPolicy] = None,
        *,
        telemetry: Optional[MetricsRegistry] = None,
        mp_context: Optional[str] = None,
        **config_fields,
    ):
        if protected is None:
            raise TypeError(
                "ShardedBitmapFilter requires a protected AddressSpace")
        if num_workers < 1:
            raise ValueError("need at least one worker")
        if config is None:
            config = FilterConfig(**config_fields)
        elif config_fields:
            raise TypeError("pass either a config object or bare config "
                            "fields, not both")
        warmup_until = _NEG_INF
        if isinstance(config, FilterConfig):
            if fail_policy is None:
                fail_policy = config.fail_policy
            if config.warmup_grace > 0:
                warmup_until = start_time + config.warmup_grace
            config = config.bitmap_config()
        if fail_policy is None:
            fail_policy = FailPolicy.FAIL_CLOSED

        self.config: BitmapFilterConfig = config
        self.protected = protected
        self.fail_policy = fail_policy
        self.num_workers = num_workers
        self.apd = None  # protocol parity with BitmapFilter; never supported
        self._down = False
        self._stalled = False
        self._last_ts = _NEG_INF
        self._stats_cache: Optional[FilterStats] = None
        self._closed = False

        registry = telemetry if telemetry is not None else get_registry()
        live = registry.enabled
        self._tel = _ShardInstruments(registry, num_workers) if live else None
        self._prev_dumps: List[Optional[list]] = [None] * num_workers

        spec = WorkerSpec(
            config=config,
            protected=protected,
            start_time=start_time,
            fail_policy=fail_policy,
            warmup_until=warmup_until,
            telemetry=live,
        )
        ctx = _preferred_context(mp_context)
        self._conns = []
        self._procs = []
        for w in range(num_workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=shard_worker_main,
                args=(child_conn, spec),
                name=f"repro-shard-{w}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        self._finalizer = weakref.finalize(
            self, _shutdown, self._conns, self._procs)
        if self._tel is not None and warmup_until > _NEG_INF:
            self._tel.warmup_until.set(warmup_until)

    # -- wire helpers ---------------------------------------------------------

    def _recv(self, worker: int):
        status, payload = self._conns[worker].recv()
        if status == "err":
            raise ShardWorkerError(
                f"shard worker {worker} failed:\n{payload}")
        return payload

    def _request(self, worker: int, msg: tuple):
        self._conns[worker].send(msg)
        return self._recv(worker)

    def _broadcast(self, msg: tuple) -> list:
        for conn in self._conns:
            conn.send(msg)
        return [self._recv(w) for w in range(self.num_workers)]

    def _call_all(self, name: str, *args, **kwargs) -> list:
        return self._broadcast(("call", name, args, kwargs))

    def _note_time(self, ts: float) -> None:
        if ts > self._last_ts:
            self._last_ts = ts
        self._stats_cache = None

    def _sync(self) -> None:
        """Advance every worker to the last globally dispatched timestamp.

        Ran before control operations and state reads so that lazily
        rotated workers catch up to exactly where the serial filter would
        be.  Skipped while down: the serial rotation schedule freezes
        during an outage, and advancing here would change ``recover``'s
        missed-rotation count.
        """
        if self._down or self._last_ts == _NEG_INF:
            return
        self._broadcast(("call", "advance_to", (self._last_ts,), {}))

    # -- batch path -----------------------------------------------------------

    def process_batch(self, packets: PacketArray,
                      exact: bool = True) -> np.ndarray:
        """Filter a time-sorted batch across the workers; PASS mask out.

        Outgoing packets are broadcast (replica marking); everything else
        goes to its ``local_addr % N`` owner.  Verdicts come back in
        sub-batch order and are re-scattered into input order; non-owned
        positions keep the serial semantics for their directions (outgoing,
        internal, and transit always pass — while down, incoming is judged
        by the owner's fail policy just as serial's down path does).
        """
        n = len(packets)
        verdict = np.ones(n, dtype=bool)
        if not n:
            return verdict
        directions = packets.directions(self.protected)
        outgoing = directions == DIRECTION_OUTGOING
        incoming = directions == DIRECTION_INCOMING
        local_addr = np.where(incoming, packets.dst, packets.src)
        owner = (local_addr.astype(np.uint64) % self.num_workers).astype(
            np.int64)

        data = packets.data
        positions: List[np.ndarray] = []
        for w, conn in enumerate(self._conns):
            mask = outgoing | (owner == w)
            pos = np.nonzero(mask)[0]
            positions.append(pos)
            conn.send(("batch", data[mask].tobytes(), exact))

        tel = self._tel
        stats_parts: List[dict] = []
        next_rotation = 0.0
        for w in range(self.num_workers):
            payload = self._recv(w)
            verdict_bytes, stats_dict, worker_next_rotation, dump = payload
            sub_verdicts = np.frombuffer(verdict_bytes, dtype=bool)
            pos = positions[w]
            owned = owner[pos] == w
            verdict[pos[owned]] = sub_verdicts[owned]
            stats_parts.append(stats_dict)
            if w == 0:
                next_rotation = worker_next_rotation
            if tel is not None:
                tel.shard_packets[w].inc(len(pos))
                if dump is not None:
                    apply_dump(tel.registry, dump, self._prev_dumps[w],
                               shard=str(w))
                    self._prev_dumps[w] = dump

        self._note_time(float(packets.ts[-1]))
        if tel is not None:
            tel.publish(stats_parts, next_rotation,
                        self.config.rotation_interval)
        return verdict

    # -- scalar path ----------------------------------------------------------

    def process(self, pkt: Packet) -> Decision:
        """Scalar twin of :meth:`process_batch`: broadcast outgoing marks,
        route lookups to the owner."""
        direction = pkt.direction(self.protected)
        if direction is Direction.OUTGOING:
            decision = self._call_all("process", pkt)[0]
        else:
            local = pkt.dst if direction is Direction.INCOMING else pkt.src
            decision = self._request(
                local % self.num_workers, ("call", "process", (pkt,), {}))
        self._note_time(pkt.ts)
        return decision

    # -- merged state ---------------------------------------------------------

    @staticmethod
    def _merge_stats(parts: List[FilterStats]) -> FilterStats:
        """Ownership-aware merge: outgoing-side fields from worker 0 (every
        worker saw every outgoing packet, so they are identical), the
        partitioned directions summed (disjoint by ownership)."""
        w0 = parts[0]
        return FilterStats(
            outgoing=w0.outgoing,
            incoming=sum(p.incoming for p in parts),
            incoming_dropped=sum(p.incoming_dropped for p in parts),
            incoming_passed=sum(p.incoming_passed for p in parts),
            internal=sum(p.internal for p in parts),
            transit=sum(p.transit for p in parts),
            apd_admitted=0,
            marks_suppressed=w0.marks_suppressed,
            rotations=w0.rotations,
            degraded_admitted=sum(p.degraded_admitted for p in parts),
            degraded_dropped=sum(p.degraded_dropped for p in parts),
            warmup_admitted=sum(p.warmup_admitted for p in parts),
            unmarked_outgoing=w0.unmarked_outgoing,
        )

    @property
    def stats(self) -> FilterStats:
        """The merged serial-equivalent counters (cached until mutation)."""
        if self._stats_cache is None:
            self._sync()
            parts = self._broadcast(("get", "stats"))
            self._stats_cache = self._merge_stats(parts)
        return self._stats_cache

    def per_worker_stats(self) -> List[FilterStats]:
        """Each worker's raw (un-merged) counters, for introspection."""
        self._sync()
        return self._broadcast(("get", "stats"))

    @property
    def bitmap(self) -> Bitmap:
        """A read-only *copy* of the replicated bitmap (worker 0's, which
        is identical to every other replica).  Mutating it does not affect
        the workers — use :meth:`flip_bits`/:meth:`mark_key` for that."""
        state = self._state()
        bitmap = Bitmap(self.config.num_vectors, self.config.order)
        for index, vec in enumerate(bitmap.vectors):
            vec.as_numpy()[:] = state["vectors"][index]
        bitmap._idx = state["current_index"]
        bitmap._rotations = state["bitmap_rotations"]
        bitmap._peak_utilization = state["peak_utilization"]
        return bitmap

    def _state(self) -> dict:
        self._sync()
        return self._request(0, ("state",))

    @property
    def next_rotation(self) -> float:
        self._sync()
        return self._request(0, ("get", "next_rotation"))

    @property
    def is_down(self) -> bool:
        return self._down

    @property
    def rotations_stalled(self) -> bool:
        return self._stalled

    @property
    def warmup_until(self) -> float:
        return self._request(0, ("get", "warmup_until"))

    def in_warmup(self, ts: float) -> bool:
        return ts < self.warmup_until

    def utilization(self) -> float:
        self._sync()
        return self._request(0, ("call", "utilization", (), {}))

    @property
    def peak_utilization(self) -> float:
        self._sync()
        return self._request(0, ("get", "peak_utilization"))

    def would_pass_incoming(self, pkt: Packet) -> bool:
        owner = pkt.dst % self.num_workers
        return self._request(
            owner, ("call", "would_pass_incoming", (pkt,), {}))

    # -- time & control surface ----------------------------------------------

    def advance_to(self, ts: float) -> int:
        ran = self._call_all("advance_to", ts)[0]
        self._note_time(ts)
        return ran

    def mark_key(self, proto: int, local_addr: int, local_port: int,
                 remote_addr: int) -> None:
        """Marks go to every replica, exactly like a broadcast outgoing."""
        self._call_all("mark_key", proto, local_addr, local_port, remote_addr)
        self._stats_cache = None

    def fail(self) -> None:
        self._sync()
        self._call_all("fail")
        self._down = True
        self._stats_cache = None
        if self._tel is not None:
            self._tel.degraded.set(1)

    def recover(self, now: float, warmup_grace: Optional[float] = None) -> int:
        missed = self._call_all(
            "recover", now, warmup_grace=warmup_grace)[0]
        self._down = False
        self._note_time(now)
        if self._tel is not None:
            self._tel.degraded.set(0)
            self._tel.warmup_until.set(self.warmup_until)
        return missed

    def begin_warmup(self, until: float) -> None:
        self._call_all("begin_warmup", until)
        self._stats_cache = None
        if self._tel is not None:
            self._tel.warmup_until.set(until)

    def stall_rotations(self) -> None:
        self._sync()
        self._call_all("stall_rotations")
        self._stalled = True
        self._stats_cache = None
        if self._tel is not None:
            self._tel.stalled.set(1)

    def resume_rotations(self, now: float, catch_up: bool = True) -> int:
        ran = self._call_all("resume_rotations", now, catch_up=catch_up)[0]
        self._stalled = False
        self._note_time(now)
        if self._tel is not None:
            self._tel.stalled.set(0)
        return ran

    def set_fail_policy(self, policy: FailPolicy) -> None:
        """Swap the fail policy on every replica (hot-reload surface)."""
        policy = FailPolicy(policy)
        self._call_all("set_fail_policy", policy)
        self.fail_policy = policy
        self._stats_cache = None

    def apply_snapshot_state(
        self,
        vectors: np.ndarray,
        current_index: int,
        bitmap_rotations: int,
        next_rotation: float,
        stats: Optional[dict] = None,
    ) -> None:
        """Load snapshot state into every replica (warm-start surface).

        The bit vectors and rotation bookkeeping are broadcast so the
        replicas stay byte-identical; the counters — whose incoming-side
        fields are *merged* totals that cannot be re-partitioned by owner —
        go to worker 0 only.  The ownership-aware stats merge reads
        outgoing-side fields from worker 0 and sums the partitioned ones,
        so the merged view reproduces the snapshot's counters exactly.
        """
        if self._down:
            raise ValueError("cannot load snapshot state while the filter "
                             "is down; recover it first")
        vectors = np.asarray(vectors, dtype=np.uint8)
        call_args = (vectors, current_index, bitmap_rotations, next_rotation)
        for w, conn in enumerate(self._conns):
            kwargs = {"stats": stats} if (w == 0 and stats is not None) else {}
            conn.send(("call", "apply_snapshot_state", call_args, kwargs))
        for w in range(self.num_workers):
            self._recv(w)
        # The replicas now sit exactly one interval before next_rotation;
        # remember that time so _sync() does not rewind or over-advance.
        boundary = next_rotation - self.config.rotation_interval
        if boundary > self._last_ts:
            self._last_ts = boundary
        self._stats_cache = None

    def flip_bits(self, fraction: float, seed: int = 0xB17F11) -> int:
        """Broadcast deterministic corruption: every replica flips the same
        bits, so the replicas stay byte-identical (and identical to what a
        serial filter fed the same call would hold)."""
        self._sync()
        flipped = self._call_all("flip_bits", fraction, seed)[0]
        self._stats_cache = None
        return flipped

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Shut the workers down (idempotent; also runs at GC)."""
        if self._closed:
            return
        self._closed = True
        self._finalizer()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ShardedBitmapFilter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        cfg = self.config
        return (
            f"ShardedBitmapFilter(workers={self.num_workers}, "
            f"k={cfg.num_vectors}, n={cfg.order}, m={cfg.num_hashes}, "
            f"dt={cfg.rotation_interval}, Te={cfg.expiry_timer})"
        )


def shard_filter(
    filt: BitmapFilter,
    num_workers: int,
    *,
    mp_context: Optional[str] = None,
    telemetry: Optional[MetricsRegistry] = None,
) -> ShardedBitmapFilter:
    """Wrap a *pristine* serial filter's configuration in a sharded one.

    The donor only contributes configuration (geometry, protected space,
    fail policy, any open warm-up window, rotation schedule origin); its
    bit state is not shipped, so a filter that has already processed
    packets is refused loudly rather than silently diverging.
    """
    if isinstance(filt, ShardedBitmapFilter):
        return filt
    if filt.apd is not None:
        raise ValueError(
            "adaptive packet dropping needs global arrival order, which "
            "sharded replicas never see; use the shared backend "
            "(share_filter / backend=\"shared\") or stay serial")
    if filt.stats.total or filt.stats.rotations or not filt.bitmap.is_empty():
        raise ValueError(
            "shard_filter needs a pristine filter: this one has already "
            "processed traffic, so its bit state cannot be reproduced "
            "by fresh worker replicas")
    start_time = filt.next_rotation - filt.config.rotation_interval
    sharded = ShardedBitmapFilter(
        filt.config,
        filt.protected,
        num_workers=num_workers,
        start_time=start_time,
        fail_policy=filt.fail_policy,
        telemetry=telemetry,
        mp_context=mp_context,
    )
    if filt.warmup_until > _NEG_INF:
        sharded.begin_warmup(filt.warmup_until)
    return sharded
