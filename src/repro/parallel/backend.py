"""The execution-backend switch: serial or sharded, one ambient setting.

Mirrors the telemetry-registry idiom (:mod:`repro.telemetry.registry`):
components that build a bitmap filter call :func:`create_filter` instead of
constructing :class:`~repro.core.bitmap_filter.BitmapFilter` directly, and
the ambient :class:`ExecutionBackend` — installed process-wide with
:func:`set_backend` or scoped with :func:`use_backend` — decides whether
that returns a serial filter or a
:class:`~repro.parallel.sharded.ShardedBitmapFilter` fan-out.  The CLI's
``--workers N`` flag is exactly ``use_backend(name="sharded", workers=N)``
around the experiment run, which is how every experiment runs parallel
without any per-experiment plumbing.

Requests the sharded backend cannot honor exactly fall back to serial
rather than diverge: adaptive packet dropping (drop decisions depend on
global arrival order, so it is inherently serial) builds a serial filter
even under ``backend="sharded"``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional, Union

from repro.core.apd import AdaptiveDroppingPolicy
from repro.core.bitmap_filter import AnyFilterConfig, BitmapFilter
from repro.core.resilience import FailPolicy
from repro.net.address import AddressSpace
from repro.parallel.sharded import ShardedBitmapFilter
from repro.telemetry.registry import MetricsRegistry

__all__ = [
    "ExecutionBackend",
    "SERIAL_BACKEND",
    "create_filter",
    "get_backend",
    "set_backend",
    "use_backend",
]

_BACKEND_NAMES = ("serial", "sharded")


@dataclass(frozen=True)
class ExecutionBackend:
    """Where filter work runs: in-process, or fanned out over workers."""

    name: str = "serial"
    workers: int = 1

    def __post_init__(self) -> None:
        if self.name not in _BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {self.name!r}; choose from {_BACKEND_NAMES}")
        if self.workers < 1:
            raise ValueError("backend needs at least one worker")
        if self.name == "serial" and self.workers != 1:
            raise ValueError("the serial backend has exactly one worker")

    @property
    def is_sharded(self) -> bool:
        return self.name == "sharded"


#: The default: everything in-process, exactly as before this module existed.
SERIAL_BACKEND = ExecutionBackend()

_active_backend: ExecutionBackend = SERIAL_BACKEND


def get_backend() -> ExecutionBackend:
    """The backend :func:`create_filter` consults when building filters."""
    return _active_backend


def set_backend(backend: Optional[ExecutionBackend]) -> ExecutionBackend:
    """Install ``backend`` process-wide (None → serial); returns the
    previous one so callers can restore it."""
    global _active_backend
    previous = _active_backend
    _active_backend = backend if backend is not None else SERIAL_BACKEND
    return previous


@contextmanager
def use_backend(backend: Optional[ExecutionBackend] = None, *,
                name: Optional[str] = None, workers: Optional[int] = None):
    """Scoped :func:`set_backend`: yields the backend, restores on exit.

    Accepts either a ready :class:`ExecutionBackend` or the ``name=``/
    ``workers=`` fields to build one (``use_backend(name="sharded",
    workers=4)``).
    """
    if backend is None:
        fields = {}
        if name is not None:
            fields["name"] = name
        if workers is not None:
            fields["workers"] = workers
        backend = ExecutionBackend(**fields)
    elif name is not None or workers is not None:
        raise TypeError("pass either a backend object or name=/workers= "
                        "fields, not both")
    previous = set_backend(backend)
    try:
        yield backend
    finally:
        set_backend(previous)


def create_filter(
    config: Optional[AnyFilterConfig] = None,
    protected: Optional[AddressSpace] = None,
    start_time: float = 0.0,
    apd: Optional[AdaptiveDroppingPolicy] = None,
    fail_policy: Optional[FailPolicy] = None,
    *,
    telemetry: Optional[MetricsRegistry] = None,
    backend: Optional[ExecutionBackend] = None,
    **config_fields,
) -> Union[BitmapFilter, ShardedBitmapFilter]:
    """Build a bitmap filter on the active (or given) execution backend.

    Signature-compatible with ``BitmapFilter(...)``, so switching a call
    site is mechanical.  Serial-only features (currently: adaptive packet
    dropping) silently fall back to a serial filter — the results are
    identical either way, which is the backend contract.
    """
    backend = backend if backend is not None else get_backend()
    if backend.is_sharded and apd is None:
        return ShardedBitmapFilter(
            config,
            protected,
            num_workers=backend.workers,
            start_time=start_time,
            fail_policy=fail_policy,
            telemetry=telemetry,
            **config_fields,
        )
    return BitmapFilter(
        config,
        protected,
        start_time=start_time,
        apd=apd,
        fail_policy=fail_policy,
        telemetry=telemetry,
        **config_fields,
    )
