"""The execution-backend switch: serial, sharded, or shared memory.

Mirrors the telemetry-registry idiom (:mod:`repro.telemetry.registry`):
components that build a bitmap filter call :func:`create_filter` instead of
constructing :class:`~repro.core.bitmap_filter.BitmapFilter` directly, and
the ambient :class:`ExecutionBackend` — installed process-wide with
:func:`set_backend` or scoped with :func:`use_backend` — decides whether
that returns a serial filter, a
:class:`~repro.parallel.sharded.ShardedBitmapFilter` fan-out (replicated
bitmaps, broadcast marks), or a
:class:`~repro.parallel.shared.SharedBitmapFilter` (one shared-memory
bitmap, reader workers, vectorized exact batch path).  The CLI's
``--workers N`` / ``--backend`` flags are exactly
``use_backend(name=..., workers=N)`` around the experiment run, which is
how every experiment runs parallel without per-experiment plumbing.

Adaptive packet dropping needs global arrival order.  The shared backend
supports it natively (the policy runs in the single writer process and the
arrival counters live in the shared header); the sharded backend cannot,
and *deprecatedly* falls back to a serial filter — new code should request
``backend="shared"`` instead, and the silent fallback now warns.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional, Union

from repro.core.apd import AdaptiveDroppingPolicy
from repro.core.bitmap_filter import AnyFilterConfig, BitmapFilter
from repro.core.resilience import FailPolicy
from repro.net.address import AddressSpace
from repro.parallel.shared import SharedBitmapFilter
from repro.parallel.sharded import ShardedBitmapFilter
from repro.telemetry.registry import MetricsRegistry

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "SERIAL_BACKEND",
    "create_filter",
    "get_backend",
    "set_backend",
    "use_backend",
]

#: Every selectable backend, in the order the CLI surfaces them.
BACKEND_NAMES = ("serial", "sharded", "shared")
_BACKEND_NAMES = BACKEND_NAMES  # backwards-compatible alias


@dataclass(frozen=True)
class ExecutionBackend:
    """Where filter work runs: in-process, or fanned out over workers."""

    name: str = "serial"
    workers: int = 1

    def __post_init__(self) -> None:
        if self.name not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {self.name!r}; choose from {BACKEND_NAMES}")
        if self.workers < 1:
            raise ValueError("backend needs at least one worker")
        if self.name == "serial" and self.workers != 1:
            raise ValueError("the serial backend has exactly one worker")

    @property
    def is_sharded(self) -> bool:
        return self.name == "sharded"

    @property
    def is_shared(self) -> bool:
        return self.name == "shared"

    @property
    def is_parallel(self) -> bool:
        return self.name != "serial"


#: The default: everything in-process, exactly as before this module existed.
SERIAL_BACKEND = ExecutionBackend()

_active_backend: ExecutionBackend = SERIAL_BACKEND


def get_backend() -> ExecutionBackend:
    """The backend :func:`create_filter` consults when building filters."""
    return _active_backend


def set_backend(backend: Optional[ExecutionBackend]) -> ExecutionBackend:
    """Install ``backend`` process-wide (None → serial); returns the
    previous one so callers can restore it."""
    global _active_backend
    previous = _active_backend
    _active_backend = backend if backend is not None else SERIAL_BACKEND
    return previous


@contextmanager
def use_backend(backend: Optional[ExecutionBackend] = None, *,
                name: Optional[str] = None, workers: Optional[int] = None):
    """Scoped :func:`set_backend`: yields the backend, restores on exit.

    Accepts either a ready :class:`ExecutionBackend` or the ``name=``/
    ``workers=`` fields to build one (``use_backend(name="shared",
    workers=4)``).
    """
    if backend is None:
        fields = {}
        if name is not None:
            fields["name"] = name
        if workers is not None:
            fields["workers"] = workers
        backend = ExecutionBackend(**fields)
    elif name is not None or workers is not None:
        raise TypeError("pass either a backend object or name=/workers= "
                        "fields, not both")
    previous = set_backend(backend)
    try:
        yield backend
    finally:
        set_backend(previous)


def create_filter(
    config: Optional[AnyFilterConfig] = None,
    protected: Optional[AddressSpace] = None,
    start_time: float = 0.0,
    apd: Optional[AdaptiveDroppingPolicy] = None,
    fail_policy: Optional[FailPolicy] = None,
    *,
    telemetry: Optional[MetricsRegistry] = None,
    backend: Optional[ExecutionBackend] = None,
    **config_fields,
) -> Union[BitmapFilter, ShardedBitmapFilter, SharedBitmapFilter]:
    """Build a bitmap filter on the active (or given) execution backend.

    Signature-compatible with ``BitmapFilter(...)``, so switching a call
    site is mechanical.  The shared backend honors every feature including
    adaptive packet dropping; the sharded backend cannot support APD (drop
    decisions depend on global arrival order, which replicas do not see)
    and falls back to a serial filter with a :class:`DeprecationWarning` —
    results are identical either way, but the fallback is no longer
    silent: request ``backend="shared"`` for parallel APD.
    """
    backend = backend if backend is not None else get_backend()
    if backend.is_shared:
        return SharedBitmapFilter(
            config,
            protected,
            num_workers=backend.workers,
            start_time=start_time,
            apd=apd,
            fail_policy=fail_policy,
            telemetry=telemetry,
            **config_fields,
        )
    if backend.is_sharded:
        if apd is None:
            return ShardedBitmapFilter(
                config,
                protected,
                num_workers=backend.workers,
                start_time=start_time,
                fail_policy=fail_policy,
                telemetry=telemetry,
                **config_fields,
            )
        warnings.warn(
            "adaptive packet dropping needs global arrival order, which the "
            "sharded backend's replicas never see; building a serial filter "
            "instead. This silent fallback is deprecated — use "
            'backend="shared", whose single-writer design supports APD '
            "natively.",
            DeprecationWarning,
            stacklevel=2,
        )
    return BitmapFilter(
        config,
        protected,
        start_time=start_time,
        apd=apd,
        fail_policy=fail_policy,
        telemetry=telemetry,
        **config_fields,
    )
