"""Parallel execution backends, registered into the unified filter factory.

The ambient-backend machinery (:class:`ExecutionBackend`,
:func:`get_backend` / :func:`set_backend` / :func:`use_backend`) now lives
in :mod:`repro.core.filter_api` next to :func:`build_filter`, so serial
construction never touches multiprocessing; this module re-exports it and
registers the two parallel builders:

- ``sharded`` — :class:`~repro.parallel.sharded.ShardedBitmapFilter` fan-out
  (replicated bitmaps, broadcast marks, ``local_addr % N`` partitioned
  lookups);
- ``shared`` — :class:`~repro.parallel.shared.SharedBitmapFilter` (one
  shared-memory bitmap behind a seqlock, reader workers, vectorized exact
  batch path, native shard-aware APD).

Adaptive packet dropping needs global arrival order.  The shared backend
supports it natively (the policy runs in the single writer process and the
arrival counters live in the shared header); the sharded backend cannot,
and *deprecatedly* falls back to a serial filter — new code should request
``backend="shared"`` instead, and the silent fallback warns.

:func:`create_filter` and this module's :func:`use_backend` remain as thin
deprecated aliases; call :func:`repro.core.filter_api.build_filter` and
:func:`repro.core.filter_api.use_backend` directly.
"""

from __future__ import annotations

import warnings
from typing import Optional, Union

from repro.core.apd import AdaptiveDroppingPolicy
from repro.core.bitmap_filter import AnyFilterConfig, BitmapFilter
from repro.core.filter_api import (
    BACKEND_NAMES,
    SERIAL_BACKEND,
    ExecutionBackend,
    build_filter,
    deprecated_alias,
    get_backend,
    register_backend,
    set_backend,
)
from repro.core.filter_api import use_backend as _use_backend
from repro.core.resilience import FailPolicy
from repro.net.address import AddressSpace
from repro.parallel.shared import SharedBitmapFilter
from repro.parallel.sharded import ShardedBitmapFilter
from repro.telemetry.registry import MetricsRegistry

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "SERIAL_BACKEND",
    "create_filter",
    "get_backend",
    "set_backend",
    "use_backend",
]

_BACKEND_NAMES = BACKEND_NAMES  # backwards-compatible alias


def _sharded_builder(config, protected, *, workers, start_time, apd,
                     fail_policy, telemetry, mp_context, config_fields):
    if apd is not None:
        warnings.warn(
            "adaptive packet dropping needs global arrival order, which the "
            "sharded backend's replicas never see; building a serial filter "
            "instead. This silent fallback is deprecated — use "
            'backend="shared", whose single-writer design supports APD '
            "natively.",
            DeprecationWarning,
            stacklevel=4,
        )
        return BitmapFilter(config, protected, start_time=start_time,
                            apd=apd, fail_policy=fail_policy,
                            telemetry=telemetry, **config_fields)
    return ShardedBitmapFilter(config, protected, num_workers=workers,
                               start_time=start_time, fail_policy=fail_policy,
                               telemetry=telemetry, mp_context=mp_context,
                               **config_fields)


def _shared_builder(config, protected, *, workers, start_time, apd,
                    fail_policy, telemetry, mp_context, config_fields):
    return SharedBitmapFilter(config, protected, num_workers=workers,
                              start_time=start_time, apd=apd,
                              fail_policy=fail_policy, telemetry=telemetry,
                              mp_context=mp_context, **config_fields)


register_backend("sharded", _sharded_builder)
register_backend("shared", _shared_builder)


def use_backend(backend: Optional[ExecutionBackend] = None, *,
                name: Optional[str] = None, workers: Optional[int] = None):
    """Deprecated alias for :func:`repro.core.filter_api.use_backend`."""
    deprecated_alias("repro.parallel.use_backend",
                     "repro.core.filter_api.use_backend",
                     note="the unified filter-construction API")
    return _use_backend(backend, name=name, workers=workers)


def create_filter(
    config: Optional[AnyFilterConfig] = None,
    protected: Optional[AddressSpace] = None,
    start_time: float = 0.0,
    apd: Optional[AdaptiveDroppingPolicy] = None,
    fail_policy: Optional[FailPolicy] = None,
    *,
    telemetry: Optional[MetricsRegistry] = None,
    backend: Optional[ExecutionBackend] = None,
    **config_fields,
) -> Union[BitmapFilter, ShardedBitmapFilter, SharedBitmapFilter]:
    """Deprecated alias for :func:`repro.core.filter_api.build_filter`.

    Kept signature-compatible with the historical factory; unlike
    ``build_filter`` it never wraps ambient layers (callers predating the
    layers API expect a bare backend filter).
    """
    deprecated_alias("repro.parallel.create_filter",
                     "repro.core.filter_api.build_filter",
                     note="the unified filter-construction API")
    return build_filter(config, protected, start_time, apd, fail_policy,
                        telemetry=telemetry, backend=backend, layers=(),
                        **config_fields)
