"""The shard worker: one long-lived process hosting one filter replica.

Each worker owns a full :class:`~repro.core.bitmap_filter.BitmapFilter`
(not a partial-keyspace one — see :mod:`repro.parallel.sharded` for why
replicated marking is what makes sharding bit-for-bit equivalent) plus,
when the parent's telemetry is live, its own
:class:`~repro.telemetry.registry.MetricsRegistry`.

The wire protocol is deliberately tiny — pickled tuples over one duplex
:func:`multiprocessing.Pipe` per worker, request/response in lockstep:

========================  =====================================================
request                   response payload
========================  =====================================================
``("batch", raw, exact)``  ``(verdict_bytes, stats_dict, next_rotation, dump)``
``("call", name, a, kw)``  return value of ``getattr(filt, name)(*a, **kw)``
``("get", name)``          ``getattr(filt, name)``
``("set", name, value)``   ``None``
``("state",)``             full picklable snapshot of the filter state
``("telemetry",)``         cumulative registry dump (or ``None``)
``("close",)``             ``None`` (the worker then exits)
========================  =====================================================

Every response is ``("ok", payload)`` or ``("err", formatted_traceback)``;
the parent re-raises the latter as :class:`ShardWorkerError`.  Batch packet
data crosses the pipe as raw structured-array bytes, verdicts come back as
raw boolean bytes — no per-packet pickling.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass

import numpy as np

from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig
from repro.core.resilience import FailPolicy
from repro.net.address import AddressSpace
from repro.net.packet import PACKET_DTYPE, PacketArray
from repro.telemetry.merge import dump_metrics
from repro.telemetry.registry import MetricsRegistry, set_registry

__all__ = ["ShardWorkerError", "WorkerSpec", "shard_worker_main"]


class ShardWorkerError(RuntimeError):
    """An exception raised inside a shard worker, re-raised in the parent."""


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to build its filter replica."""

    config: BitmapFilterConfig
    protected: AddressSpace
    start_time: float = 0.0
    fail_policy: FailPolicy = FailPolicy.FAIL_CLOSED
    warmup_until: float = float("-inf")
    telemetry: bool = False


def _build_filter(spec: WorkerSpec):
    registry = MetricsRegistry() if spec.telemetry else None
    # Neutralize any live default registry inherited over fork() — the
    # worker publishes through its own registry (or not at all), never
    # through a copied parent one.
    set_registry(registry)
    filt = BitmapFilter(
        spec.config,
        spec.protected,
        start_time=spec.start_time,
        fail_policy=spec.fail_policy,
        telemetry=registry,
    )
    if spec.warmup_until > float("-inf"):
        filt.begin_warmup(spec.warmup_until)
    return filt, registry


def _filter_state(filt: BitmapFilter) -> dict:
    """A picklable snapshot of the replica (bitmap bytes + bookkeeping)."""
    bitmap = filt.bitmap
    vectors = np.stack([vec.as_numpy().copy() for vec in bitmap.vectors])
    return {
        "vectors": vectors,
        "current_index": bitmap.current_index,
        "bitmap_rotations": bitmap.rotations,
        "peak_utilization": bitmap.peak_utilization,
        "next_rotation": filt.next_rotation,
        "stats": filt.stats.as_dict(),
        "warmup_until": filt.warmup_until,
        "down": filt.is_down,
        "stalled": filt.rotations_stalled,
        "utilization": filt.utilization(),
    }


def shard_worker_main(conn, spec: WorkerSpec) -> None:
    """The worker process entry point: serve requests until ``close``/EOF."""
    filt, registry = _build_filter(spec)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        op = msg[0]
        try:
            if op == "batch":
                raw, exact = msg[1], msg[2]
                data = np.frombuffer(raw, dtype=PACKET_DTYPE).copy()
                verdicts = filt.process_batch(PacketArray(data), exact=exact)
                dump = dump_metrics(registry) if registry is not None else None
                payload = (verdicts.tobytes(), filt.stats.as_dict(),
                           filt.next_rotation, dump)
            elif op == "call":
                name, call_args, call_kwargs = msg[1], msg[2], msg[3]
                payload = getattr(filt, name)(*call_args, **call_kwargs)
            elif op == "get":
                payload = getattr(filt, msg[1])
            elif op == "set":
                setattr(filt, msg[1], msg[2])
                payload = None
            elif op == "state":
                payload = _filter_state(filt)
            elif op == "telemetry":
                payload = dump_metrics(registry) if registry is not None else None
            elif op == "close":
                conn.send(("ok", None))
                break
            else:
                raise ValueError(f"unknown shard-worker op {op!r}")
        except Exception:  # noqa: BLE001 - everything crosses the pipe
            try:
                conn.send(("err", traceback.format_exc()))
            except (BrokenPipeError, OSError):
                break
            continue
        try:
            conn.send(("ok", payload))
        except (BrokenPipeError, OSError):
            break
    conn.close()
