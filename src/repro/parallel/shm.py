"""Shared-memory {k x n}-bitmap: one buffer, one writer, many readers.

This is the storage layer of the ``shared`` execution backend
(:mod:`repro.parallel.shared`).  Where the sharded backend keeps a full
bitmap *replica* per worker and broadcasts every mark, the shared backend
keeps exactly one copy of the bit state in a
:class:`multiprocessing.shared_memory.SharedMemory` segment:

- a 64-byte header of eight little-endian ``uint64`` words (seqlock word,
  epoch counter, current index, the shared arrival counters APD consults,
  and the bitmap geometry so readers can self-validate on attach), then
- ``k`` slabs of ``2**n / 8`` bytes, one per bloom row.

:class:`SharedBitmap` subclasses :class:`~repro.core.bitmap.Bitmap` and
keeps its whole public surface — the vectors are
:class:`SharedBitVector` instances (zero-copy views into the segment) and
the index/rotation bookkeeping lives in the shared header, so marks,
lookups, rotations, snapshot restores and bit flips made by the writer are
immediately visible to every attached reader without any broadcast.

**Epoch-indexed rotation.**  ``rotate()`` does not copy state: it bumps the
shared epoch counter, advances ``idx = epoch mod k``, and zeroes only the
retiring slab.  Readers never see a half-rotated bitmap because every
structural write (rotation, snapshot restore, bit flips, clears) is
bracketed by the header's seqlock word: the writer makes it odd, mutates,
then makes it even; a reader samples the word before and after its lookup
and retries when the samples differ or are odd.  ``tests/parallel/
test_shared_properties.py`` holds the proof that a reader can never
observe a retired epoch's bits.

**Concurrency contract.**  Exactly one process (the parent filter) writes;
any number of processes read.  Single aligned 8-byte loads/stores are
atomic on every platform CPython supports, and the seqlock turns the
multi-word updates into an atomic unit from the readers' point of view.
"""

from __future__ import annotations

import secrets
from contextlib import contextmanager
from multiprocessing import resource_tracker, shared_memory
from typing import Optional

import numpy as np

from repro.core.bitmap import Bitmap
from repro.core.bitvector import BitVector

__all__ = [
    "HEADER_BYTES",
    "SEQ",
    "EPOCH",
    "IDX",
    "ARRIVALS_TOTAL",
    "ARRIVALS_OUT",
    "ARRIVALS_IN",
    "SharedBitVector",
    "SharedBitmap",
]

# Header word offsets (uint64 each).
SEQ = 0             # seqlock: odd while a structural write is in flight
EPOCH = 1           # rotation count — the "epoch" readers key off
IDX = 2             # current vector index (== epoch mod k in normal operation)
ARRIVALS_TOTAL = 3  # packets seen by the filter (shared APD arrival counter)
ARRIVALS_OUT = 4    # outgoing arrivals
ARRIVALS_IN = 5     # incoming arrivals
_GEOM_K = 6         # geometry, for reader self-validation on attach
_GEOM_ORDER = 7

_HEADER_WORDS = 8
HEADER_BYTES = _HEADER_WORDS * 8


class SharedBitVector(BitVector):
    """A :class:`BitVector` whose backing bytes live in shared memory.

    The parent class keeps all its logic: ``_bytes`` is simply rebound to a
    writable :class:`memoryview` slice of the segment, which supports the
    same byte-indexed operations as the original ``bytearray`` (and
    ``np.frombuffer`` for the vectorized paths).  ``release()`` must run
    before the owning segment can be closed.
    """

    __slots__ = ()

    def __init__(self, order: int, buf: memoryview):
        if not 3 <= order <= 32:
            raise ValueError(f"bit vector order must be in [3, 32], got {order}")
        num_bits = 1 << order
        if len(buf) != num_bits >> 3:
            raise ValueError(
                f"shared slab holds {len(buf)} bytes; order {order} "
                f"needs {num_bits >> 3}")
        self._order = order
        self._num_bits = num_bits
        self._bytes = buf

    def release(self) -> None:
        """Drop the memoryview so the shared segment can unmap."""
        self._bytes.release()


class SharedBitmap(Bitmap):
    """A {k x n}-bitmap stored in one shared-memory segment.

    Build the writer's copy with ``SharedBitmap(k, n)`` (creates the
    segment) and reader copies with :meth:`SharedBitmap.attach`.  Readers
    must treat the bitmap as read-only and wrap lookups in
    :meth:`read_consistent` (or check :attr:`seq` themselves).
    """

    __slots__ = ("_shm", "_header", "_owner", "_closed")

    def __init__(self, num_vectors: int, order: int,
                 *, name: Optional[str] = None):
        if num_vectors < 2:
            raise ValueError(
                f"a bitmap needs at least 2 vectors (one current, one "
                f"expiring), got {num_vectors}")
        if not 3 <= order <= 32:
            raise ValueError(f"bit vector order must be in [3, 32], got {order}")
        slab_bytes = (1 << order) >> 3
        size = HEADER_BYTES + num_vectors * slab_bytes
        if name is None:
            name = f"repro-bitmap-{secrets.token_hex(8)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        self._wrap(shm, num_vectors, order, owner=True)
        header = self._header
        header[:] = 0
        header[_GEOM_K] = num_vectors
        header[_GEOM_ORDER] = order
        self._peak_utilization = 0.0

    @classmethod
    def attach(cls, name: str) -> "SharedBitmap":
        """Open an existing segment as a reader (geometry from the header).

        CPython < 3.13 has no ``track=False``: attaching would register the
        segment with the resource tracker as if this process created it,
        and a forked reader shares the parent's tracker — so the
        registration is suppressed during attach, ensuring a reader's exit
        can never unlink a segment the writer still owns.
        """
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
        self = cls.__new__(cls)
        header = np.frombuffer(shm.buf, dtype="<u8", count=_HEADER_WORDS)
        num_vectors = int(header[_GEOM_K])
        order = int(header[_GEOM_ORDER])
        del header
        expected = HEADER_BYTES + num_vectors * ((1 << order) >> 3)
        if num_vectors < 2 or not 3 <= order <= 32 or shm.size < expected:
            shm.close()
            raise ValueError(
                f"segment {name!r} does not hold a shared bitmap "
                f"(header says k={num_vectors}, n={order}, "
                f"size={shm.size})")
        self._wrap(shm, num_vectors, order, owner=False)
        self._peak_utilization = 0.0
        return self

    def _wrap(self, shm: shared_memory.SharedMemory, num_vectors: int,
              order: int, *, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self._closed = False
        self._order = order
        self._num_vectors = num_vectors
        self._header = np.frombuffer(shm.buf, dtype="<u8",
                                     count=_HEADER_WORDS)
        slab_bytes = (1 << order) >> 3
        self._vectors = [
            SharedBitVector(
                order,
                shm.buf[HEADER_BYTES + i * slab_bytes:
                        HEADER_BYTES + (i + 1) * slab_bytes])
            for i in range(num_vectors)
        ]

    # -- shared bookkeeping ----------------------------------------------------
    #
    # The parent class reads/writes ``self._idx`` and ``self._rotations``;
    # these properties shadow its slots and redirect to the shared header,
    # so every inherited method (mark/test/clear_all/...) operates on the
    # shared state without modification.

    @property
    def _idx(self) -> int:
        return int(self._header[IDX])

    @_idx.setter
    def _idx(self, value: int) -> None:
        self._header[IDX] = value

    @property
    def _rotations(self) -> int:
        return int(self._header[EPOCH])

    @_rotations.setter
    def _rotations(self, value: int) -> None:
        self._header[EPOCH] = value

    @property
    def name(self) -> str:
        """The shared-memory segment name readers attach to."""
        return self._shm.name

    @property
    def epoch(self) -> int:
        """The shared epoch counter (== :attr:`rotations`)."""
        return int(self._header[EPOCH])

    @property
    def seq(self) -> int:
        """The seqlock word: odd while a structural write is in flight."""
        return int(self._header[SEQ])

    @property
    def arrivals(self) -> tuple:
        """(total, outgoing, incoming) shared arrival counters."""
        header = self._header
        return (int(header[ARRIVALS_TOTAL]), int(header[ARRIVALS_OUT]),
                int(header[ARRIVALS_IN]))

    def publish_arrivals(self, total: int, outgoing: int, incoming: int) -> None:
        """Writer-side: expose global arrival counts to every reader.

        This is the counter that makes adaptive packet dropping shard-aware:
        the policy's indicator state is driven by the one process that sees
        every arrival in order, and readers observe the same totals here.
        """
        header = self._header
        header[ARRIVALS_TOTAL] = total
        header[ARRIVALS_OUT] = outgoing
        header[ARRIVALS_IN] = incoming

    # -- writer-side structural updates ---------------------------------------

    @contextmanager
    def write_guard(self):
        """Bracket a multi-word update so readers retry instead of tearing."""
        header = self._header
        header[SEQ] += 1
        try:
            yield
        finally:
            header[SEQ] += 1

    def rotate(self) -> int:
        """Epoch-indexed Algorithm 1: bump the epoch, zero the retiring slab.

        No state is copied — the vector that was current becomes the
        retiring slab and is cleared in place, exactly like the serial
        bitmap, but the index/epoch advance and the clear are one seqlocked
        unit so readers can never test against a half-cleared vector.
        """
        header = self._header
        last = int(header[IDX])
        # Peak utilization is sampled pre-clear, exactly like the serial path.
        utilization = self._vectors[last].utilization()
        if utilization > self._peak_utilization:
            self._peak_utilization = utilization
        header[SEQ] += 1
        header[IDX] = (last + 1) % self._num_vectors
        header[EPOCH] += 1
        self._vectors[last].clear()
        header[SEQ] += 1
        return int(header[IDX])

    def clear_all(self) -> None:
        with self.write_guard():
            super().clear_all()

    # -- reader-side consistency ----------------------------------------------

    def read_consistent(self, fn):
        """Run ``fn(current_index, epoch)`` under the seqlock; retry on tear.

        Returns ``(result, epoch)`` where ``epoch`` is the rotation count
        the read is guaranteed to have been consistent with — the proof
        obligation that a reader never consults a retired epoch's bits.
        """
        header = self._header
        while True:
            seq0 = int(header[SEQ])
            if seq0 & 1:
                continue
            idx = int(header[IDX])
            epoch = int(header[EPOCH])
            result = fn(idx, epoch)
            if int(header[SEQ]) == seq0:
                return result, epoch

    def test_current_consistent(self, indices) -> tuple:
        """Seqlocked membership test: ``(all-bits-set, epoch)``."""
        indices = tuple(indices)
        return self.read_consistent(
            lambda idx, _epoch: self._vectors[idx].test_all(indices))

    # -- lifecycle ------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the views and unmap; the owner also unlinks the segment."""
        if self._closed:
            return
        self._closed = True
        for vec in self._vectors:
            vec.release()
        self._vectors = []
        self._header = None
        try:
            self._shm.close()
        except BufferError:
            # A transient view (e.g. an ndarray bound in a caller's frame)
            # still exports the buffer; collect and retry, else leave the
            # unmap to process exit — unlink below still reclaims the name.
            import gc
            gc.collect()
            try:
                self._shm.close()
            except BufferError:  # pragma: no cover - exit will unmap
                pass
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __repr__(self) -> str:
        if self._closed:
            return f"SharedBitmap(closed, name={self._shm.name!r})"
        return (
            f"SharedBitmap(k={self._num_vectors}, n={self._order}, "
            f"idx={self.current_index}, epoch={self.epoch}, "
            f"name={self._shm.name!r})"
        )
