"""The shared-backend reader worker: seqlocked lookups on the one bitmap.

Unlike the sharded backend's workers (:mod:`repro.parallel.worker`), which
each own a full :class:`~repro.core.bitmap_filter.BitmapFilter` replica and
must be fed every outgoing mark, a shared-backend worker owns **no filter
state at all**: it attaches to the parent's
:class:`~repro.parallel.shm.SharedBitmap` segment by name, builds the same
:class:`~repro.core.hashing.HashFamily` from the spec, and answers
membership lookups straight off the shared bits.  Marks, rotations,
snapshot restores and bit flips performed by the parent are visible here
the moment they land — there is nothing to broadcast and nothing that can
drift.

Every lookup runs under the segment's seqlock
(:meth:`~repro.parallel.shm.SharedBitmap.test_current_consistent`) and
reports the epoch it was consistent with, which is how the property suite
proves a reader can never judge a packet against a retired epoch.

The wire protocol mirrors the sharded worker's pickled-tuple pipe idiom:

==============================================  ===========================
request                                          response payload
==============================================  ===========================
``("test", proto, local, port, remote)``         ``(hit, epoch)``
``("test_indices", indices)``                    ``(hit, epoch)``
``("header",)``                                  8-tuple of header words
``("vector", i)``                                raw bytes of slab ``i``
``("epoch",)``                                   current epoch counter
``("close",)``                                   ``None`` (worker exits)
==============================================  ===========================

Responses are ``("ok", payload)`` or ``("err", traceback)``; the parent
re-raises the latter as
:class:`~repro.parallel.worker.ShardWorkerError`.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass

from repro.core.hashing import HashFamily
from repro.net.flow import bitmap_key_incoming
from repro.parallel.shm import SharedBitmap

__all__ = ["SharedWorkerSpec", "shared_worker_main"]


@dataclass(frozen=True)
class SharedWorkerSpec:
    """Everything a reader needs: the segment name and the hash family."""

    shm_name: str
    num_hashes: int
    order: int
    seed: int
    worker_index: int
    num_workers: int


def shared_worker_main(conn, spec: SharedWorkerSpec) -> None:
    """The reader process entry point: serve lookups until ``close``/EOF."""
    bitmap = SharedBitmap.attach(spec.shm_name)
    hashes = HashFamily(spec.num_hashes, spec.order, spec.seed)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        op = msg[0]
        try:
            if op == "test":
                proto, local_addr, local_port, remote_addr = msg[1:5]
                key = bitmap_key_incoming(proto, local_addr, local_port,
                                          remote_addr)
                payload = bitmap.test_current_consistent(hashes.indices(key))
            elif op == "test_indices":
                payload = bitmap.test_current_consistent(msg[1])
            elif op == "header":
                payload = tuple(int(word) for word in bitmap._header)
            elif op == "vector":
                payload = bytes(bitmap.vector(msg[1]).as_numpy())
            elif op == "epoch":
                payload = bitmap.epoch
            elif op == "close":
                conn.send(("ok", None))
                break
            else:
                raise ValueError(f"unknown shared-worker op {op!r}")
        except Exception:  # noqa: BLE001 - everything crosses the pipe
            try:
                conn.send(("err", traceback.format_exc()))
            except (BrokenPipeError, OSError):
                break
            continue
        try:
            conn.send(("ok", payload))
        except (BrokenPipeError, OSError):
            break
    bitmap.close()
    conn.close()
