"""Parallel execution backends for the bitmap filter (docs/parallel.md).

Two parallel designs, one ambient switch:

- **Sharded** (:mod:`repro.parallel.sharded` + :mod:`repro.parallel.worker`)
  — :class:`ShardedBitmapFilter` keeps a full
  :class:`~repro.core.bitmap_filter.BitmapFilter` *replica* in each of N
  fork workers: marks broadcast, lookups partitioned ``local_addr % N``,
  ownership-aware stats/telemetry merge, full serial control surface.
- **Shared memory** (:mod:`repro.parallel.shared` +
  :mod:`repro.parallel.shm` + :mod:`repro.parallel.shared_worker`) —
  :class:`SharedBitmapFilter` keeps exactly one copy of the bits in a
  :class:`multiprocessing.shared_memory` segment with epoch-indexed
  rotation and a vectorized order-exact batch path; reader workers attach
  by name and answer seqlocked lookups with zero broadcast.  Supports
  adaptive packet dropping (the sharded backend cannot).
- :mod:`repro.parallel.backend` — registers both parallel builders with
  the unified factory (:func:`repro.core.filter_api.build_filter`), whose
  ambient backend the CLI's ``--backend`` / ``--workers N`` flags install;
  the old :func:`use_backend` / :func:`create_filter` names remain as
  deprecated aliases.

The design goal is *provable equivalence*, not just speed: every verdict,
counter, and snapshot a parallel run produces is bit-for-bit identical to
the serial filter's — ``tests/differential/`` enforces it for both
backends.
"""

from repro.parallel.backend import (
    BACKEND_NAMES,
    SERIAL_BACKEND,
    ExecutionBackend,
    create_filter,
    get_backend,
    set_backend,
    use_backend,
)
from repro.parallel.shared import SharedBitmapFilter, share_filter
from repro.parallel.sharded import ShardedBitmapFilter, shard_filter
from repro.parallel.shm import SharedBitmap, SharedBitVector
from repro.parallel.worker import ShardWorkerError, WorkerSpec

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "SERIAL_BACKEND",
    "ShardWorkerError",
    "SharedBitVector",
    "SharedBitmap",
    "SharedBitmapFilter",
    "ShardedBitmapFilter",
    "WorkerSpec",
    "create_filter",
    "get_backend",
    "set_backend",
    "shard_filter",
    "share_filter",
    "use_backend",
]
