"""Sharded parallel execution for the bitmap filter (docs/parallel.md).

The package splits into three layers:

- :mod:`repro.parallel.worker` — the per-shard worker process: one
  :class:`~repro.core.bitmap_filter.BitmapFilter` replica plus its own
  telemetry registry behind a tiny pickled-tuple pipe protocol.
- :mod:`repro.parallel.sharded` — :class:`ShardedBitmapFilter`, the
  parent-side proxy: vectorized ``local_addr % N`` routing (marks
  broadcast, lookups partitioned), input-order verdict gather,
  ownership-aware stats/telemetry merge, and the full serial control
  surface (degraded mode, warm-up, stalls, bit flips, snapshots).
- :mod:`repro.parallel.backend` — the ambient backend switch
  (:func:`use_backend` / :func:`create_filter`) the CLI's ``--workers N``
  flag and the experiments plug into.

The design goal is *provable equivalence*, not just speed: every verdict,
counter, and snapshot a sharded run produces is bit-for-bit identical to
the serial filter's — ``tests/differential/`` enforces it.
"""

from repro.parallel.backend import (
    SERIAL_BACKEND,
    ExecutionBackend,
    create_filter,
    get_backend,
    set_backend,
    use_backend,
)
from repro.parallel.sharded import ShardedBitmapFilter, shard_filter
from repro.parallel.worker import ShardWorkerError, WorkerSpec

__all__ = [
    "ExecutionBackend",
    "SERIAL_BACKEND",
    "ShardWorkerError",
    "ShardedBitmapFilter",
    "WorkerSpec",
    "create_filter",
    "get_backend",
    "set_backend",
    "shard_filter",
    "use_backend",
]
