"""Generated multi-site ISP topologies with dominator-validated placement.

Three generators extend :class:`~repro.sim.topology.IspTopology` beyond the
hand-drawn Figure 1 example:

- :func:`fat_tree` — a k-ary datacenter-style fabric: core spine, per-pod
  aggregation (CORE kind), per-pod edge routers, with two independent
  peering points hanging off distinct spine routers;
- :func:`multi_isp` — several ISPs, each with its own transit peer and
  core mesh, joined by a peering link, sites spread across all ISPs;
- :func:`cross_datacenter` — spine/leaf datacenters joined by redundant
  inter-DC links, each DC with its own multi-homed WAN peer.

Every client site gets its own :class:`~repro.net.address.AddressSpace`
(consecutive class-C blocks), and every :class:`SiteBinding` records the
filter placement chosen from
:meth:`~repro.sim.topology.IspTopology.valid_filter_locations` — the
dominator analysis proves the chosen router sees *all* peer-to-site
traffic, so a per-site filter there is equivalent to the paper's edge
deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.net.address import AddressSpace, format_ipv4, parse_ipv4
from repro.sim.topology import IspTopology

__all__ = [
    "MultiSiteTopology",
    "SiteBinding",
    "allocate_site_spaces",
    "build_topology",
    "cross_datacenter",
    "fat_tree",
    "multi_isp",
]


@dataclass(frozen=True)
class SiteBinding:
    """One client site: where it hangs and which router filters it."""

    name: str            # client-network node name ("site0", ...)
    edge_router: str     # the edge router it attaches to
    placement: str       # chosen filter location (dominator-validated)
    space: AddressSpace  # the site's own protected address space


@dataclass(frozen=True)
class MultiSiteTopology:
    """A generated topology plus its per-site bindings."""

    kind: str
    topology: IspTopology
    sites: Tuple[SiteBinding, ...]

    def site(self, name: str) -> SiteBinding:
        for binding in self.sites:
            if binding.name == name:
                return binding
        raise KeyError(f"unknown site {name!r}")


def allocate_site_spaces(num_sites: int, networks_per_site: int,
                         first_network: str = "172.16.0.0",
                         ) -> List[AddressSpace]:
    """Consecutive class-C blocks, ``networks_per_site`` /24s per site."""
    base = parse_ipv4(first_network)
    spaces = []
    for index in range(num_sites):
        first = format_ipv4(base + (index * networks_per_site << 8))
        spaces.append(AddressSpace.class_c_block(first, networks_per_site))
    return spaces


def _bind_sites(kind: str, topo: IspTopology, edges: List[str],
                num_sites: int, networks_per_site: int,
                first_network: str) -> MultiSiteTopology:
    """Attach ``num_sites`` client networks round-robin across ``edges``.

    Placement policy: the attach edge router, *verified* against the
    dominator set — a generated graph where the edge router is not a
    dominator of its own leaf site would be a construction bug, and the
    check turns it into a loud error instead of an unprotected site.
    """
    spaces = allocate_site_spaces(num_sites, networks_per_site,
                                  first_network)
    bindings = []
    for index in range(num_sites):
        name = f"site{index}"
        edge = edges[index % len(edges)]
        topo.add_client_network(name, edge, spaces[index])
        valid = topo.valid_filter_locations(name)
        if edge not in valid:
            raise AssertionError(
                f"{kind}: edge router {edge!r} is not a dominator of "
                f"{name!r} (valid: {sorted(valid)})")
        bindings.append(SiteBinding(name=name, edge_router=edge,
                                    placement=edge, space=spaces[index]))
    return MultiSiteTopology(kind=kind, topology=topo,
                             sites=tuple(bindings))


def fat_tree(num_sites: int = 3, *, pods: int = 2, edges_per_pod: int = 2,
             aggs_per_pod: int = 2, cores: int = 2,
             networks_per_site: int = 2,
             first_network: str = "172.16.0.0") -> MultiSiteTopology:
    """A fat-tree fabric: cores x (aggregation + edge) pods, two peers.

    Every aggregation router uplinks to every core and every edge router
    uplinks to both of its pod's aggregation routers, so the only
    single point on a site's inbound paths is its own edge router — which
    is exactly what the dominator analysis certifies.
    """
    topo = IspTopology()
    core_names = [f"core{c}" for c in range(cores)]
    for name in core_names:
        topo.add_core_router(name)
    edge_names: List[str] = []
    for pod in range(pods):
        aggs = [f"agg{pod}-{a}" for a in range(aggs_per_pod)]
        for agg in aggs:
            topo.add_core_router(agg)
            for core in core_names:
                topo.connect(agg, core)
        for e in range(edges_per_pod):
            edge = f"edge{pod}-{e}"
            topo.add_edge_router(edge)
            edge_names.append(edge)
            for agg in aggs:
                topo.connect(edge, agg)
    # Two independent peering points on distinct spine routers.
    topo.add_peer("peer0")
    topo.connect("peer0", core_names[0])
    topo.add_peer("peer1")
    topo.connect("peer1", core_names[-1])
    return _bind_sites("fat-tree", topo, edge_names, num_sites,
                       networks_per_site, first_network)


def multi_isp(num_sites: int = 3, *, isps: int = 2, edges_per_isp: int = 2,
              networks_per_site: int = 2,
              first_network: str = "172.16.0.0") -> MultiSiteTopology:
    """Several ISPs with their own transit peers, joined by peering links.

    Each ISP has a two-core mesh with its transit peer on one core and
    ``edges_per_isp`` dual-homed edge routers; consecutive ISPs peer
    core-to-core, so a site's inbound traffic can arrive through *either*
    ISP's transit — only the site's own edge router dominates.
    """
    topo = IspTopology()
    edge_names: List[str] = []
    for isp in range(isps):
        a, b = f"isp{isp}-core0", f"isp{isp}-core1"
        topo.add_core_router(a)
        topo.add_core_router(b)
        topo.connect(a, b)
        peer = f"transit{isp}"
        topo.add_peer(peer)
        topo.connect(peer, a)
        for e in range(edges_per_isp):
            edge = f"isp{isp}-edge{e}"
            topo.add_edge_router(edge)
            edge_names.append(edge)
            topo.connect(edge, a)
            topo.connect(edge, b)
    for isp in range(isps - 1):
        topo.connect(f"isp{isp}-core1", f"isp{isp + 1}-core0")
    return _bind_sites("multi-isp", topo, edge_names, num_sites,
                       networks_per_site, first_network)


def cross_datacenter(num_sites: int = 3, *, dcs: int = 2,
                     leaves_per_dc: int = 2, networks_per_site: int = 2,
                     first_network: str = "172.16.0.0") -> MultiSiteTopology:
    """Spine/leaf datacenters with redundant inter-DC links and WAN peers.

    Each DC is a two-spine, N-leaf Clos; the spines of consecutive DCs are
    cross-connected pairwise (two disjoint inter-DC paths), and each DC has
    its own *multi-homed* WAN peer attached to both spines — the multi-peer
    multi-path shape where naive "walk up the tree" placement heuristics
    break and dominator analysis is actually needed.
    """
    topo = IspTopology()
    edge_names: List[str] = []
    for dc in range(dcs):
        spines = [f"dc{dc}-spine0", f"dc{dc}-spine1"]
        for spine in spines:
            topo.add_core_router(spine)
        peer = f"wan{dc}"
        topo.add_peer(peer)
        for spine in spines:
            topo.connect(peer, spine)
        for leaf_index in range(leaves_per_dc):
            leaf = f"dc{dc}-leaf{leaf_index}"
            topo.add_edge_router(leaf)
            edge_names.append(leaf)
            for spine in spines:
                topo.connect(leaf, spine)
    for dc in range(dcs - 1):
        topo.connect(f"dc{dc}-spine0", f"dc{dc + 1}-spine0")
        topo.connect(f"dc{dc}-spine1", f"dc{dc + 1}-spine1")
    return _bind_sites("cross-dc", topo, edge_names, num_sites,
                       networks_per_site, first_network)


_BUILDERS = {
    "fat-tree": fat_tree,
    "multi-isp": multi_isp,
    "cross-dc": cross_datacenter,
}


def build_topology(kind: str, num_sites: int, *, networks_per_site: int = 2,
                   first_network: str = "172.16.0.0") -> MultiSiteTopology:
    """Build a named topology kind (``fat-tree``/``multi-isp``/``cross-dc``)."""
    try:
        builder = _BUILDERS[kind]
    except KeyError:
        raise KeyError(
            f"unknown topology kind {kind!r}; known: "
            f"{sorted(_BUILDERS)}") from None
    return builder(num_sites, networks_per_site=networks_per_site,
                   first_network=first_network)
