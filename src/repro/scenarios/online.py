"""Online scenario execution: the same scenario against live daemon fleets.

Each site gets its own one-node :class:`~repro.fleet.manager.FleetManager`
fleet (``--clock packet``), all sharing one
:class:`~repro.fleet.store.SnapshotStore`.  Site traces stream through
:meth:`~repro.serve.client.FilterClient.filter_stream`; a roaming client
streams its head frames at the home site's daemon, the daemon's live
``/snapshot`` is published into the store, and a fresh daemon at the visit
site starts ``--restore``-d from it before the tail frames stream — the
same handoff :func:`~repro.scenarios.runner.run_offline` performs with
in-process filters.  Because a restored daemon builds its filter with
``build_filter(snapshot=...)`` under the packet clock, online verdicts are
byte-identical to offline replay (``verify=True`` asserts it).
"""

from __future__ import annotations

import urllib.request
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.core.parameters import ParameterAdvisor
from repro.fleet.manager import FleetManager
from repro.fleet.store import SnapshotStore
from repro.net.packet import PacketArray
from repro.scenarios.runner import (
    RoamOutcome,
    RoamerRun,
    ScenarioRun,
    SiteOutcome,
    SiteRun,
    _merge_counts,
    observed_connections,
    run_offline,
)
from repro.serve.client import FilterClient
from repro.sim.metrics import ConfusionCounts, score_run
from repro.telemetry.exporters import summarize_prometheus, to_prometheus
from repro.telemetry.merge import aggregate_fleet

__all__ = ["OnlineOutcome", "run_online"]

DEFAULT_FRAME_PACKETS = 500


@dataclass
class OnlineOutcome:
    """Everything an online scenario run produced."""

    sites: List[SiteOutcome]
    roamers: List[RoamOutcome]
    aggregate: ConfusionCounts
    metrics_text: str        # fleet-merged Prometheus exposition
    verified: Optional[bool]  # None = --verify not requested

    def metrics_summary(self) -> str:
        return summarize_prometheus(self.metrics_text, prefix="repro_")


def _frames(packets: PacketArray, frame_packets: int,
            boundary: Optional[int] = None) -> List[PacketArray]:
    """Fixed-size frames; with ``boundary``, no frame straddles it."""
    cuts = list(range(0, len(packets), frame_packets)) + [len(packets)]
    if boundary is not None and boundary not in cuts:
        cuts = sorted(set(cuts) | {boundary})
    return [packets[a:b] for a, b in zip(cuts[:-1], cuts[1:]) if b > a]


def _protected_arg(space) -> str:
    return ",".join(str(net) for net in space.networks)


def _stream(spec, packets: PacketArray,
            frame_packets: int) -> np.ndarray:
    frames = _frames(packets, frame_packets)
    with FilterClient.connect(spec.host, spec.port) as client:
        masks = list(client.filter_stream(frames))
    if not masks:
        return np.zeros(0, dtype=bool)
    return np.concatenate(masks).astype(bool)


def _scrape_metrics(manager: FleetManager, name: str, *,
                    timeout: float = 10.0) -> str:
    node = manager.node(name)
    url = node.spec.http_url.rstrip("/") + "/metrics"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode()


def _site_manager(run: ScenarioRun, space, workdir: Path,
                  store: SnapshotStore, **extra) -> FleetManager:
    geometry = run.spec.filter
    return FleetManager(
        _protected_arg(space), size=1, workdir=str(workdir),
        clock="packet",
        order=geometry.order, num_vectors=geometry.num_vectors,
        num_hashes=geometry.num_hashes,
        rotation_interval=geometry.rotation_interval,
        hash_seed=geometry.hash_seed,
        filter_kind="hybrid" if geometry.layers else "bitmap",
        store=store, **extra)


def _run_site_online(run: ScenarioRun, site_run: SiteRun, workdir: Path,
                     store: SnapshotStore, frame_packets: int,
                     pages: Dict[str, str],
                     advisor: ParameterAdvisor) -> SiteOutcome:
    name = site_run.binding.name
    manager = _site_manager(run, site_run.binding.space, workdir / name,
                            store)
    with manager:
        spec = manager.specs()[0]
        verdicts = _stream(spec, site_run.trace.packets, frame_packets)
        pages[name] = _scrape_metrics(manager, "node0")
    incoming = site_run.trace.packets.directions(
        site_run.trace.protected) == 1
    confusion, _ = score_run(site_run.trace.packets, verdicts, incoming,
                             run.spec.duration)
    dropped = int((~verdicts[incoming]).sum())
    c_obs = observed_connections(site_run.trace, run.spec.filter.expiry_timer)
    return SiteOutcome(
        name=name, placement=site_run.binding.placement,
        packets=len(site_run.trace.packets),
        attack_packets=int(site_run.trace.metadata.get("attack_packets", 0)),
        confusion=confusion,
        drop_rate=dropped / int(incoming.sum()) if incoming.any() else 0.0,
        observed_connections=c_obs,
        advised=advisor.recommend(max(c_obs, 1)) if c_obs else None,
        verdicts=verdicts, incoming_mask=incoming)


def _run_roamer_online(run: ScenarioRun, roamer_run: RoamerRun,
                       workdir: Path, store: SnapshotStore,
                       frame_packets: int,
                       pages: Dict[str, str]) -> RoamOutcome:
    """The live handoff: stream head at home, snapshot, restore at visit."""
    roamer = roamer_run.roamer
    packets = roamer_run.trace.packets
    split = roamer_run.split_index
    base = workdir / f"roam-{roamer.name}"

    home = _site_manager(run, roamer_run.space, base / "home", store)
    with home:
        spec = home.specs()[0]
        head_verdicts = _stream(spec, packets[:split], frame_packets)
        ref = home.publish_snapshot("node0")
        pages[f"{roamer.name}@{roamer.home}"] = _scrape_metrics(
            home, "node0")
    store.read(ref)  # verify the blob before betting the visit spawn on it

    visit = _site_manager(run, roamer_run.space, base / "visit", store,
                          restore=ref.path)
    with visit:
        spec = visit.specs()[0]
        tail_verdicts = _stream(spec, packets[split:], frame_packets)
        pages[f"{roamer.name}@{roamer.visit}"] = _scrape_metrics(
            visit, "node0")

    verdicts = np.concatenate([head_verdicts, tail_verdicts])
    incoming = packets.directions(roamer_run.space) == 1
    confusion, _ = score_run(packets, verdicts, incoming, run.spec.duration)
    dropped = int((~verdicts[incoming]).sum())
    return RoamOutcome(
        name=roamer.name, home=roamer.home, visit=roamer.visit,
        split_index=split, snapshot_sequence=ref.sequence,
        snapshot_sha256=ref.sha256, confusion=confusion,
        drop_rate=dropped / int(incoming.sum()) if incoming.any() else 0.0,
        verdicts=verdicts, incoming_mask=incoming)


def run_online(run: ScenarioRun, *, workdir: Union[str, Path],
               verify: bool = False,
               frame_packets: int = DEFAULT_FRAME_PACKETS) -> OnlineOutcome:
    """Replay the scenario against one live single-daemon fleet per site.

    ``verify=True`` additionally runs the offline twin and asserts verdict
    byte-identity per site and per roamer (including through the snapshot
    handoff) — the differential guarantee the scenario engine rests on.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    store = SnapshotStore(workdir / "store")
    advisor = ParameterAdvisor(
        expiry_timer=run.spec.filter.expiry_timer,
        rotation_interval=run.spec.filter.rotation_interval)

    pages: Dict[str, str] = {}
    sites = [_run_site_online(run, site_run, workdir, store, frame_packets,
                              pages, advisor)
             for site_run in run.sites]
    roamers = [_run_roamer_online(run, roamer_run, workdir, store,
                                  frame_packets, pages)
               for roamer_run in run.roamers]
    aggregate = _merge_counts([s.confusion for s in sites]
                              + [r.confusion for r in roamers])
    metrics_text = to_prometheus(aggregate_fleet(pages)) if pages else ""

    verified: Optional[bool] = None
    if verify:
        offline = run_offline(run, workdir=workdir / "offline")
        for online_site, offline_site in zip(sites, offline.sites):
            if not np.array_equal(online_site.verdicts,
                                  offline_site.verdicts):
                raise AssertionError(
                    f"online/offline verdict divergence at site "
                    f"{online_site.name}")
        for online_roam, offline_roam in zip(roamers, offline.roamers):
            if not np.array_equal(online_roam.verdicts,
                                  offline_roam.verdicts):
                raise AssertionError(
                    f"online/offline verdict divergence for roamer "
                    f"{online_roam.name}")
        verified = True

    return OnlineOutcome(sites=sites, roamers=roamers, aggregate=aggregate,
                         metrics_text=metrics_text, verified=verified)
