"""Campaign orchestration: coordinated multi-site attack waves.

A scenario's :class:`~repro.scenarios.spec.AttackWave` list composes the
existing single-site generators from :mod:`repro.attacks` — the Fig. 5
random scanner, the SYN/UDP floods, the epidemic worm model, and the
Section 5.2 insider — into *coordinated* campaigns: each wave rolls across
its target sites with a per-site timing offset (``site_stagger``), and
every (wave, site) cell draws from its own deterministic seed, so the same
spec always produces the same campaign byte-for-byte.
"""

from __future__ import annotations

from typing import Dict, List

from repro.net.packet import PacketArray
from repro.scenarios.spec import AttackWave, ScenarioSpec
from repro.scenarios.topologies import MultiSiteTopology, SiteBinding

__all__ = ["AttackWave", "campaign_traffic", "wave_packets"]

# Fibonacci-hash constant: spreads (wave, site) indices into distinct seeds.
_SEED_MIX = 0x9E3779B9


def _cell_seed(spec_seed: int, wave_index: int, site_index: int) -> int:
    return (spec_seed ^ (_SEED_MIX * (wave_index + 1))
            ^ (0x85EBCA6B * (site_index + 1))) & 0x7FFFFFFF


def wave_packets(wave: AttackWave, spec: ScenarioSpec, site: SiteBinding,
                 *, wave_index: int, site_offset: int) -> PacketArray:
    """One wave's packets at one site (empty if the window closed).

    ``site_offset`` is the site's position among the wave's targets — the
    stagger multiplier, not the global site index.
    """
    start = (spec.duration * wave.start_fraction
             + site_offset * wave.site_stagger)
    duration = min(spec.duration * wave.duration_fraction,
                   spec.duration - start)
    if duration <= 0:
        return PacketArray.empty()
    rate = wave.rate_multiplier * spec.traffic.pps
    seed = _cell_seed(spec.seed, wave_index, site_offset)
    space = site.space

    if wave.kind == "scan":
        from repro.attacks.scanner import RandomScanAttack, ScanConfig

        return RandomScanAttack(
            ScanConfig(rate_pps=rate, start=start, duration=duration,
                       seed=seed),
            space).generate()
    if wave.kind == "syn-flood":
        from repro.attacks.ddos import syn_flood

        victim = space.networks[0].host(10)
        return syn_flood(victim, 80, rate, start, duration, seed=seed)
    if wave.kind == "udp-flood":
        from repro.attacks.ddos import udp_flood

        victim = space.networks[0].host(20)
        return udp_flood(victim, rate, start, duration, seed=seed)
    if wave.kind == "worm":
        from repro.attacks.worm import WormModel, WormParameters

        # A Code Red II-style locally-preferring worm, pre-seeded far
        # enough into its outbreak that scenario-length windows see real
        # scan pressure on a few-hundred-address site.
        model = WormModel(WormParameters(
            vulnerable_hosts=200_000,
            scan_rate=max(1.0, wave.rate_multiplier),
            initially_infected=60_000,
            local_preference=0.9,
            local_prefix_len=8,
        ))
        return model.inbound_scans(
            space, duration=duration, start=start, seed=seed,
            infected_near_fraction=0.5)
    if wave.kind == "insider":
        from repro.attacks.insider import InsiderAttack

        attacker = space.networks[0].host(66)
        return InsiderAttack(
            attacker_addr=attacker, rate_pps=rate, start=start,
            duration=duration, seed=seed).generate(space)
    raise ValueError(f"unknown wave kind {wave.kind!r}")


def campaign_traffic(spec: ScenarioSpec,
                     msite: MultiSiteTopology) -> Dict[str, PacketArray]:
    """All waves' packets per site, each site's arrays pre-concatenated."""
    per_site: Dict[str, List[PacketArray]] = {
        binding.name: [] for binding in msite.sites}
    for wave_index, wave in enumerate(spec.waves):
        targets = wave.targets or tuple(b.name for b in msite.sites)
        for site_offset, name in enumerate(targets):
            packets = wave_packets(
                wave, spec, msite.site(name),
                wave_index=wave_index, site_offset=site_offset)
            if len(packets):
                per_site[name].append(packets)
    return {
        name: (PacketArray.concatenate(chunks).sorted_by_time()
               if chunks else PacketArray.empty())
        for name, chunks in per_site.items()
    }
