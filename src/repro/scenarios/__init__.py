"""Declarative multi-site scenarios: topology x traffic x campaign.

This package turns the single-site pipeline into a scenario engine (see
docs/scenarios.md):

- :mod:`repro.scenarios.spec` — frozen dataclass scenario specs, TOML
  loading, and named presets;
- :mod:`repro.scenarios.topologies` — generated fat-tree / multi-ISP /
  cross-datacenter :class:`~repro.sim.topology.IspTopology` graphs with one
  address-spaced client site per network and dominator-validated filter
  placement;
- :mod:`repro.scenarios.campaigns` — coordinated multi-site attack waves
  (scan / SYN-flood / UDP-flood / worm / insider) with per-site timing
  offsets;
- :mod:`repro.scenarios.runner` — offline execution: one filter per site
  through :func:`~repro.core.filter_api.build_filter`, roaming clients
  handed between sites through the :class:`~repro.fleet.store.SnapshotStore`,
  per-site and aggregate penetration/drop tables;
- :mod:`repro.scenarios.online` — the same scenario against a live
  per-site daemon fleet, with ``--verify`` byte-parity against offline.
"""

from repro.scenarios.campaigns import AttackWave, campaign_traffic
from repro.scenarios.online import OnlineOutcome, run_online
from repro.scenarios.runner import (
    RoamOutcome,
    ScenarioOutcome,
    ScenarioRun,
    SiteOutcome,
    build_scenario,
    observed_connections,
    run_offline,
)
from repro.scenarios.spec import (
    PRESETS,
    FilterGeometry,
    RoamingClient,
    ScenarioSpec,
    TrafficSpec,
    load_scenario,
)
from repro.scenarios.topologies import (
    MultiSiteTopology,
    SiteBinding,
    build_topology,
    cross_datacenter,
    fat_tree,
    multi_isp,
)

__all__ = [
    "AttackWave",
    "FilterGeometry",
    "MultiSiteTopology",
    "OnlineOutcome",
    "PRESETS",
    "RoamOutcome",
    "RoamingClient",
    "ScenarioOutcome",
    "ScenarioRun",
    "ScenarioSpec",
    "SiteBinding",
    "SiteOutcome",
    "TrafficSpec",
    "build_scenario",
    "build_topology",
    "campaign_traffic",
    "cross_datacenter",
    "fat_tree",
    "load_scenario",
    "multi_isp",
    "observed_connections",
    "run_offline",
    "run_online",
]
