"""Offline scenario execution: per-site filters, roaming handoffs, tables.

:func:`build_scenario` materialises a :class:`~repro.scenarios.spec.ScenarioSpec`
into deterministic per-site traces (normal mix + campaign waves, time-sorted)
and :func:`run_offline` pushes each through its own filter stack via
:func:`~repro.core.filter_api.build_filter` /
:func:`~repro.sim.pipeline.run_filter_on_trace`.  Roaming clients run their
head packets at the home site, snapshot through a
:class:`~repro.fleet.store.SnapshotStore`, restore at the visit site, and run
the tail — the exact protocol the online fleet replays, which is what makes
the offline/online differential test meaningful.
"""

from __future__ import annotations

import io
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.report import render_table
from repro.core.filter_api import build_filter
from repro.core.parameters import BitmapParameters, ParameterAdvisor
from repro.core.persistence import save_filter
from repro.fleet.store import SnapshotStore
from repro.net.address import AddressSpace, format_ipv4, parse_ipv4
from repro.net.packet import PacketArray
from repro.scenarios.campaigns import campaign_traffic
from repro.scenarios.spec import RoamingClient, ScenarioSpec
from repro.scenarios.topologies import (
    MultiSiteTopology,
    SiteBinding,
    build_topology,
)
from repro.sim.metrics import ConfusionCounts, score_run
from repro.sim.pipeline import run_filter_on_trace
from repro.traffic.trace import Trace

__all__ = [
    "RoamOutcome",
    "ScenarioOutcome",
    "ScenarioRun",
    "SiteOutcome",
    "SiteRun",
    "RoamerRun",
    "build_scenario",
    "observed_connections",
    "run_offline",
]

_SITE_SEED_STRIDE = 1_000_003   # prime stride: distinct per-site seeds
_ROAMER_SEED_BASE = 777_767


def _site_seed(spec_seed: int, index: int) -> int:
    return (spec_seed * _SITE_SEED_STRIDE + index) & 0x7FFFFFFF


@dataclass(frozen=True)
class SiteRun:
    """One site's materialised input: binding + labelled trace."""

    binding: SiteBinding
    trace: Trace


@dataclass(frozen=True)
class RoamerRun:
    """A roaming client's own space, trace, and the packet-index split.

    ``split_index`` is the first packet at or after the roam instant; the
    head runs at ``home``, the tail at ``visit`` after the snapshot handoff.
    Online framing must honor the same boundary, so it is part of the run,
    not a runner-internal detail.
    """

    roamer: RoamingClient
    space: AddressSpace
    trace: Trace
    split_index: int


@dataclass(frozen=True)
class ScenarioRun:
    """A fully materialised scenario, ready for offline or online replay."""

    spec: ScenarioSpec
    msite: MultiSiteTopology
    sites: Tuple[SiteRun, ...]
    roamers: Tuple[RoamerRun, ...]


def _normal_trace(spec: ScenarioSpec, binding: SiteBinding,
                  seed: int) -> Trace:
    traffic = spec.traffic
    first = format_ipv4(binding.space.networks[0].first)
    if traffic.mix == "campus":
        from repro.traffic.generator import ClientNetworkWorkload, WorkloadConfig

        config = WorkloadConfig(
            first_network=first,
            num_networks=traffic.networks_per_site,
            hosts_per_network=traffic.hosts_per_network,
            duration=spec.duration,
            target_pps=traffic.pps,
            seed=seed,
        )
        return ClientNetworkWorkload(config).generate()
    from repro.traffic.modern import ModernWorkload, ModernWorkloadConfig

    config = ModernWorkloadConfig(
        mix=traffic.mix,
        first_network=first,
        num_networks=traffic.networks_per_site,
        hosts_per_network=traffic.hosts_per_network,
        duration=spec.duration,
        target_pps=traffic.pps,
        nat_pool=traffic.nat_pool,
        ipv6=traffic.ipv6,
        asymmetry=traffic.asymmetry,
        seed=seed,
    )
    return ModernWorkload(config).generate()


def _roamer_run(spec: ScenarioSpec, roamer: RoamingClient,
                index: int) -> RoamerRun:
    """The roamer's own /24, its traffic, and the roam-instant split.

    The roamer carries normal campus-style traffic for the whole duration
    plus a scan attack against its block, so the handoff is load-bearing:
    flows marked before the move must keep passing at the visit site while
    the scan keeps getting dropped.
    """
    from repro.attacks.scanner import RandomScanAttack, ScanConfig
    from repro.traffic.generator import ClientNetworkWorkload, WorkloadConfig

    base = parse_ipv4("172.16.0.0")
    block = spec.sites * spec.traffic.networks_per_site + index
    space = AddressSpace.class_c_block(format_ipv4(base + (block << 8)), 1)
    seed = _site_seed(spec.seed, _ROAMER_SEED_BASE + index)
    normal = ClientNetworkWorkload(WorkloadConfig(
        first_network=format_ipv4(space.networks[0].first),
        num_networks=1,
        hosts_per_network=8,
        duration=spec.duration,
        target_pps=roamer.pps,
        seed=seed,
    )).generate()
    scan = RandomScanAttack(
        ScanConfig(rate_pps=5.0 * roamer.pps, start=0.0,
                   duration=spec.duration, seed=seed ^ 0x5CA7),
        space).generate()
    packets = PacketArray.concatenate([normal.packets, scan]).sorted_by_time()
    trace = Trace(packets, space, {
        "kind": "roamer",
        "name": roamer.name,
        "home": roamer.home,
        "visit": roamer.visit,
        "duration": spec.duration,
        "seed": seed,
    })
    roam_time = spec.duration * roamer.roam_fraction
    split = int(np.searchsorted(packets.ts, roam_time, side="left"))
    return RoamerRun(roamer=roamer, space=space, trace=trace,
                     split_index=split)


def build_scenario(spec: ScenarioSpec) -> ScenarioRun:
    """Materialise the spec: topology, per-site traces, roamer traces.

    Deterministic in ``spec`` alone — every generator seed derives
    arithmetically from ``spec.seed``, so the same spec always yields
    digest-identical traces.
    """
    msite = build_topology(spec.topology, spec.sites,
                           networks_per_site=spec.traffic.networks_per_site)
    attacks = campaign_traffic(spec, msite)
    sites: List[SiteRun] = []
    for index, binding in enumerate(msite.sites):
        normal = _normal_trace(spec, binding, _site_seed(spec.seed, index))
        attack = attacks[binding.name]
        packets = normal.packets
        if len(attack):
            packets = PacketArray.concatenate(
                [packets, attack]).sorted_by_time()
        metadata = dict(normal.metadata)
        metadata.update(
            scenario=spec.name, site=binding.name,
            placement=binding.placement, duration=spec.duration,
            attack_packets=int(len(attack)))
        sites.append(SiteRun(binding=binding,
                             trace=Trace(packets, binding.space, metadata)))
    roamers = tuple(_roamer_run(spec, roamer, index)
                    for index, roamer in enumerate(spec.roamers))
    return ScenarioRun(spec=spec, msite=msite, sites=tuple(sites),
                       roamers=roamers)


def observed_connections(trace: Trace, expiry_timer: float) -> int:
    """Max outgoing 4-tuple count over any Te-aligned window (the paper's c).

    This is the quantity :class:`~repro.core.parameters.ParameterAdvisor`
    wants as ``expected_connections``: the busiest expiry window's number
    of distinct outgoing (src, sport, dst, dport) tuples.
    """
    packets = trace.packets
    outgoing = trace.packets.directions(trace.protected) == 0
    if not outgoing.any():
        return 0
    ts = packets.ts[outgoing]
    window = (ts / expiry_timer).astype(np.uint64)
    k1 = (packets.src[outgoing].astype(np.uint64) << np.uint64(16)) \
        | packets.sport[outgoing].astype(np.uint64)
    k2 = (packets.dst[outgoing].astype(np.uint64) << np.uint64(16)) \
        | packets.dport[outgoing].astype(np.uint64)
    keys = np.stack([window, k1, k2], axis=1)
    unique = np.unique(keys, axis=0)
    _, per_window = np.unique(unique[:, 0], return_counts=True)
    return int(per_window.max())


@dataclass
class SiteOutcome:
    """One site's scored run (verdicts kept for online verification)."""

    name: str
    placement: str
    packets: int
    attack_packets: int
    confusion: ConfusionCounts
    drop_rate: float
    observed_connections: int
    advised: Optional[BitmapParameters]
    verdicts: np.ndarray
    incoming_mask: np.ndarray


@dataclass
class RoamOutcome:
    """A roaming client's scored two-site run and its handoff evidence."""

    name: str
    home: str
    visit: str
    split_index: int
    snapshot_sequence: int
    snapshot_sha256: str
    confusion: ConfusionCounts
    drop_rate: float
    verdicts: np.ndarray
    incoming_mask: np.ndarray


@dataclass
class ScenarioOutcome:
    """Everything an offline scenario run produced."""

    spec: ScenarioSpec
    sites: List[SiteOutcome]
    roamers: List[RoamOutcome]
    aggregate: ConfusionCounts

    def report(self) -> str:
        """Per-site + aggregate penetration/drop tables, advisor alongside."""
        rows = []
        for site in self.sites:
            advised = (site.advised.describe().split(", predicted")[0]
                       if site.advised else "-")
            rows.append([
                site.name, site.placement, f"{site.packets}",
                f"{site.attack_packets}",
                f"{site.confusion.penetration_rate:.4f}",
                f"{site.drop_rate:.4f}",
                f"{site.confusion.false_positive_rate:.4f}",
                f"{site.observed_connections}", advised,
            ])
        agg = self.aggregate
        rows.append([
            "TOTAL", "-",
            f"{sum(s.packets for s in self.sites)}",
            f"{sum(s.attack_packets for s in self.sites)}",
            f"{agg.penetration_rate:.4f}",
            "-",
            f"{agg.false_positive_rate:.4f}", "-", "-",
        ])
        table = render_table(
            ["site", "router", "pkts", "attack", "p(pen)", "drop",
             "fp", "c_obs", "advised"],
            rows,
            title=f"scenario {self.spec.name} "
                  f"({self.spec.topology}, {self.spec.traffic.mix})",
        )
        lines = [table]
        for roam in self.roamers:
            lines.append(
                f"roamer {roam.name}: {roam.home} -> {roam.visit} at packet "
                f"{roam.split_index} (snapshot seq {roam.snapshot_sequence}, "
                f"sha {roam.snapshot_sha256[:12]}), "
                f"p(pen)={roam.confusion.penetration_rate:.4f}, "
                f"drop={roam.drop_rate:.4f}")
        return "\n".join(lines)


def _merge_counts(counts: List[ConfusionCounts]) -> ConfusionCounts:
    return ConfusionCounts(
        attack_dropped=sum(c.attack_dropped for c in counts),
        attack_passed=sum(c.attack_passed for c in counts),
        normal_dropped=sum(c.normal_dropped for c in counts),
        normal_passed=sum(c.normal_passed for c in counts),
        background_dropped=sum(c.background_dropped for c in counts),
        background_passed=sum(c.background_passed for c in counts),
    )


def _run_roamer(run: RoamerRun, spec: ScenarioSpec, store: SnapshotStore,
                exact: bool) -> RoamOutcome:
    """Head at home, snapshot through the store, restored tail at visit."""
    config = spec.filter.filter_config()
    packets = run.trace.packets
    split = run.split_index
    home_filter = build_filter(config=config, protected=run.space)
    head = Trace(packets[:split], run.space, {"duration": spec.duration})
    head_result = run_filter_on_trace(home_filter, head, exact=exact)

    buffer = io.BytesIO()
    save_filter(home_filter, buffer)
    ref = store.put(run.roamer.name, buffer.getvalue())

    visit_filter = build_filter(snapshot=ref.path)
    tail = Trace(packets[split:], run.space, {"duration": spec.duration})
    tail_result = run_filter_on_trace(visit_filter, tail, exact=exact)

    verdicts = np.concatenate([head_result.verdicts, tail_result.verdicts])
    incoming = np.concatenate(
        [head_result.incoming_mask, tail_result.incoming_mask])
    confusion, _ = score_run(packets, verdicts, incoming, spec.duration)
    dropped = int((~verdicts[incoming]).sum())
    drop_rate = dropped / int(incoming.sum()) if incoming.any() else 0.0
    return RoamOutcome(
        name=run.roamer.name, home=run.roamer.home, visit=run.roamer.visit,
        split_index=split, snapshot_sequence=ref.sequence,
        snapshot_sha256=ref.sha256, confusion=confusion,
        drop_rate=drop_rate, verdicts=verdicts, incoming_mask=incoming)


def run_offline(run: ScenarioRun, *, store: Optional[SnapshotStore] = None,
                exact: bool = True,
                workdir: Optional[Path] = None) -> ScenarioOutcome:
    """Run every site (and roamer handoff) through offline filter stacks.

    ``store`` (or one created under ``workdir``/a temp dir) carries the
    roaming snapshots; pass the same store to the online runner to replay
    the identical handoff.
    """
    spec = run.spec
    if store is None and run.roamers:
        root = Path(workdir) if workdir is not None else Path(
            tempfile.mkdtemp(prefix="repro-scenario-"))
        store = SnapshotStore(root / "store")
    advisor = ParameterAdvisor(
        expiry_timer=spec.filter.expiry_timer,
        rotation_interval=spec.filter.rotation_interval)

    sites: List[SiteOutcome] = []
    for site_run in run.sites:
        filt = build_filter(config=spec.filter.filter_config(),
                            protected=site_run.binding.space)
        result = run_filter_on_trace(filt, site_run.trace, exact=exact)
        c_obs = observed_connections(site_run.trace,
                                     spec.filter.expiry_timer)
        advised = advisor.recommend(max(c_obs, 1)) if c_obs else None
        sites.append(SiteOutcome(
            name=site_run.binding.name,
            placement=site_run.binding.placement,
            packets=len(site_run.trace.packets),
            attack_packets=int(site_run.trace.metadata.get(
                "attack_packets", 0)),
            confusion=result.confusion,
            drop_rate=result.incoming_drop_rate,
            observed_connections=c_obs,
            advised=advised,
            verdicts=result.verdicts,
            incoming_mask=result.incoming_mask))

    roamers = [_run_roamer(roamer_run, spec, store, exact)
               for roamer_run in run.roamers]
    aggregate = _merge_counts([s.confusion for s in sites]
                              + [r.confusion for r in roamers])
    return ScenarioOutcome(spec=spec, sites=sites, roamers=roamers,
                           aggregate=aggregate)
