"""Frozen scenario specs: one declarative vocabulary for multi-site runs.

A :class:`ScenarioSpec` fully determines a multi-site run — topology shape,
per-site traffic mix, attack campaign, roaming clients, and filter
geometry — as nested frozen dataclasses, so experiments, tests, benchmarks,
and the CLI all speak the same language and two runs of the same spec are
bit-identical.  Specs are constructible in code, loadable from TOML
(:func:`load_scenario`, Python 3.11+), or picked from :data:`PRESETS`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Tuple, Union

from repro.core.bitmap_filter import FilterConfig

__all__ = [
    "AttackWave",
    "FilterGeometry",
    "PRESETS",
    "RoamingClient",
    "ScenarioSpec",
    "TrafficSpec",
    "load_scenario",
]

TOPOLOGY_KINDS = ("fat-tree", "multi-isp", "cross-dc")
TRAFFIC_MIXES = ("campus", "web-search", "data-mining")
WAVE_KINDS = ("scan", "syn-flood", "udp-flood", "worm", "insider")


@dataclass(frozen=True)
class FilterGeometry:
    """The per-site bitmap geometry every filter in the scenario uses."""

    order: int = 16                # n
    num_vectors: int = 4           # k
    num_hashes: int = 3            # m
    rotation_interval: float = 5.0  # dt
    hash_seed: int = 0x5EED
    layers: Tuple[str, ...] = ()   # e.g. ("verify",) for the hybrid tier

    def filter_config(self, fail_policy=None) -> FilterConfig:
        """The :class:`FilterConfig` a site filter is built from."""
        extra = {} if fail_policy is None else {"fail_policy": fail_policy}
        return FilterConfig(
            order=self.order, num_vectors=self.num_vectors,
            num_hashes=self.num_hashes,
            rotation_interval=self.rotation_interval,
            seed=self.hash_seed, layers=self.layers, **extra)

    @property
    def expiry_timer(self) -> float:
        return self.num_vectors * self.rotation_interval


@dataclass(frozen=True)
class TrafficSpec:
    """Per-site normal-traffic shape."""

    mix: str = "campus"            # campus | web-search | data-mining
    pps: float = 200.0             # target normal packet rate per site
    networks_per_site: int = 2     # class-C networks per client site
    hosts_per_network: int = 40
    nat_pool: int = 0              # >0: modern mixes NAT through N public IPs
    ipv6: bool = False             # modern mixes fold IPv6 tuples
    asymmetry: float = 0.0         # fraction of flows routed around the filter

    def __post_init__(self) -> None:
        if self.mix not in TRAFFIC_MIXES:
            raise ValueError(
                f"unknown traffic mix {self.mix!r}; known: {TRAFFIC_MIXES}")
        if self.pps <= 0:
            raise ValueError("pps must be positive")
        if self.mix == "campus" and (self.nat_pool or self.ipv6
                                     or self.asymmetry):
            raise ValueError(
                "nat_pool/ipv6/asymmetry apply to the modern mixes only")


@dataclass(frozen=True)
class AttackWave:
    """One coordinated attack wave across the targeted sites.

    The wave starts at ``duration * start_fraction`` at its first target
    and ``site_stagger`` seconds later at each subsequent one — the
    "rolling outbreak" shape of coordinated campaigns.  ``rate_multiplier``
    scales the wave rate off the site's normal pps (the paper's Fig. 5
    attack is 20x).
    """

    kind: str = "scan"
    start_fraction: float = 1.0 / 3.0
    duration_fraction: float = 0.5
    rate_multiplier: float = 10.0
    site_stagger: float = 5.0
    targets: Tuple[str, ...] = ()  # site names; empty = every site

    def __post_init__(self) -> None:
        if self.kind not in WAVE_KINDS:
            raise ValueError(
                f"unknown wave kind {self.kind!r}; known: {WAVE_KINDS}")
        if not 0.0 <= self.start_fraction < 1.0:
            raise ValueError("start_fraction must be in [0, 1)")
        if self.duration_fraction <= 0 or self.rate_multiplier <= 0:
            raise ValueError("duration_fraction/rate_multiplier must be "
                             "positive")


@dataclass(frozen=True)
class RoamingClient:
    """A client whose filter state follows it between two sites.

    The roamer owns its own small address block and filter.  At
    ``duration * roam_fraction`` its filter state is snapshotted at the
    ``home`` site, published through the scenario's
    :class:`~repro.fleet.store.SnapshotStore`, and restored at ``visit`` —
    its marked flows survive the move instead of cold-starting.
    """

    name: str = "roamer0"
    home: str = "site0"
    visit: str = "site1"
    roam_fraction: float = 0.5
    pps: float = 40.0

    def __post_init__(self) -> None:
        if self.home == self.visit:
            raise ValueError("roaming needs two distinct sites")
        if not 0.0 < self.roam_fraction < 1.0:
            raise ValueError("roam_fraction must be in (0, 1)")
        if self.pps <= 0:
            raise ValueError("roamer pps must be positive")


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-determined multi-site scenario."""

    name: str
    topology: str = "fat-tree"
    sites: int = 3
    duration: float = 60.0
    seed: int = 7
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    filter: FilterGeometry = field(default_factory=FilterGeometry)
    waves: Tuple[AttackWave, ...] = (AttackWave(),)
    roamers: Tuple[RoamingClient, ...] = ()

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGY_KINDS:
            raise ValueError(
                f"unknown topology {self.topology!r}; known: "
                f"{TOPOLOGY_KINDS}")
        if self.sites < 1:
            raise ValueError("need at least one site")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        site_names = {f"site{i}" for i in range(self.sites)}
        for wave in self.waves:
            unknown = set(wave.targets) - site_names
            if unknown:
                raise ValueError(f"wave targets unknown sites: "
                                 f"{sorted(unknown)}")
        for roamer in self.roamers:
            for site in (roamer.home, roamer.visit):
                if site not in site_names:
                    raise ValueError(
                        f"roamer {roamer.name!r} references unknown site "
                        f"{site!r}")

    def with_mix(self, mix: str) -> "ScenarioSpec":
        """The same scenario on a different traffic mix."""
        cleared = ({"nat_pool": 0, "ipv6": False, "asymmetry": 0.0}
                   if mix == "campus" else {})
        traffic = replace(self.traffic, mix=mix, **cleared)
        return replace(self, traffic=traffic,
                       name=f"{self.name.split('/')[0]}/{mix}")


def _build(cls, table: dict, context: str):
    """Construct a frozen spec dataclass from a TOML table, strictly."""
    known = {f.name for f in fields(cls)}
    unknown = set(table) - known
    if unknown:
        raise ValueError(
            f"unknown {context} keys: {sorted(unknown)} "
            f"(known: {sorted(known)})")
    kwargs = dict(table)
    for key in ("targets", "layers"):
        if key in kwargs:
            kwargs[key] = tuple(kwargs[key])
    return cls(**kwargs)


def scenario_from_dict(data: dict) -> ScenarioSpec:
    """Build a :class:`ScenarioSpec` from a parsed TOML document."""
    data = dict(data)
    traffic = _build(TrafficSpec, data.pop("traffic", {}), "traffic")
    geometry = _build(FilterGeometry, data.pop("filter", {}), "filter")
    waves = tuple(_build(AttackWave, wave, "wave")
                  for wave in data.pop("waves", []))
    roamers = tuple(_build(RoamingClient, roamer, "roamer")
                    for roamer in data.pop("roamers", []))
    known = {f.name for f in fields(ScenarioSpec)} - {
        "traffic", "filter", "waves", "roamers"}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown scenario keys: {sorted(unknown)}")
    return ScenarioSpec(traffic=traffic, filter=geometry, waves=waves,
                        roamers=roamers, **data)


def load_scenario(path: Union[str, Path]) -> ScenarioSpec:
    """Load a scenario spec from a TOML file (Python 3.11+ stdlib).

    See ``examples/scenarios/fat_tree.toml`` and docs/scenarios.md for the
    schema.
    """
    try:
        import tomllib
    except ImportError as exc:  # pragma: no cover - py<3.11 only
        raise RuntimeError(
            "TOML scenario files need Python 3.11+ (tomllib); construct "
            "the ScenarioSpec dataclass directly instead") from exc
    with open(Path(path), "rb") as handle:
        return scenario_from_dict(tomllib.load(handle))


def _preset(name: str, topology: str, mix: str, **fields_) -> ScenarioSpec:
    traffic_fields = {
        key: fields_.pop(key)
        for key in ("pps", "nat_pool", "ipv6", "asymmetry") if key in fields_}
    return ScenarioSpec(
        name=f"{name}/{mix}", topology=topology, duration=30.0,
        traffic=TrafficSpec(mix=mix, pps=120.0, **traffic_fields), **fields_)


#: Ready-made scenarios the experiment matrix and smoke tests draw from.
#: The fat-tree pair carries a roaming client, so running either preset
#: always exercises the snapshot-handoff path.
_ROAM = (RoamingClient(roam_fraction=0.5, pps=20.0),)
PRESETS = {
    spec.name: spec for spec in (
        _preset("fat-tree", "fat-tree", "web-search", seed=7, roamers=_ROAM),
        _preset("fat-tree", "fat-tree", "campus", seed=7, roamers=_ROAM),
        _preset("multi-isp", "multi-isp", "data-mining", seed=11,
                nat_pool=6),
        _preset("cross-dc", "cross-dc", "web-search", seed=13, ipv6=True),
    )
}
