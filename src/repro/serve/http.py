"""The daemon's embedded HTTP endpoint: metrics, health, snapshots.

A deliberately tiny HTTP/1.1 responder on asyncio streams — three GET
routes, ``Connection: close`` on every response, no keep-alive, no
dependency beyond the standard library:

- ``GET /metrics`` — the daemon's registry in Prometheus text exposition
  format (:func:`repro.telemetry.exporters.to_prometheus`); filter and
  daemon instruments share one registry, so one scrape sees both.
- ``GET /healthz`` — a JSON liveness document (status, uptime, queue
  depth, filter configuration, rotation schedule).
- ``GET /snapshot`` — the live filter's checksummed snapshot-v2 archive
  as ``application/octet-stream``; ``curl -o state.npz`` of a running
  daemon is a valid ``--restore`` file.  Answers 503 while the filter is
  down (a failed filter refuses to snapshot).

Anything else is 404; non-GET methods are 405.  Malformed requests get a
400 and a closed connection — this endpoint is for operators on a trusted
network, not the open internet, matching the paper's deployment at the
client network's edge router.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING, Tuple

from repro.telemetry.exporters import to_prometheus

if TYPE_CHECKING:
    from repro.serve.daemon import FilterDaemon

__all__ = ["HttpEndpoint"]

_MAX_REQUEST_LINE = 8192
_PROMETHEUS_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    503: "Service Unavailable",
}


class HttpEndpoint:
    """Serve /metrics, /healthz, and /snapshot for one daemon."""

    def __init__(self, daemon: "FilterDaemon"):
        self._daemon = daemon

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        """One request, one response, close — the whole connection."""
        try:
            try:
                request = await asyncio.wait_for(
                    reader.readline(), timeout=10.0)
                if not request or len(request) > _MAX_REQUEST_LINE:
                    raise ValueError("bad request line")
                parts = request.decode("latin-1").split()
                if len(parts) < 2:
                    raise ValueError("bad request line")
                method, path = parts[0], parts[1].split("?", 1)[0]
                # Drain headers; this responder ignores them.
                while True:
                    line = await asyncio.wait_for(
                        reader.readline(), timeout=10.0)
                    if line in (b"\r\n", b"\n", b""):
                        break
            except (ValueError, UnicodeDecodeError, asyncio.TimeoutError):
                self._write(writer, 400, "text/plain; charset=utf-8",
                            b"bad request\n")
                return
            status, content_type, body = self._route(method, path)
            self._write(writer, status, content_type, body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _route(self, method: str, path: str) -> Tuple[int, str, bytes]:
        if method != "GET":
            return 405, "text/plain; charset=utf-8", b"GET only\n"
        if path == "/metrics":
            daemon = self._daemon
            daemon._m.uptime.set(daemon.uptime())
            text = to_prometheus(daemon.registry)
            return 200, _PROMETHEUS_TYPE, text.encode()
        if path == "/healthz":
            body = json.dumps(self._daemon.health(), sort_keys=True).encode()
            return 200, "application/json", body
        if path == "/snapshot":
            try:
                data = self._daemon.snapshot_bytes()
            except ValueError as exc:  # e.g. the filter is down
                return (503, "text/plain; charset=utf-8",
                        f"{exc}\n".encode())
            return 200, "application/octet-stream", data
        return 404, "text/plain; charset=utf-8", b"not found\n"

    @staticmethod
    def _write(writer: asyncio.StreamWriter, status: int, content_type: str,
               body: bytes) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n"
                "\r\n").encode("latin-1")
        writer.write(head + body)
