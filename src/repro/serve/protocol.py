"""The serve wire protocol: length-prefixed binary frames over a stream.

One frame is a 4-byte big-endian payload length followed by the payload,
whose first byte is the frame type::

    +----------------+--------+------------------------+
    | length (u32 BE)| type u8| body (length - 1 bytes)|
    +----------------+--------+------------------------+

Client -> server frames:

- ``FT_PACKETS`` — body is N packed packet rows (:data:`WIRE_DTYPE`, the
  little-endian form of :data:`~repro.net.packet.PACKET_DTYPE`).  The
  daemon answers each with exactly one ``FT_VERDICTS`` frame, in order.
- ``FT_PING`` — body is an opaque token echoed back in ``FT_PONG``.
  Because replies are delivered strictly in submission order, a ping
  doubles as a barrier: its pong arrives only after the verdicts of every
  previously sent packet frame.
- ``FT_CONFIG_REQ`` — asks for the daemon's ``FT_CONFIG`` description.
- ``FT_GOODBYE`` — orderly close; the daemon flushes pending verdicts,
  answers ``FT_BYE``, and closes the connection.

Server -> client frames:

- ``FT_VERDICTS`` — one byte per packet of the paired ``FT_PACKETS`` frame
  (``0x01`` pass, ``0x00`` drop).
- ``FT_PONG`` / ``FT_CONFIG`` / ``FT_BYE`` — responses as above;
  ``FT_CONFIG`` carries a UTF-8 JSON object (filter geometry, protected
  networks, clock mode, backend) so a client can build the offline twin
  of the daemon's filter.
- ``FT_ERROR`` — UTF-8 diagnostic; the daemon closes the connection after
  sending it.

Framing errors — an oversized length prefix, an unknown frame type, a
packet body that is not a whole number of rows, non-finite timestamps, or
a stream that ends mid-frame — raise :class:`ProtocolError` and never
crash the decoder.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.net.packet import PACKET_DTYPE, PacketArray

__all__ = [
    "DEFAULT_MAX_FRAME",
    "FRAME_TYPES",
    "FT_BYE",
    "FT_CONFIG",
    "FT_CONFIG_REQ",
    "FT_ERROR",
    "FT_GOODBYE",
    "FT_PACKETS",
    "FT_PING",
    "FT_PONG",
    "FT_VERDICTS",
    "FrameDecoder",
    "ProtocolError",
    "decode_packets",
    "decode_verdicts",
    "encode_frame",
    "encode_packets",
    "encode_verdicts",
]

#: Wire form of the packet row: PACKET_DTYPE with every field little-endian,
#: so captures exchange identically between hosts regardless of native order.
WIRE_DTYPE = np.dtype([(name, PACKET_DTYPE[name].newbyteorder("<"))
                       for name in PACKET_DTYPE.names])

FT_PACKETS = 0x01
FT_PING = 0x02
FT_GOODBYE = 0x03
FT_CONFIG_REQ = 0x04
FT_VERDICTS = 0x81
FT_PONG = 0x82
FT_CONFIG = 0x83
FT_BYE = 0x84
FT_ERROR = 0xEE

FRAME_TYPES = frozenset({
    FT_PACKETS, FT_PING, FT_GOODBYE, FT_CONFIG_REQ,
    FT_VERDICTS, FT_PONG, FT_CONFIG, FT_BYE, FT_ERROR,
})

#: Default ceiling on one frame's payload (type byte + body).
DEFAULT_MAX_FRAME = 8 * 1024 * 1024

_LENGTH = struct.Struct("!I")


class ProtocolError(ValueError):
    """The byte stream violates the serve framing protocol."""


def encode_frame(frame_type: int, body: bytes = b"") -> bytes:
    """One wire frame: length prefix + type byte + body."""
    if frame_type not in FRAME_TYPES:
        raise ProtocolError(f"unknown frame type {frame_type:#x}")
    return _LENGTH.pack(1 + len(body)) + bytes([frame_type]) + body


def encode_packets(packets: PacketArray) -> bytes:
    """A ``FT_PACKETS`` frame holding every row of ``packets``."""
    wire = np.ascontiguousarray(packets.data.astype(WIRE_DTYPE, copy=False))
    return encode_frame(FT_PACKETS, wire.tobytes())


def decode_packets(body: bytes) -> PacketArray:
    """Parse a ``FT_PACKETS`` body back into a :class:`PacketArray`.

    Rejects bodies that are not a whole number of packet rows and rows
    with non-finite timestamps (they would wedge the rotation schedule).
    """
    itemsize = WIRE_DTYPE.itemsize
    if len(body) % itemsize:
        raise ProtocolError(
            f"packet frame body of {len(body)} bytes is not a multiple of "
            f"the {itemsize}-byte row size")
    rows = np.frombuffer(body, dtype=WIRE_DTYPE).astype(PACKET_DTYPE)
    if len(rows) and not np.isfinite(rows["ts"]).all():
        raise ProtocolError("packet frame carries non-finite timestamps")
    return PacketArray(rows)


def encode_verdicts(verdicts: np.ndarray) -> bytes:
    """A ``FT_VERDICTS`` frame: one byte per verdict (1 pass, 0 drop)."""
    return encode_frame(FT_VERDICTS,
                        np.asarray(verdicts, dtype=bool)
                        .astype(np.uint8).tobytes())


def decode_verdicts(body: bytes) -> np.ndarray:
    """Parse a ``FT_VERDICTS`` body into a boolean PASS mask."""
    raw = np.frombuffer(body, dtype=np.uint8)
    if len(raw) and raw.max() > 1:
        raise ProtocolError("verdict frame carries bytes other than 0/1")
    return raw.astype(bool)


class FrameDecoder:
    """Incremental frame parser over an arbitrarily chunked byte stream.

    Feed it chunks as they arrive; iterate :meth:`frames` for every
    complete ``(frame_type, body)`` pair.  Call :meth:`finish` at EOF —
    a partial frame left in the buffer is a protocol error (the peer died
    mid-frame), not something to ignore silently.
    """

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME):
        if max_frame < 1:
            raise ValueError("max_frame must be positive")
        self.max_frame = max_frame
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet consumed as complete frames."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> List[Tuple[int, bytes]]:
        """Add a chunk and return every frame it completed."""
        self._buffer.extend(chunk)
        return list(self.frames())

    def frames(self) -> Iterator[Tuple[int, bytes]]:
        """Pop complete ``(type, body)`` frames from the buffer."""
        while True:
            frame = self._next_frame()
            if frame is None:
                return
            yield frame

    def _next_frame(self) -> Optional[Tuple[int, bytes]]:
        buf = self._buffer
        if len(buf) < _LENGTH.size:
            return None
        (length,) = _LENGTH.unpack_from(buf, 0)
        if length < 1:
            raise ProtocolError("zero-length frame (missing type byte)")
        if length > self.max_frame:
            raise ProtocolError(
                f"frame of {length} bytes exceeds the {self.max_frame}-byte "
                "limit")
        if len(buf) < _LENGTH.size + length:
            return None
        frame_type = buf[_LENGTH.size]
        if frame_type not in FRAME_TYPES:
            raise ProtocolError(f"unknown frame type {frame_type:#x}")
        body = bytes(buf[_LENGTH.size + 1:_LENGTH.size + length])
        del buf[:_LENGTH.size + length]
        return frame_type, body

    def finish(self) -> None:
        """Assert the stream ended on a frame boundary."""
        if self._buffer:
            raise ProtocolError(
                f"stream ended mid-frame with {len(self._buffer)} "
                "unconsumed bytes")
