"""The online filtering daemon: packets stream in, verdicts stream out.

:class:`FilterDaemon` wraps one logical packet filter — a serial
:class:`~repro.core.bitmap_filter.BitmapFilter`, a replicated
:class:`~repro.parallel.sharded.ShardedBitmapFilter`, or a shared-memory
:class:`~repro.parallel.shared.SharedBitmapFilter`, selected by
``ServeConfig.backend`` (``"auto"`` keeps the historical rule: ``workers
> 1`` means sharded) — behind the framing protocol of
:mod:`repro.serve.protocol` on a TCP and/or Unix-domain listener, plus an
embedded HTTP endpoint (:mod:`repro.serve.http`) for ``/metrics``,
``/healthz``, and ``/snapshot``.

Ingest pipeline
---------------
Each connection gets a reader task (decode frames, enqueue work) and a
writer task (deliver responses *strictly in submission order* — every
request frame is paired with a future queued at decode time, so verdicts
can resolve out of band without ever reordering a client's stream).
Packet frames funnel into one bounded ingest queue consumed by a single
loop that micro-batches: consecutive frames from the same connection are
coalesced (up to ``batch_max_packets``) into one ``process_batch`` call,
whose verdict mask is split back per frame.  Coalescing is restricted to
one connection so each client's timestamp order is preserved.

Backpressure is explicit and configurable.  ``block`` (default) stops
reading from a connection while the queue is full — TCP flow control
pushes back on the sender, and verdicts stay exact.  ``shed`` answers
overflow frames immediately from the fail policy (fail-open admits,
fail-closed drops inbound) without touching the filter — the daemon stays
responsive under overload at the cost of policy-judged verdicts, mirroring
what the degraded-mode layer does during an outage.

Time
----
``clock="packet"`` (replay mode) drives rotations from packet timestamps,
exactly like offline replay — byte-identical verdicts to
:func:`repro.sim.pipeline.run_filter_on_trace`, which the differential
suite asserts.  ``clock="wall"`` (live mode) stamps packets with arrival
time and runs a :class:`~repro.serve.scheduler.RotationScheduler` so
rotations fire every Δt of real time even when traffic pauses.

Lifecycle
---------
SIGTERM (or :meth:`request_shutdown`) drains: listeners close, in-flight
frames are processed, verdicts flush, a final snapshot is written when
``snapshot_path`` is set, and every connection closes cleanly.  SIGHUP
(or :meth:`apply_config`) hot-reloads the filter configuration: fail
policy swaps immediately; geometry changes (k, n, m, Δt, seed) rebuild
the filter at the next rotation boundary with a warm-up grace window
covering the lost marks.  ``restore_path`` warm-starts either backend
from a checksummed snapshot-v2 file.
"""

from __future__ import annotations

import asyncio
import json
import socket
import sys
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from time import monotonic, perf_counter
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.core.bitmap_filter import BitmapFilter, FilterConfig
from repro.core.filter_api import BACKEND_NAMES, build_filter
from repro.core.resilience import FailPolicy
from repro.net.address import AddressSpace
from repro.net.packet import DIRECTION_INCOMING, PacketArray
from repro.serve import protocol
from repro.serve.http import HttpEndpoint
from repro.serve.protocol import FrameDecoder, ProtocolError
from repro.serve.scheduler import RotationScheduler
from repro.serve.state import snapshot_to_bytes, write_snapshot
from repro.telemetry.registry import MetricsRegistry, log_buckets

__all__ = ["FilterDaemon", "ServeConfig"]

CLOCK_MODES = ("packet", "wall")
BACKPRESSURE_MODES = ("block", "shed")

#: Batch-size histogram bounds: 1 packet to ~1M packets.
_BATCH_BUCKETS = tuple(log_buckets(1.0, 1e6, per_decade=2))

_EOF = object()


@dataclass
class ServeConfig:
    """Everything a :class:`FilterDaemon` needs to run."""

    filter: FilterConfig
    protected: AddressSpace
    host: str = "127.0.0.1"
    port: int = 0                    # 0 = ephemeral
    unix_path: Optional[str] = None  # additionally/instead serve a UDS
    http_host: str = "127.0.0.1"
    http_port: int = 0
    http: bool = True
    workers: int = 0                 # worker processes for parallel backends
    backend: str = "auto"            # "auto" | "serial" | "sharded" | "shared"
    clock: str = "packet"            # "packet" replay | "wall" live
    exact: bool = True               # batch mode fed to process_batch
    backpressure: str = "block"      # "block" | "shed"
    queue_frames: int = 64           # ingest queue bound (frames)
    batch_max_packets: int = 65536   # micro-batch coalescing ceiling
    max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME
    snapshot_path: Optional[str] = None   # final snapshot target (SIGTERM)
    restore_path: Optional[str] = None    # warm-start source
    reload_path: Optional[str] = None     # SIGHUP re-reads this JSON file
    mp_context: Optional[str] = None      # sharded fork/spawn override

    def __post_init__(self) -> None:
        if self.backend not in ("auto",) + BACKEND_NAMES:
            raise ValueError(
                f"backend must be \"auto\" or one of {BACKEND_NAMES}")
        if self.backend == "serial" and self.workers > 1:
            raise ValueError("the serial backend has exactly one worker")
        if self.clock not in CLOCK_MODES:
            raise ValueError(f"clock must be one of {CLOCK_MODES}")
        if self.backpressure not in BACKPRESSURE_MODES:
            raise ValueError(
                f"backpressure must be one of {BACKPRESSURE_MODES}")
        if self.queue_frames < 1:
            raise ValueError("queue_frames must be at least 1")
        if self.batch_max_packets < 1:
            raise ValueError("batch_max_packets must be at least 1")

    @property
    def resolved_backend(self) -> str:
        """The concrete backend ``"auto"`` resolves to (``workers > 1``
        keeps meaning sharded, as it did before ``backend`` existed)."""
        if self.backend != "auto":
            return self.backend
        return "sharded" if self.workers > 1 else "serial"

    @property
    def resolved_workers(self) -> int:
        """Worker count for the resolved backend (parallel backends get at
        least two workers when ``workers`` was left at the default)."""
        if self.resolved_backend == "serial":
            return 1
        return self.workers if self.workers > 1 else 2


class _Connection:
    """One client: its streams, its ordered response queue, its tasks."""

    _ids = 0

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        _Connection._ids += 1
        self.id = _Connection._ids
        self.reader = reader
        self.writer = writer
        self.responses: "asyncio.Queue" = asyncio.Queue()
        self.reader_task: Optional[asyncio.Task] = None
        self.writer_task: Optional[asyncio.Task] = None
        self.closing = False

    def respond_now(self, frame_type: int, body: bytes) -> None:
        """Queue an already-resolved response (still delivered in order)."""
        fut = asyncio.get_running_loop().create_future()
        fut.set_result((frame_type, body))
        self.responses.put_nowait(fut)

    def make_response(self) -> "asyncio.Future":
        """Reserve the next in-order response slot; resolve it later."""
        fut = asyncio.get_running_loop().create_future()
        self.responses.put_nowait(fut)
        return fut


class _Instruments:
    """The daemon's own metrics (the filter adds its own to the registry)."""

    def __init__(self, registry: MetricsRegistry):
        self.connections_total = registry.counter(
            "repro_serve_connections_total", "Client connections accepted")
        self.connections_open = registry.gauge(
            "repro_serve_connections_open", "Client connections currently open")
        self.packets_total = registry.counter(
            "repro_serve_packets_total",
            "Packets filtered through the daemon (excludes shed packets)")
        self.batches_total = registry.counter(
            "repro_serve_batches_total",
            "Micro-batches executed by the ingest loop")
        self.frames = {
            name: registry.counter(
                "repro_serve_frames_total",
                "Frames received from clients, by type", type=name)
            for name in ("packets", "ping", "config", "goodbye")
        }
        self.batch_packets = registry.histogram(
            "repro_serve_batch_packets",
            "Coalesced micro-batch sizes (packets per process_batch call)",
            bounds=_BATCH_BUCKETS)
        self.batch_seconds = registry.histogram(
            "repro_serve_batch_seconds",
            "Wall-clock duration of each micro-batch filter call")
        self.queue_depth = registry.gauge(
            "repro_serve_queue_depth", "Packet frames waiting in the ingest queue")
        self.shed_frames = registry.counter(
            "repro_serve_shed_frames_total",
            "Packet frames answered by the fail policy under backpressure")
        self.shed_packets = registry.counter(
            "repro_serve_shed_packets_total",
            "Packets answered by the fail policy under backpressure")
        self.protocol_errors = registry.counter(
            "repro_serve_errors_total",
            "Connections terminated on an error, by kind", kind="protocol")
        self.filter_errors = registry.counter(
            "repro_serve_errors_total",
            "Connections terminated on an error, by kind", kind="filter")
        self.snapshots_total = registry.counter(
            "repro_serve_snapshots_total",
            "Snapshots served over HTTP or written at shutdown")
        self.reloads = {
            kind: registry.counter(
                "repro_serve_reloads_total",
                "Configuration reloads applied, by kind", kind=kind)
            for kind in ("immediate", "rebuild")
        }
        self.uptime = registry.gauge(
            "repro_serve_uptime_seconds", "Seconds since the daemon started")


class FilterDaemon:
    """A long-running online bitmap filter service (see module docstring)."""

    def __init__(self, config: ServeConfig, *,
                 registry: Optional[MetricsRegistry] = None):
        self.config = config
        self.registry = registry if registry is not None else MetricsRegistry()
        self._m = _Instruments(self.registry)
        self._filter_config = config.filter
        self._filt = None
        self._scheduler: Optional[RotationScheduler] = None
        self._pending_config: Optional[FilterConfig] = None
        self._rebuild_at = float("inf")   # boundary the rebuild waits for
        self._restored_arrivals = 0       # arrivals carried by a warm start

        self._queue: Deque[Tuple[_Connection, PacketArray, asyncio.Future]] = \
            deque()
        self._queue_event = asyncio.Event()
        self._space_event = asyncio.Event()
        self._space_event.set()
        self._draining = False
        self._drained = False

        self._conns: Dict[int, _Connection] = {}
        self._servers: List[asyncio.AbstractServer] = []
        self._http_server: Optional[asyncio.AbstractServer] = None
        self._ingest_task: Optional[asyncio.Task] = None
        self._shutdown_event = asyncio.Event()
        self._started = False
        self._start_wall = monotonic()

        self.data_address: Optional[Tuple[str, int]] = None
        self.unix_address: Optional[str] = None
        self.http_address: Optional[Tuple[str, int]] = None

    # -- construction ---------------------------------------------------------

    def _build_filter(self, cfg: FilterConfig, start_time: float):
        # One construction path for every backend and layer stack: the
        # config's layers (e.g. the hybrid verification tier) are wrapped
        # by the factory itself.
        return build_filter(
            cfg,
            self.config.protected,
            start_time=start_time,
            backend=self.config.resolved_backend,
            workers=self.config.resolved_workers,
            telemetry=self.registry,
            mp_context=self.config.mp_context,
        )

    def _init_filter(self) -> None:
        if self.config.restore_path:
            self._filt = build_filter(
                snapshot=self.config.restore_path,
                backend=self.config.resolved_backend,
                workers=self.config.resolved_workers,
                telemetry=self.registry,
                mp_context=self.config.mp_context,
            )
            self._filter_config = FilterConfig.from_bitmap_config(
                self._filt.config, fail_policy=self._filt.fail_policy,
                layers=getattr(self._filt, "layers", ()))
            # How much state the warm start actually carried: a fleet
            # supervisor reads this off /healthz to prove a scale-out
            # served warm instead of cold.
            self._restored_arrivals = int(self._filt.stats.total)
        else:
            self._filt = self._build_filter(self._filter_config, 0.0)

    @property
    def filter(self):
        """The live filter instance (swapped by rebuilds — don't cache)."""
        return self._filt

    @property
    def backend(self) -> str:
        return self.config.resolved_backend

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Bind listeners, start the ingest loop (and scheduler in wall mode)."""
        if self._started:
            raise RuntimeError("daemon already started")
        self._started = True
        self._start_wall = monotonic()
        self._init_filter()

        if self.config.clock == "wall":
            # Filter time resumes at the last rotation boundary, so a
            # restored schedule stays aligned; a fresh filter starts at 0.
            resume_at = (self._filt.next_rotation
                         - self._filt.config.rotation_interval)
            self._scheduler = RotationScheduler(
                self._filt,
                epoch=monotonic() - resume_at,
                registry=self.registry,
                on_boundary=self._on_rotation_boundary,
            )

        server = await asyncio.start_server(
            self._on_connection, host=self.config.host, port=self.config.port)
        self._servers.append(server)
        sockname = server.sockets[0].getsockname()
        self.data_address = (sockname[0], sockname[1])

        if self.config.unix_path:
            unix_server = await asyncio.start_unix_server(
                self._on_connection, path=self.config.unix_path)
            self._servers.append(unix_server)
            self.unix_address = self.config.unix_path

        if self.config.http:
            endpoint = HttpEndpoint(self)
            self._http_server = await asyncio.start_server(
                endpoint.handle, host=self.config.http_host,
                port=self.config.http_port)
            http_name = self._http_server.sockets[0].getsockname()
            self.http_address = (http_name[0], http_name[1])

        self._ingest_task = asyncio.get_running_loop().create_task(
            self._ingest_loop(), name="repro-serve-ingest")
        if self._scheduler is not None:
            self._scheduler.start()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT -> graceful drain; SIGHUP -> config hot-reload."""
        import signal

        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, self.request_shutdown)
        loop.add_signal_handler(signal.SIGHUP, self.request_reload)

    def request_shutdown(self) -> None:
        """Begin the graceful drain (idempotent; safe from signal handlers)."""
        self._shutdown_event.set()

    async def serve_forever(self) -> None:
        """Run until a shutdown is requested, then drain and exit."""
        if not self._started:
            await self.start()
        await self._shutdown_event.wait()
        await self.drain()

    async def drain(self) -> None:
        """Graceful stop: flush in-flight work, snapshot, close everything."""
        if self._drained:
            return
        self._drained = True
        # 1. Stop accepting connections and reading new frames.
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        readers = [conn.reader_task for conn in self._conns.values()
                   if conn.reader_task is not None]
        for task in readers:
            task.cancel()
        await asyncio.gather(*readers, return_exceptions=True)
        # 2. Drain the ingest queue (everything received gets a verdict).
        self._draining = True
        self._queue_event.set()
        if self._ingest_task is not None:
            await self._ingest_task
        # 3. Flush and close every connection's writer.
        writers = [conn.writer_task for conn in self._conns.values()
                   if conn.writer_task is not None]
        await asyncio.gather(*writers, return_exceptions=True)
        # 4. Stop the rotation scheduler.
        if self._scheduler is not None:
            self._scheduler.stop()
            await self._scheduler.join()
        # 5. Final snapshot, then release the backend.
        if self.config.snapshot_path:
            write_snapshot(self._filt, self.config.snapshot_path)
            self._m.snapshots_total.inc()
        if self._http_server is not None:
            self._http_server.close()
            await self._http_server.wait_closed()
        if hasattr(self._filt, "close"):
            self._filt.close()
        if self.config.unix_path:
            try:
                Path(self.config.unix_path).unlink()
            except OSError:
                pass

    # -- connection handling --------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None and sock.family in (socket.AF_INET,
                                                socket.AF_INET6):
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn = _Connection(reader, writer)
        self._conns[conn.id] = conn
        self._m.connections_total.inc()
        self._m.connections_open.inc()
        loop = asyncio.get_running_loop()
        conn.writer_task = loop.create_task(
            self._write_loop(conn), name=f"repro-serve-write-{conn.id}")
        conn.reader_task = loop.create_task(
            self._read_loop(conn), name=f"repro-serve-read-{conn.id}")

    async def _read_loop(self, conn: _Connection) -> None:
        decoder = FrameDecoder(self.config.max_frame_bytes)
        try:
            while not conn.closing:
                chunk = await conn.reader.read(1 << 16)
                if not chunk:
                    decoder.finish()
                    break
                for frame_type, body in decoder.feed(chunk):
                    await self._on_frame(conn, frame_type, body)
                    if conn.closing:
                        break
        except ProtocolError as exc:
            self._m.protocol_errors.inc()
            conn.respond_now(protocol.FT_ERROR, str(exc).encode())
        except (ConnectionError, OSError):
            pass
        finally:
            conn.responses.put_nowait(_EOF)

    async def _write_loop(self, conn: _Connection) -> None:
        try:
            while True:
                item = await conn.responses.get()
                if item is _EOF:
                    break
                frame_type, body = await item
                conn.writer.write(protocol.encode_frame(frame_type, body))
                await conn.writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                conn.writer.close()
                await conn.writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._conns.pop(conn.id, None)
            self._m.connections_open.dec()

    async def _on_frame(self, conn: _Connection, frame_type: int,
                        body: bytes) -> None:
        if frame_type == protocol.FT_PACKETS:
            self._m.frames["packets"].inc()
            packets = protocol.decode_packets(body)
            if self._scheduler is not None:
                # Live mode: the daemon is the clock; stamp arrival time.
                packets.data["ts"][:] = self._scheduler.filter_now()
            fut = conn.make_response()
            await self._enqueue(conn, packets, fut)
        elif frame_type == protocol.FT_PING:
            self._m.frames["ping"].inc()
            conn.respond_now(protocol.FT_PONG, body)
        elif frame_type == protocol.FT_CONFIG_REQ:
            self._m.frames["config"].inc()
            conn.respond_now(
                protocol.FT_CONFIG,
                json.dumps(self.describe(), sort_keys=True).encode())
        elif frame_type == protocol.FT_GOODBYE:
            self._m.frames["goodbye"].inc()
            conn.respond_now(protocol.FT_BYE, b"")
            conn.closing = True
        else:
            raise ProtocolError(
                f"client sent server-only frame type {frame_type:#x}")

    async def _enqueue(self, conn: _Connection, packets: PacketArray,
                       fut: asyncio.Future) -> None:
        if len(self._queue) >= self.config.queue_frames:
            if self.config.backpressure == "shed":
                self._shed(packets, fut)
                return
            try:
                while len(self._queue) >= self.config.queue_frames:
                    self._space_event.clear()
                    await self._space_event.wait()
            except asyncio.CancelledError:
                # Drain in progress: the frame was already received, so it
                # still gets a verdict — queue it past the bound.
                self._push(conn, packets, fut)
                raise
        self._push(conn, packets, fut)

    def _push(self, conn: _Connection, packets: PacketArray,
              fut: asyncio.Future) -> None:
        self._queue.append((conn, packets, fut))
        self._m.queue_depth.set(len(self._queue))
        self._queue_event.set()

    def _shed(self, packets: PacketArray, fut: asyncio.Future) -> None:
        """Answer an overflow frame from the fail policy, filter untouched."""
        verdicts = np.ones(len(packets), dtype=bool)
        if self._filt.fail_policy is FailPolicy.FAIL_CLOSED:
            directions = packets.directions(self.config.protected)
            verdicts[directions == DIRECTION_INCOMING] = False
        self._m.shed_frames.inc()
        self._m.shed_packets.inc(len(packets))
        fut.set_result(
            (protocol.FT_VERDICTS,
             verdicts.astype(np.uint8).tobytes()))

    # -- the ingest loop ------------------------------------------------------

    async def _ingest_loop(self) -> None:
        queue = self._queue
        while True:
            if not queue:
                if self._draining:
                    return
                self._queue_event.clear()
                await self._queue_event.wait()
                continue
            conn, packets, fut = queue.popleft()
            frames = [(packets, fut)]
            total = len(packets)
            # Micro-batch: coalesce this client's consecutive frames.
            while (queue and queue[0][0] is conn
                   and total < self.config.batch_max_packets):
                _, more, more_fut = queue.popleft()
                frames.append((more, more_fut))
                total += len(more)
            self._m.queue_depth.set(len(queue))
            self._space_event.set()
            self._run_batch(frames)
            # Yield so readers/writers/HTTP interleave between batches.
            await asyncio.sleep(0)

    def _run_batch(self,
                   frames: List[Tuple[PacketArray, asyncio.Future]]) -> None:
        arrays = [packets for packets, _ in frames]
        batch = arrays[0] if len(arrays) == 1 else \
            PacketArray.concatenate(arrays)
        began = perf_counter()
        try:
            verdicts = self._filter_batch(batch)
        except Exception as exc:  # noqa: BLE001 - surfaced to the client
            self._m.filter_errors.inc()
            message = f"filter failure: {exc}".encode()
            for _, fut in frames:
                if not fut.done():
                    fut.set_result((protocol.FT_ERROR, message))
            print(f"repro-serve: batch failed: {exc!r}", file=sys.stderr)
            return
        elapsed = perf_counter() - began
        self._m.batches_total.inc()
        self._m.packets_total.inc(len(batch))
        self._m.batch_packets.observe(len(batch))
        self._m.batch_seconds.observe(elapsed)
        raw = verdicts.astype(np.uint8).tobytes()
        offset = 0
        for packets, fut in frames:
            end = offset + len(packets)
            fut.set_result((protocol.FT_VERDICTS, raw[offset:end]))
            offset = end

    def _filter_batch(self, batch: PacketArray) -> np.ndarray:
        """``process_batch`` with a packet-deterministic deferred rebuild.

        When a pending geometry's rebuild boundary falls *inside* this
        micro-batch, the batch is split at the boundary: packets with
        ``ts < rebuild_at`` go through the old filter, the rebuild runs,
        and the remainder goes through the new one.  The split makes the
        rebuild point a function of packet timestamps alone — not of how
        frames happened to coalesce into batches — which is what lets a
        whole fleet rebuild at one shared boundary and stay byte-identical
        to an offline twin that rebuilds at the same boundary.
        """
        if self._pending_config is None or not len(batch):
            return self._filt.process_batch(batch, exact=self.config.exact)
        ts = np.asarray(batch.ts, dtype=np.float64)
        split = int(np.searchsorted(ts, self._rebuild_at, side="left"))
        if split >= len(batch):  # boundary still ahead of all of this batch
            return self._filt.process_batch(batch, exact=self.config.exact)
        if split == 0:
            self._rebuild_now()
            return self._filt.process_batch(batch, exact=self.config.exact)
        head = self._filt.process_batch(batch[:split],
                                        exact=self.config.exact)
        self._rebuild_now()
        tail = self._filt.process_batch(batch[split:],
                                        exact=self.config.exact)
        return np.concatenate([head, tail])

    # -- hot reload -----------------------------------------------------------

    def request_reload(self) -> None:
        """SIGHUP entry point: re-read ``reload_path`` and apply it."""
        if not self.config.reload_path:
            print("repro-serve: SIGHUP ignored (no --reload-config file)",
                  file=sys.stderr)
            return
        try:
            text = Path(self.config.reload_path).read_text()
            data = json.loads(text)
            rebuild_at = None
            if isinstance(data, dict) and "rebuild_at" in data:
                rebuild_at = float(data.pop("rebuild_at"))
            new_config = _parse_filter_config(data)
        except (OSError, ValueError, TypeError) as exc:
            print(f"repro-serve: reload failed: {exc}", file=sys.stderr)
            return
        self.apply_config(new_config, rebuild_at=rebuild_at)

    def apply_config(self, new_config: FilterConfig, *,
                     rebuild_at: Optional[float] = None) -> str:
        """Apply a new :class:`FilterConfig`; returns what happened.

        Fail-policy changes apply immediately ("immediate").  Geometry or
        timing changes (n, k, m, Δt, seed, layers) cannot be translated
        onto live bit state, so they are deferred and rebuild the filter
        at the next rotation boundary ("deferred-rebuild"); "unchanged"
        means the new config matches the running one.

        ``rebuild_at`` overrides the boundary the rebuild waits for — a
        fleet supervisor passes one *shared* boundary to every node so
        the whole fleet swaps geometry at the same filter-time instant
        (and an offline twin rebuilding at that boundary stays
        byte-identical).  It should be a rotation boundary; the default
        is this filter's own next rotation.
        """
        current = self._filter_config
        geometry_changed = any(
            getattr(new_config, name) != getattr(current, name)
            for name in ("order", "num_vectors", "num_hashes",
                         "rotation_interval", "seed", "layers"))
        if not geometry_changed:
            if new_config.fail_policy is not self._filt.fail_policy:
                self._filt.set_fail_policy(new_config.fail_policy)
                self._filter_config = new_config
                self._m.reloads["immediate"].inc()
                return "immediate"
            return "unchanged"
        # Capture the boundary to rebuild at *now*: the filter's own
        # next_rotation keeps moving ahead of the traffic as batches are
        # processed, so comparing against it later would defer forever.
        self._pending_config = new_config
        self._rebuild_at = (float(rebuild_at) if rebuild_at is not None
                            else self._filt.next_rotation)
        return "deferred-rebuild"

    async def _on_rotation_boundary(self, now_ft: float) -> None:
        if self._pending_config is not None:
            self._maybe_rebuild(now_ft)

    def _maybe_rebuild(self, now_ft: float) -> None:
        """Rebuild onto the pending config once a rotation boundary passes."""
        if now_ft < self._rebuild_at:
            return
        self._rebuild_now()

    def _rebuild_now(self) -> None:
        """Swap the filter onto the pending config, anchored at the boundary.

        The new filter starts at the captured rebuild boundary — or, if
        the old filter's clock already ran past it (wall mode catching
        up), at the last boundary the old filter crossed — so its
        rotation schedule stays origin-anchored and packets in flight
        remain monotonic for it.
        """
        new_config = self._pending_config
        target = self._rebuild_at
        self._pending_config = None
        self._rebuild_at = float("inf")
        last_crossed = (self._filt.next_rotation
                        - self._filt.config.rotation_interval)
        boundary = max(target, last_crossed) if target != float("inf") \
            else last_crossed
        old_grace = self._filt.config.expiry_timer
        old = self._filt
        self._filt = self._build_filter(new_config, boundary)
        # Marks in the old geometry are unreadable by the new one; open a
        # warm-up grace window as a restart would, so established flows'
        # inbound packets are not mass-dropped.
        self._filt.begin_warmup(boundary + old_grace)
        self._filter_config = new_config
        self._m.reloads["rebuild"].inc()
        if self._scheduler is not None:
            self._scheduler._filt = self._filt
        if hasattr(old, "close"):
            old.close()

    # -- introspection --------------------------------------------------------

    def describe(self) -> dict:
        """The FT_CONFIG payload: enough to build this filter's offline twin."""
        cfg = self._filter_config
        return {
            "filter": {
                "order": cfg.order,
                "num_vectors": cfg.num_vectors,
                "num_hashes": cfg.num_hashes,
                "rotation_interval": cfg.rotation_interval,
                "seed": cfg.seed,
                "fail_policy": self._filt.fail_policy.value,
                "layers": cfg.layer_dicts(),
            },
            "protected": [str(net) for net in self.config.protected.networks],
            "clock": self.config.clock,
            "exact": self.config.exact,
            "backend": self.backend,
            "workers": self.config.resolved_workers,
            "backpressure": self.config.backpressure,
        }

    def health(self) -> dict:
        """The /healthz payload.

        Beyond liveness, this reports what a fleet health checker needs
        to make a failover decision: the fail policy that will judge this
        node's flows if it goes dark, whether the filter is degraded
        (down, verdicts from policy) or still in a warm-up grace window,
        how far the rotation schedule is lagging the clock (wall mode
        only — a stalled rotation loop shows up here before it shows up
        as bad verdicts), and the ingest queue's depth against its bound
        (backpressure imminence).
        """
        self._m.uptime.set(self.uptime())
        interval = self._filt.config.rotation_interval
        last_boundary = self._filt.next_rotation - interval
        if self._scheduler is not None:
            now_ft = self._scheduler.filter_now()
            rotation_lag = max(0.0, now_ft - self._filt.next_rotation)
            warming_up = self._filt.in_warmup(now_ft)
        else:
            # Packet clock: stream position is the last crossed boundary;
            # lag is meaningless when time only advances with traffic.
            rotation_lag = 0.0
            warming_up = self._filt.warmup_until > last_boundary
        pending = self._pending_config
        return {
            "status": "draining" if self._drained or self._draining
            else "serving",
            "uptime_seconds": self.uptime(),
            "connections_open": len(self._conns),
            "queue_frames": len(self._queue),
            "packets_total": self._m.packets_total.value,
            "rotations": self._filt.stats.rotations,
            "next_rotation": self._filt.next_rotation,
            "pending_rebuild": pending is not None,
            # Echo of an accepted-but-deferred geometry: a rolling
            # reconfig driver polls these to confirm a node took the new
            # config (and at which shared boundary) before moving on.
            "pending_geometry": _geometry_dict(pending) if pending else None,
            "pending_rebuild_at": (self._rebuild_at
                                   if pending is not None else None),
            "restored": bool(self.config.restore_path),
            "restored_arrivals": self._restored_arrivals,
            "fail_policy": self._filt.fail_policy.value,
            "degraded": self._filt.is_down,
            "warming_up": warming_up,
            "warmup_until": self._filt.warmup_until,
            "rotation_lag_seconds": rotation_lag,
            "ingest_queue_depth": len(self._queue),
            "ingest_queue_capacity": self.config.queue_frames,
            **self.describe(),
        }

    def uptime(self) -> float:
        return monotonic() - self._start_wall

    def snapshot_bytes(self) -> bytes:
        """The /snapshot payload (raises if the filter cannot snapshot)."""
        data = snapshot_to_bytes(self._filt)
        self._m.snapshots_total.inc()
        return data


def _geometry_dict(cfg: FilterConfig) -> dict:
    """The geometry half of a config (the fields a rebuild is keyed on)."""
    return {
        "order": cfg.order,
        "num_vectors": cfg.num_vectors,
        "num_hashes": cfg.num_hashes,
        "rotation_interval": cfg.rotation_interval,
        "seed": cfg.seed,
        "layers": cfg.layer_dicts(),
    }


def _parse_filter_config(data: dict) -> FilterConfig:
    """A :class:`FilterConfig` from the reload file's JSON object."""
    if not isinstance(data, dict):
        raise ValueError("reload config must be a JSON object")
    fields = dict(data)
    policy = fields.pop("fail_policy", None)
    known = {"order", "num_vectors", "num_hashes", "rotation_interval",
             "seed", "warmup_grace", "layers"}
    unknown = set(fields) - known
    if unknown:
        raise ValueError(f"unknown filter config fields: {sorted(unknown)}")
    if policy is not None:
        fields["fail_policy"] = FailPolicy(policy)
    return FilterConfig(**fields)
