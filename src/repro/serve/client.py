"""Client bindings for the serve protocol: sync and asyncio.

:class:`FilterClient` is the blocking client — a plain socket plus the
shared :class:`~repro.serve.protocol.FrameDecoder` — for scripts, tests,
and the CLI.  :class:`AsyncFilterClient` is the asyncio twin with the
same surface for use inside an event loop.  Both speak strictly
request/response-in-order, matching the daemon's ordered delivery:

- :meth:`~FilterClient.filter` — send one packet frame, wait for its
  verdict mask.
- :meth:`~FilterClient.filter_stream` — windowed pipelining: keep up to
  ``window`` packet frames in flight and yield verdict masks in order;
  this is what the replay driver uses to reach daemon-bound throughput
  instead of round-trip-bound throughput.
- :meth:`~FilterClient.ping` — opaque-token echo that doubles as a
  barrier (its pong arrives only after all earlier verdicts).
- :meth:`~FilterClient.config` — the daemon's self-description (filter
  geometry, protected networks, clock mode, backend) as a dict.
- :meth:`~FilterClient.goodbye` — orderly close.

Failure semantics are typed (:mod:`repro.serve.errors`): a server
``FT_ERROR`` frame raises :class:`ServerError` (fatal), a dead transport
raises :class:`~repro.serve.errors.ServeConnectionError` (transient,
carrying the endpoint and in-flight frame count), and every blocking wait
— connect, per-request receive, and the goodbye drain — is bounded by a
deadline that raises :class:`~repro.serve.errors.ServeTimeoutError`
instead of hanging on a wedged daemon.  ``connect`` optionally takes a
:class:`~repro.serve.retry.RetryPolicy` to retry refused/transient
connects with jittered exponential backoff; the fleet router leans on
this for failover-safe reconnects.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time
from collections import deque
from typing import Callable, Deque, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.net.packet import PacketArray
from repro.serve import protocol
from repro.serve.errors import (
    ServeConnectionError,
    ServeTimeoutError,
    ServerError,
)
from repro.serve.protocol import FrameDecoder, ProtocolError
from repro.serve.retry import (
    Deadline,
    RetryPolicy,
    async_call_with_retry,
    call_with_retry,
)

__all__ = ["AsyncFilterClient", "FilterClient", "ServerError"]

#: Default bound on any single blocking wait (connect, one response,
#: the whole goodbye drain).  Generous for a live daemon, finite for a
#: wedged one.
DEFAULT_TIMEOUT = 30.0

#: Response frame types that settle one outstanding request frame.
_RESPONSE_TYPES = frozenset({protocol.FT_VERDICTS, protocol.FT_PONG,
                             protocol.FT_CONFIG, protocol.FT_BYE})


def _expect(frame_type: int, expected: int) -> None:
    if frame_type == protocol.FT_ERROR:
        return  # caller raises with the body text
    if frame_type != expected:
        raise ProtocolError(
            f"expected frame type {expected:#x}, got {frame_type:#x}")


class FilterClient:
    """Blocking client for one daemon connection.

    Connect with ``FilterClient.connect(host, port)`` or
    ``FilterClient.connect_unix(path)``; use as a context manager for an
    orderly goodbye on exit.  ``request_timeout`` bounds each wait for a
    response frame (and the goodbye drain as a whole).
    """

    def __init__(self, sock: socket.socket,
                 max_frame: int = protocol.DEFAULT_MAX_FRAME,
                 *,
                 endpoint: Optional[str] = None,
                 request_timeout: Optional[float] = DEFAULT_TIMEOUT):
        self._sock = sock
        self._decoder = FrameDecoder(max_frame)
        self._frames: Deque[Tuple[int, bytes]] = deque()
        self._closed = False
        self.endpoint = endpoint
        self.request_timeout = request_timeout
        self._in_flight = 0
        sock.settimeout(request_timeout)

    @classmethod
    def connect(cls, host: str, port: int, *,
                timeout: Optional[float] = DEFAULT_TIMEOUT,
                request_timeout: Optional[float] = DEFAULT_TIMEOUT,
                retry: Optional[RetryPolicy] = None,
                max_frame: int = protocol.DEFAULT_MAX_FRAME) -> "FilterClient":
        endpoint = f"{host}:{port}"

        def attempt() -> socket.socket:
            try:
                sock = socket.create_connection((host, port), timeout=timeout)
            except socket.timeout as exc:
                raise ServeTimeoutError(
                    "connect timed out", endpoint=endpoint) from exc
            except OSError as exc:
                raise ServeConnectionError(
                    f"connect failed: {exc}", endpoint=endpoint) from exc
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError as exc:  # reset raced the handshake
                sock.close()
                raise ServeConnectionError(
                    f"connection died during setup: {exc}",
                    endpoint=endpoint) from exc
            return sock

        sock = attempt() if retry is None else \
            call_with_retry(attempt, policy=retry)
        return cls(sock, max_frame, endpoint=endpoint,
                   request_timeout=request_timeout)

    @classmethod
    def connect_unix(cls, path: str, *,
                     timeout: Optional[float] = DEFAULT_TIMEOUT,
                     request_timeout: Optional[float] = DEFAULT_TIMEOUT,
                     retry: Optional[RetryPolicy] = None,
                     max_frame: int = protocol.DEFAULT_MAX_FRAME,
                     ) -> "FilterClient":
        endpoint = f"unix:{path}"

        def attempt() -> socket.socket:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            try:
                sock.connect(path)
            except socket.timeout as exc:
                sock.close()
                raise ServeTimeoutError(
                    "connect timed out", endpoint=endpoint) from exc
            except OSError as exc:
                sock.close()
                raise ServeConnectionError(
                    f"connect failed: {exc}", endpoint=endpoint) from exc
            return sock

        sock = attempt() if retry is None else \
            call_with_retry(attempt, policy=retry)
        return cls(sock, max_frame, endpoint=endpoint,
                   request_timeout=request_timeout)

    def __enter__(self) -> "FilterClient":
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            if not self._closed and exc_info[0] is None:
                self.goodbye()
        finally:
            self.close()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._sock.close()

    # -- frame plumbing -------------------------------------------------------

    def _send(self, data: bytes) -> None:
        try:
            self._sock.sendall(data)
        except socket.timeout as exc:
            raise self._timeout("send timed out") from exc
        except ConnectionError as exc:
            raise self._dead(f"send failed: {exc}") from exc

    def _dead(self, message: str) -> ServeConnectionError:
        return ServeConnectionError(
            message, endpoint=self.endpoint,
            frames_in_flight=self._in_flight,
            bytes_buffered=self._decoder.pending_bytes)

    def _timeout(self, message: str) -> ServeTimeoutError:
        return ServeTimeoutError(
            message, endpoint=self.endpoint,
            frames_in_flight=self._in_flight,
            bytes_buffered=self._decoder.pending_bytes)

    def _recv_frame(self) -> Tuple[int, bytes]:
        while not self._frames:
            try:
                chunk = self._sock.recv(1 << 16)
            except socket.timeout as exc:
                raise self._timeout("timed out waiting for a response "
                                    "frame") from exc
            except ConnectionError as exc:
                raise self._dead(f"connection failed: {exc}") from exc
            if not chunk:
                self._decoder.finish()
                raise self._dead("daemon closed the connection")
            self._frames.extend(self._decoder.feed(chunk))
        frame_type, body = self._frames.popleft()
        if frame_type in _RESPONSE_TYPES and self._in_flight > 0:
            self._in_flight -= 1
        return frame_type, body

    def _recv_expect(self, expected: int) -> bytes:
        frame_type, body = self._recv_frame()
        if frame_type == protocol.FT_ERROR:
            raise ServerError(body.decode("utf-8", "replace"))
        _expect(frame_type, expected)
        return body

    # -- protocol surface -----------------------------------------------------

    def filter(self, packets: PacketArray) -> np.ndarray:
        """One packet frame in, its boolean PASS mask out."""
        self._in_flight += 1
        self._send(protocol.encode_packets(packets))
        return protocol.decode_verdicts(
            self._recv_expect(protocol.FT_VERDICTS))

    def filter_stream(self, batches: Iterable[PacketArray], *,
                      window: int = 8) -> Iterator[np.ndarray]:
        """Pipeline ``batches`` with up to ``window`` frames in flight.

        Yields one verdict mask per input batch, in input order.  The
        daemon's ordered delivery guarantees response *i* pairs with
        request *i*, so no sequence numbers are needed on the wire.
        """
        if window < 1:
            raise ValueError("window must be at least 1")
        in_flight = 0
        iterator = iter(batches)
        exhausted = False
        while not exhausted or in_flight:
            while not exhausted and in_flight < window:
                try:
                    batch = next(iterator)
                except StopIteration:
                    exhausted = True
                    break
                self._in_flight += 1
                self._send(protocol.encode_packets(batch))
                in_flight += 1
            if in_flight:
                yield protocol.decode_verdicts(
                    self._recv_expect(protocol.FT_VERDICTS))
                in_flight -= 1

    def ping(self, token: bytes = b"") -> bytes:
        """Echo ``token`` — and barrier on all previously sent frames."""
        self._in_flight += 1
        self._send(protocol.encode_frame(protocol.FT_PING, token))
        return self._recv_expect(protocol.FT_PONG)

    def config(self) -> dict:
        """The daemon's FT_CONFIG self-description."""
        self._in_flight += 1
        self._send(protocol.encode_frame(protocol.FT_CONFIG_REQ))
        return json.loads(self._recv_expect(protocol.FT_CONFIG))

    def goodbye(self, timeout: Optional[float] = None) -> None:
        """Orderly close: drain pending responses through FT_BYE.

        The whole drain — however many verdicts are still in flight — must
        finish within ``timeout`` (default: ``request_timeout``), so a
        daemon that wedges mid-goodbye raises instead of hanging forever.
        """
        if timeout is None:
            timeout = self.request_timeout
        deadline = Deadline(timeout, clock=time.monotonic)
        self._in_flight += 1
        self._send(protocol.encode_frame(protocol.FT_GOODBYE))
        while True:
            if deadline.expired:
                raise self._timeout("goodbye drain deadline expired")
            self._sock.settimeout(deadline.clamp(self.request_timeout))
            frame_type, body = self._recv_frame()
            if frame_type == protocol.FT_BYE:
                return
            if frame_type == protocol.FT_ERROR:
                raise ServerError(body.decode("utf-8", "replace"))


class AsyncFilterClient:
    """Asyncio client with the same surface as :class:`FilterClient`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 max_frame: int = protocol.DEFAULT_MAX_FRAME,
                 *,
                 endpoint: Optional[str] = None,
                 request_timeout: Optional[float] = DEFAULT_TIMEOUT):
        self._reader = reader
        self._writer = writer
        self._decoder = FrameDecoder(max_frame)
        self._frames: Deque[Tuple[int, bytes]] = deque()
        self.endpoint = endpoint
        self.request_timeout = request_timeout
        self._in_flight = 0

    @classmethod
    async def connect(cls, host: str, port: int, *,
                      timeout: Optional[float] = DEFAULT_TIMEOUT,
                      request_timeout: Optional[float] = DEFAULT_TIMEOUT,
                      retry: Optional[RetryPolicy] = None,
                      max_frame: int = protocol.DEFAULT_MAX_FRAME,
                      ) -> "AsyncFilterClient":
        endpoint = f"{host}:{port}"

        async def attempt():
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port), timeout)
            except asyncio.TimeoutError as exc:
                raise ServeTimeoutError(
                    "connect timed out", endpoint=endpoint) from exc
            except OSError as exc:
                raise ServeConnectionError(
                    f"connect failed: {exc}", endpoint=endpoint) from exc
            sock = writer.get_extra_info("socket")
            if sock is not None:
                try:
                    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                except OSError as exc:  # reset raced the handshake
                    writer.close()
                    raise ServeConnectionError(
                        f"connection died during setup: {exc}",
                        endpoint=endpoint) from exc
            return reader, writer

        reader, writer = await attempt() if retry is None else \
            await async_call_with_retry(attempt, policy=retry)
        return cls(reader, writer, max_frame, endpoint=endpoint,
                   request_timeout=request_timeout)

    @classmethod
    async def connect_unix(cls, path: str, *,
                           timeout: Optional[float] = DEFAULT_TIMEOUT,
                           request_timeout: Optional[float] = DEFAULT_TIMEOUT,
                           retry: Optional[RetryPolicy] = None,
                           max_frame: int = protocol.DEFAULT_MAX_FRAME,
                           ) -> "AsyncFilterClient":
        endpoint = f"unix:{path}"

        async def attempt():
            try:
                return await asyncio.wait_for(
                    asyncio.open_unix_connection(path), timeout)
            except asyncio.TimeoutError as exc:
                raise ServeTimeoutError(
                    "connect timed out", endpoint=endpoint) from exc
            except OSError as exc:
                raise ServeConnectionError(
                    f"connect failed: {exc}", endpoint=endpoint) from exc

        reader, writer = await attempt() if retry is None else \
            await async_call_with_retry(attempt, policy=retry)
        return cls(reader, writer, max_frame, endpoint=endpoint,
                   request_timeout=request_timeout)

    async def __aenter__(self) -> "AsyncFilterClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        try:
            if exc_info[0] is None:
                await self.goodbye()
        finally:
            await self.close()

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    # -- frame plumbing -------------------------------------------------------

    def _dead(self, message: str) -> ServeConnectionError:
        return ServeConnectionError(
            message, endpoint=self.endpoint,
            frames_in_flight=self._in_flight,
            bytes_buffered=self._decoder.pending_bytes)

    def _timeout(self, message: str) -> ServeTimeoutError:
        return ServeTimeoutError(
            message, endpoint=self.endpoint,
            frames_in_flight=self._in_flight,
            bytes_buffered=self._decoder.pending_bytes)

    async def _recv_frame(self,
                          timeout: Optional[float] = None,
                          ) -> Tuple[int, bytes]:
        if timeout is None:
            timeout = self.request_timeout
        while not self._frames:
            try:
                chunk = await asyncio.wait_for(
                    self._reader.read(1 << 16), timeout)
            except asyncio.TimeoutError as exc:
                raise self._timeout("timed out waiting for a response "
                                    "frame") from exc
            except ConnectionError as exc:
                raise self._dead(f"connection failed: {exc}") from exc
            if not chunk:
                self._decoder.finish()
                raise self._dead("daemon closed the connection")
            self._frames.extend(self._decoder.feed(chunk))
        frame_type, body = self._frames.popleft()
        if frame_type in _RESPONSE_TYPES and self._in_flight > 0:
            self._in_flight -= 1
        return frame_type, body

    async def _recv_expect(self, expected: int,
                           timeout: Optional[float] = None) -> bytes:
        frame_type, body = await self._recv_frame(timeout)
        if frame_type == protocol.FT_ERROR:
            raise ServerError(body.decode("utf-8", "replace"))
        _expect(frame_type, expected)
        return body

    async def _drain(self) -> None:
        try:
            await self._writer.drain()
        except ConnectionError as exc:
            raise self._dead(f"send failed: {exc}") from exc

    # -- protocol surface -----------------------------------------------------

    async def filter(self, packets: PacketArray) -> np.ndarray:
        self._in_flight += 1
        self._writer.write(protocol.encode_packets(packets))
        await self._drain()
        return protocol.decode_verdicts(
            await self._recv_expect(protocol.FT_VERDICTS))

    async def filter_stream(self, batches: List[PacketArray], *,
                            window: int = 8) -> List[np.ndarray]:
        """Pipeline ``batches`` with up to ``window`` in flight; all masks."""
        if window < 1:
            raise ValueError("window must be at least 1")
        verdicts: List[np.ndarray] = []
        in_flight = 0
        index = 0
        while index < len(batches) or in_flight:
            while index < len(batches) and in_flight < window:
                self._in_flight += 1
                self._writer.write(protocol.encode_packets(batches[index]))
                index += 1
                in_flight += 1
            await self._drain()
            if in_flight:
                verdicts.append(protocol.decode_verdicts(
                    await self._recv_expect(protocol.FT_VERDICTS)))
                in_flight -= 1
        return verdicts

    async def ping(self, token: bytes = b"") -> bytes:
        self._in_flight += 1
        self._writer.write(protocol.encode_frame(protocol.FT_PING, token))
        await self._drain()
        return await self._recv_expect(protocol.FT_PONG)

    async def config(self) -> dict:
        self._in_flight += 1
        self._writer.write(protocol.encode_frame(protocol.FT_CONFIG_REQ))
        await self._drain()
        return json.loads(await self._recv_expect(protocol.FT_CONFIG))

    async def goodbye(self, timeout: Optional[float] = None) -> None:
        """Orderly close with a deadline over the whole response drain."""
        if timeout is None:
            timeout = self.request_timeout
        deadline = Deadline(timeout, clock=time.monotonic)
        self._in_flight += 1
        self._writer.write(protocol.encode_frame(protocol.FT_GOODBYE))
        await self._drain()
        while True:
            if deadline.expired:
                raise self._timeout("goodbye drain deadline expired")
            frame_type, body = await self._recv_frame(
                deadline.clamp(self.request_timeout))
            if frame_type == protocol.FT_BYE:
                return
            if frame_type == protocol.FT_ERROR:
                raise ServerError(body.decode("utf-8", "replace"))
