"""Client bindings for the serve protocol: sync and asyncio.

:class:`FilterClient` is the blocking client — a plain socket plus the
shared :class:`~repro.serve.protocol.FrameDecoder` — for scripts, tests,
and the CLI.  :class:`AsyncFilterClient` is the asyncio twin with the
same surface for use inside an event loop.  Both speak strictly
request/response-in-order, matching the daemon's ordered delivery:

- :meth:`~FilterClient.filter` — send one packet frame, wait for its
  verdict mask.
- :meth:`~FilterClient.filter_stream` — windowed pipelining: keep up to
  ``window`` packet frames in flight and yield verdict masks in order;
  this is what the replay driver uses to reach daemon-bound throughput
  instead of round-trip-bound throughput.
- :meth:`~FilterClient.ping` — opaque-token echo that doubles as a
  barrier (its pong arrives only after all earlier verdicts).
- :meth:`~FilterClient.config` — the daemon's self-description (filter
  geometry, protected networks, clock mode, backend) as a dict.
- :meth:`~FilterClient.goodbye` — orderly close.

A server ``FT_ERROR`` frame raises :class:`ServerError` carrying the
daemon's diagnostic.
"""

from __future__ import annotations

import asyncio
import json
import socket
from collections import deque
from typing import Deque, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.net.packet import PacketArray
from repro.serve import protocol
from repro.serve.protocol import FrameDecoder, ProtocolError

__all__ = ["AsyncFilterClient", "FilterClient", "ServerError"]


class ServerError(RuntimeError):
    """The daemon answered with an FT_ERROR frame."""


def _expect(frame_type: int, expected: int) -> None:
    if frame_type == protocol.FT_ERROR:
        return  # caller raises with the body text
    if frame_type != expected:
        raise ProtocolError(
            f"expected frame type {expected:#x}, got {frame_type:#x}")


class FilterClient:
    """Blocking client for one daemon connection.

    Connect with ``FilterClient.connect(host, port)`` or
    ``FilterClient.connect_unix(path)``; use as a context manager for an
    orderly goodbye on exit.
    """

    def __init__(self, sock: socket.socket,
                 max_frame: int = protocol.DEFAULT_MAX_FRAME):
        self._sock = sock
        self._decoder = FrameDecoder(max_frame)
        self._frames: Deque[Tuple[int, bytes]] = deque()
        self._closed = False

    @classmethod
    def connect(cls, host: str, port: int, *,
                timeout: Optional[float] = 30.0,
                max_frame: int = protocol.DEFAULT_MAX_FRAME) -> "FilterClient":
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return cls(sock, max_frame)

    @classmethod
    def connect_unix(cls, path: str, *,
                     timeout: Optional[float] = 30.0,
                     max_frame: int = protocol.DEFAULT_MAX_FRAME,
                     ) -> "FilterClient":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(path)
        return cls(sock, max_frame)

    def __enter__(self) -> "FilterClient":
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            if not self._closed and exc_info[0] is None:
                self.goodbye()
        finally:
            self.close()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._sock.close()

    # -- frame plumbing -------------------------------------------------------

    def _send(self, data: bytes) -> None:
        self._sock.sendall(data)

    def _recv_frame(self) -> Tuple[int, bytes]:
        while not self._frames:
            chunk = self._sock.recv(1 << 16)
            if not chunk:
                self._decoder.finish()
                raise ConnectionError("daemon closed the connection")
            self._frames.extend(self._decoder.feed(chunk))
        return self._frames.popleft()

    def _recv_expect(self, expected: int) -> bytes:
        frame_type, body = self._recv_frame()
        if frame_type == protocol.FT_ERROR:
            raise ServerError(body.decode("utf-8", "replace"))
        _expect(frame_type, expected)
        return body

    # -- protocol surface -----------------------------------------------------

    def filter(self, packets: PacketArray) -> np.ndarray:
        """One packet frame in, its boolean PASS mask out."""
        self._send(protocol.encode_packets(packets))
        return protocol.decode_verdicts(
            self._recv_expect(protocol.FT_VERDICTS))

    def filter_stream(self, batches: Iterable[PacketArray], *,
                      window: int = 8) -> Iterator[np.ndarray]:
        """Pipeline ``batches`` with up to ``window`` frames in flight.

        Yields one verdict mask per input batch, in input order.  The
        daemon's ordered delivery guarantees response *i* pairs with
        request *i*, so no sequence numbers are needed on the wire.
        """
        if window < 1:
            raise ValueError("window must be at least 1")
        in_flight = 0
        iterator = iter(batches)
        exhausted = False
        while not exhausted or in_flight:
            while not exhausted and in_flight < window:
                try:
                    batch = next(iterator)
                except StopIteration:
                    exhausted = True
                    break
                self._send(protocol.encode_packets(batch))
                in_flight += 1
            if in_flight:
                yield protocol.decode_verdicts(
                    self._recv_expect(protocol.FT_VERDICTS))
                in_flight -= 1

    def ping(self, token: bytes = b"") -> bytes:
        """Echo ``token`` — and barrier on all previously sent frames."""
        self._send(protocol.encode_frame(protocol.FT_PING, token))
        return self._recv_expect(protocol.FT_PONG)

    def config(self) -> dict:
        """The daemon's FT_CONFIG self-description."""
        self._send(protocol.encode_frame(protocol.FT_CONFIG_REQ))
        return json.loads(self._recv_expect(protocol.FT_CONFIG))

    def goodbye(self) -> None:
        """Orderly close: drain pending responses through FT_BYE."""
        self._send(protocol.encode_frame(protocol.FT_GOODBYE))
        while True:
            frame_type, body = self._recv_frame()
            if frame_type == protocol.FT_BYE:
                return
            if frame_type == protocol.FT_ERROR:
                raise ServerError(body.decode("utf-8", "replace"))


class AsyncFilterClient:
    """Asyncio client with the same surface as :class:`FilterClient`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 max_frame: int = protocol.DEFAULT_MAX_FRAME):
        self._reader = reader
        self._writer = writer
        self._decoder = FrameDecoder(max_frame)
        self._frames: Deque[Tuple[int, bytes]] = deque()

    @classmethod
    async def connect(cls, host: str, port: int, *,
                      max_frame: int = protocol.DEFAULT_MAX_FRAME,
                      ) -> "AsyncFilterClient":
        reader, writer = await asyncio.open_connection(host, port)
        sock = writer.get_extra_info("socket")
        if sock is not None:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return cls(reader, writer, max_frame)

    @classmethod
    async def connect_unix(cls, path: str, *,
                           max_frame: int = protocol.DEFAULT_MAX_FRAME,
                           ) -> "AsyncFilterClient":
        reader, writer = await asyncio.open_unix_connection(path)
        return cls(reader, writer, max_frame)

    async def __aenter__(self) -> "AsyncFilterClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        try:
            if exc_info[0] is None:
                await self.goodbye()
        finally:
            await self.close()

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    # -- frame plumbing -------------------------------------------------------

    async def _recv_frame(self) -> Tuple[int, bytes]:
        while not self._frames:
            chunk = await self._reader.read(1 << 16)
            if not chunk:
                self._decoder.finish()
                raise ConnectionError("daemon closed the connection")
            self._frames.extend(self._decoder.feed(chunk))
        return self._frames.popleft()

    async def _recv_expect(self, expected: int) -> bytes:
        frame_type, body = await self._recv_frame()
        if frame_type == protocol.FT_ERROR:
            raise ServerError(body.decode("utf-8", "replace"))
        _expect(frame_type, expected)
        return body

    # -- protocol surface -----------------------------------------------------

    async def filter(self, packets: PacketArray) -> np.ndarray:
        self._writer.write(protocol.encode_packets(packets))
        await self._writer.drain()
        return protocol.decode_verdicts(
            await self._recv_expect(protocol.FT_VERDICTS))

    async def filter_stream(self, batches: List[PacketArray], *,
                            window: int = 8) -> List[np.ndarray]:
        """Pipeline ``batches`` with up to ``window`` in flight; all masks."""
        if window < 1:
            raise ValueError("window must be at least 1")
        verdicts: List[np.ndarray] = []
        in_flight = 0
        index = 0
        while index < len(batches) or in_flight:
            while index < len(batches) and in_flight < window:
                self._writer.write(protocol.encode_packets(batches[index]))
                index += 1
                in_flight += 1
            await self._writer.drain()
            if in_flight:
                verdicts.append(protocol.decode_verdicts(
                    await self._recv_expect(protocol.FT_VERDICTS)))
                in_flight -= 1
        return verdicts

    async def ping(self, token: bytes = b"") -> bytes:
        self._writer.write(protocol.encode_frame(protocol.FT_PING, token))
        await self._writer.drain()
        return await self._recv_expect(protocol.FT_PONG)

    async def config(self) -> dict:
        self._writer.write(protocol.encode_frame(protocol.FT_CONFIG_REQ))
        await self._writer.drain()
        return json.loads(await self._recv_expect(protocol.FT_CONFIG))

    async def goodbye(self) -> None:
        self._writer.write(protocol.encode_frame(protocol.FT_GOODBYE))
        await self._writer.drain()
        while True:
            frame_type, body = await self._recv_frame()
            if frame_type == protocol.FT_BYE:
                return
            if frame_type == protocol.FT_ERROR:
                raise ServerError(body.decode("utf-8", "replace"))
