"""repro.serve — the online filtering daemon and its protocol.

Everything the offline harness does in batch, this package does live:
packets stream in over a socket, verdicts stream back in order, rotations
fire on the wall clock, and state survives restarts through checksummed
snapshots.  See :mod:`repro.serve.daemon` for the architecture and
``docs/serving.md`` for the wire protocol and operations runbook.
"""

from repro.serve.client import AsyncFilterClient, FilterClient
from repro.serve.daemon import FilterDaemon, ServeConfig
from repro.serve.errors import (
    ServeConnectionError,
    ServeError,
    ServeTimeoutError,
    ServerError,
    is_transient,
)
from repro.serve.protocol import (
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    ProtocolError,
    decode_packets,
    decode_verdicts,
    encode_frame,
    encode_packets,
    encode_verdicts,
)
from repro.serve.retry import (
    Deadline,
    RetryPolicy,
    async_call_with_retry,
    call_with_retry,
)
from repro.serve.scheduler import RotationScheduler
from repro.serve.state import (
    materialize_serial,
    restore_serve_filter,
    snapshot_to_bytes,
    write_snapshot,
)

__all__ = [
    "AsyncFilterClient",
    "DEFAULT_MAX_FRAME",
    "Deadline",
    "FilterClient",
    "FilterDaemon",
    "FrameDecoder",
    "ProtocolError",
    "RetryPolicy",
    "RotationScheduler",
    "ServeConfig",
    "ServeConnectionError",
    "ServeError",
    "ServeTimeoutError",
    "ServerError",
    "async_call_with_retry",
    "call_with_retry",
    "is_transient",
    "decode_packets",
    "decode_verdicts",
    "encode_frame",
    "encode_packets",
    "encode_verdicts",
    "materialize_serial",
    "restore_serve_filter",
    "snapshot_to_bytes",
    "write_snapshot",
]
