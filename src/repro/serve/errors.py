"""Typed errors for the serve clients: transient vs fatal, by class.

Callers used to get a bare ``ConnectionError("daemon closed the
connection")`` for a mid-stream disconnect and a ``socket.timeout`` for a
wedged daemon — indistinguishable from each other (and from programming
errors) without string matching.  This module gives every client-side
failure a home in one hierarchy rooted at :class:`ServeError`, with a
``transient`` class attribute that retry layers (``repro.serve.retry``,
``repro.fleet``) branch on:

- :class:`ServerError` — the daemon answered an ``FT_ERROR`` frame.  The
  connection is still orderly; retrying the same request would fail the
  same way.  **Fatal.**
- :class:`ServeConnectionError` — the transport died (peer closed, reset,
  refused).  Carries the endpoint, the number of request frames still
  awaiting a response, and the bytes of any partial frame left in the
  decoder, so failover code knows exactly how much work is in limbo.
  Subclasses :class:`ConnectionError`, so pre-existing ``except
  ConnectionError`` handlers keep working.  **Transient.**
- :class:`ServeTimeoutError` — a connect, request, or drain deadline
  expired.  Subclasses :class:`ServeConnectionError` (and thus stays
  transient): a timeout is indistinguishable from a dead peer until a
  reconnect proves otherwise.

:class:`~repro.serve.protocol.ProtocolError` (malformed framing) remains a
``ValueError`` — a framing bug is never cured by retrying.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ServeConnectionError",
    "ServeError",
    "ServeTimeoutError",
    "ServerError",
    "is_transient",
]


class ServeError(RuntimeError):
    """Base class for every serve-client failure."""

    #: Whether a retry against the same (or a reconnected) endpoint can
    #: plausibly succeed.  Class-level so ``except`` blocks and retry
    #: policies can branch without instantiating anything.
    transient = False


class ServerError(ServeError):
    """The daemon answered with an FT_ERROR frame (fatal: same request,
    same answer)."""


class ServeConnectionError(ServeError, ConnectionError):
    """The transport to the daemon died mid-conversation (transient).

    ``frames_in_flight`` counts request frames sent but not yet answered
    when the connection died — the work a failover layer must either
    resend or answer from policy.  ``bytes_buffered`` is the size of the
    partial response frame stranded in the decoder, if any.
    """

    transient = True

    def __init__(self, message: str, *, endpoint: Optional[str] = None,
                 frames_in_flight: int = 0, bytes_buffered: int = 0):
        detail = []
        if endpoint:
            detail.append(f"endpoint={endpoint}")
        if frames_in_flight:
            detail.append(f"frames_in_flight={frames_in_flight}")
        if bytes_buffered:
            detail.append(f"bytes_buffered={bytes_buffered}")
        if detail:
            message = f"{message} ({', '.join(detail)})"
        super().__init__(message)
        self.endpoint = endpoint
        self.frames_in_flight = frames_in_flight
        self.bytes_buffered = bytes_buffered


class ServeTimeoutError(ServeConnectionError, TimeoutError):
    """A connect, per-request, or drain deadline expired (transient)."""


def is_transient(exc: BaseException) -> bool:
    """Whether ``exc`` is worth retrying against a reconnect.

    Typed serve errors answer from their ``transient`` attribute; raw
    ``ConnectionError``/``TimeoutError``/``OSError`` from layers below the
    client (the socket module, asyncio transports) count as transient too.
    """
    if isinstance(exc, ServeError):
        return exc.transient
    return isinstance(exc, (ConnectionError, TimeoutError, OSError))
