"""Snapshot plumbing between the daemon and both filter backends.

The checkpoint format is the checksummed snapshot v2 of
:mod:`repro.core.persistence`; these helpers adapt it to the three shapes a
daemon runs: a serial :class:`~repro.core.bitmap_filter.BitmapFilter`, a
:class:`~repro.parallel.sharded.ShardedBitmapFilter` whose state lives in
worker replicas, and a :class:`~repro.parallel.shared.SharedBitmapFilter`
whose state lives in one shared-memory segment (being a ``BitmapFilter``
subclass with live local state, it snapshots directly).

- :func:`materialize_serial` — a serial filter holding a *copy* of any
  filter's current state (for a sharded filter: worker 0's replica plus
  the ownership-merged counters; a shared filter already presents serial
  state and is returned as-is).
- :func:`snapshot_to_bytes` / :func:`write_snapshot` — serve a live
  filter's checkpoint over HTTP or persist the SIGTERM final snapshot.
- :func:`restore_serve_filter` — warm-start either backend from a
  snapshot file, loading the bit vectors into every replica.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.core.bitmap_filter import BitmapFilter
from repro.core.filter_api import build_filter, deprecated_alias
from repro.core.hybrid import HybridVerifiedFilter
from repro.core.persistence import save_filter
from repro.telemetry.registry import MetricsRegistry

__all__ = [
    "materialize_serial",
    "restore_serve_filter",
    "snapshot_to_bytes",
    "write_snapshot",
]

AnyBackendFilter = Union[BitmapFilter, "ShardedBitmapFilter"]  # noqa: F821


def materialize_serial(filt: AnyBackendFilter) -> BitmapFilter:
    """A serial filter carrying a copy of ``filt``'s complete state.

    A serial filter is returned as-is (no copy).  For a sharded filter the
    replicated bitmap (worker 0's, identical to every replica), the
    rotation schedule, and the merged counters are copied into a fresh
    serial shell — the canonical single-process view that snapshots
    persist.  A hybrid stack materializes its inner filter and re-wraps it
    with a copy of the verification table.
    """
    if isinstance(filt, HybridVerifiedFilter):
        inner = materialize_serial(filt.inner)
        if inner is filt.inner:
            return filt
        clone = HybridVerifiedFilter(inner, filt.spec, table=filt.table.copy())
        clone.confirmed = filt.confirmed
        clone.denied = filt.denied
        return clone
    if isinstance(filt, BitmapFilter):
        return filt
    serial = BitmapFilter(filt.config, filt.protected,
                          fail_policy=filt.fail_policy)
    bitmap = filt.bitmap  # synced copy of the replicated state
    vectors = np.stack([vec.as_numpy() for vec in bitmap.vectors])
    serial.apply_snapshot_state(
        vectors,
        current_index=bitmap.current_index,
        bitmap_rotations=bitmap.rotations,
        next_rotation=filt.next_rotation,
        stats=filt.stats.as_dict(),
    )
    return serial


def snapshot_to_bytes(filt: AnyBackendFilter) -> bytes:
    """The snapshot-v2 archive of ``filt``'s current state, in memory."""
    buffer = io.BytesIO()
    save_filter(materialize_serial(filt), buffer)
    return buffer.getvalue()


def write_snapshot(filt: AnyBackendFilter, path: Union[str, Path]) -> Path:
    """Persist ``filt``'s current state as a snapshot-v2 file."""
    path = Path(path)
    path.write_bytes(snapshot_to_bytes(filt))
    return path


def restore_serve_filter(
    path: Union[str, Path],
    *,
    backend: Optional[str] = None,
    workers: int = 0,
    telemetry: Optional[MetricsRegistry] = None,
    mp_context: Optional[str] = None,
):
    """Deprecated alias for ``build_filter(snapshot=path, ...)``.

    Keeps the historical default: ``backend=None`` means ``workers > 1`` ⇒
    sharded, else serial.  Restoring performs no rotation catch-up by
    itself: the daemon's clock source decides what "now" is.
    """
    deprecated_alias("repro.serve.state.restore_serve_filter",
                     "repro.core.filter_api.build_filter(snapshot=...)",
                     note="the unified filter-construction API")
    if backend is None:
        backend = "sharded" if workers and workers > 1 else "serial"
    return build_filter(snapshot=path, backend=backend, workers=workers,
                        telemetry=telemetry, mp_context=mp_context)
