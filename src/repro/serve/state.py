"""Snapshot plumbing between the daemon and both filter backends.

The checkpoint format is the checksummed snapshot v2 of
:mod:`repro.core.persistence`; these helpers adapt it to the three shapes a
daemon runs: a serial :class:`~repro.core.bitmap_filter.BitmapFilter`, a
:class:`~repro.parallel.sharded.ShardedBitmapFilter` whose state lives in
worker replicas, and a :class:`~repro.parallel.shared.SharedBitmapFilter`
whose state lives in one shared-memory segment (being a ``BitmapFilter``
subclass with live local state, it snapshots directly).

- :func:`materialize_serial` — a serial filter holding a *copy* of any
  filter's current state (for a sharded filter: worker 0's replica plus
  the ownership-merged counters; a shared filter already presents serial
  state and is returned as-is).
- :func:`snapshot_to_bytes` / :func:`write_snapshot` — serve a live
  filter's checkpoint over HTTP or persist the SIGTERM final snapshot.
- :func:`restore_serve_filter` — warm-start either backend from a
  snapshot file, loading the bit vectors into every replica.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.core.bitmap_filter import BitmapFilter
from repro.core.persistence import load_filter, save_filter
from repro.telemetry.registry import MetricsRegistry

__all__ = [
    "materialize_serial",
    "restore_serve_filter",
    "snapshot_to_bytes",
    "write_snapshot",
]

AnyBackendFilter = Union[BitmapFilter, "ShardedBitmapFilter"]  # noqa: F821


def materialize_serial(filt: AnyBackendFilter) -> BitmapFilter:
    """A serial filter carrying a copy of ``filt``'s complete state.

    A serial filter is returned as-is (no copy).  For a sharded filter the
    replicated bitmap (worker 0's, identical to every replica), the
    rotation schedule, and the merged counters are copied into a fresh
    serial shell — the canonical single-process view that snapshots
    persist.
    """
    if isinstance(filt, BitmapFilter):
        return filt
    serial = BitmapFilter(filt.config, filt.protected,
                          fail_policy=filt.fail_policy)
    bitmap = filt.bitmap  # synced copy of the replicated state
    vectors = np.stack([vec.as_numpy() for vec in bitmap.vectors])
    serial.apply_snapshot_state(
        vectors,
        current_index=bitmap.current_index,
        bitmap_rotations=bitmap.rotations,
        next_rotation=filt.next_rotation,
        stats=filt.stats.as_dict(),
    )
    return serial


def snapshot_to_bytes(filt: AnyBackendFilter) -> bytes:
    """The snapshot-v2 archive of ``filt``'s current state, in memory."""
    buffer = io.BytesIO()
    save_filter(materialize_serial(filt), buffer)
    return buffer.getvalue()


def write_snapshot(filt: AnyBackendFilter, path: Union[str, Path]) -> Path:
    """Persist ``filt``'s current state as a snapshot-v2 file."""
    path = Path(path)
    path.write_bytes(snapshot_to_bytes(filt))
    return path


def restore_serve_filter(
    path: Union[str, Path],
    *,
    backend: Optional[str] = None,
    workers: int = 0,
    telemetry: Optional[MetricsRegistry] = None,
    mp_context: Optional[str] = None,
):
    """Warm-start a daemon filter from a snapshot file.

    ``backend`` selects the shape the state is loaded into: ``"serial"``
    rebuilds a serial filter (re-created under the daemon's telemetry
    registry, then loaded with the snapshot state so the instruments are
    live), ``"sharded"`` boots a replica pool and broadcasts the state
    into every replica via ``apply_snapshot_state``, and ``"shared"``
    boots a shared-memory filter and writes the state into the one shared
    segment under its seqlock.  ``backend=None`` keeps the historical
    rule: ``workers > 1`` means sharded, else serial.

    Restoring performs no rotation catch-up by itself: the daemon's clock
    source decides what "now" is (the packet clock resumes wherever the
    stream does; the wall-clock scheduler advances on its first boundary).
    """
    if backend is None:
        backend = "sharded" if workers and workers > 1 else "serial"
    if backend not in ("serial", "sharded", "shared"):
        raise ValueError(f"unknown backend {backend!r}")
    loaded = load_filter(path)  # validates geometry + vector checksum
    vectors = np.stack([vec.as_numpy() for vec in loaded.bitmap.vectors])
    state = dict(
        current_index=loaded.bitmap.current_index,
        bitmap_rotations=loaded.bitmap.rotations,
        next_rotation=loaded.next_rotation,
        stats=loaded.stats.as_dict(),
    )
    if backend in ("sharded", "shared"):
        from repro.parallel.shared import SharedBitmapFilter
        from repro.parallel.sharded import ShardedBitmapFilter

        cls = SharedBitmapFilter if backend == "shared" else ShardedBitmapFilter
        filt = cls(
            loaded.config,
            loaded.protected,
            num_workers=workers if workers > 1 else 2,
            start_time=loaded.next_rotation - loaded.config.rotation_interval,
            fail_policy=loaded.fail_policy,
            telemetry=telemetry,
            mp_context=mp_context,
        )
        filt.apply_snapshot_state(vectors, **state)
        return filt
    filt = BitmapFilter(loaded.config, loaded.protected,
                        fail_policy=loaded.fail_policy, telemetry=telemetry)
    filt.apply_snapshot_state(vectors, **state)
    return filt
