"""Wall-clock rotation driving for the online daemon.

Offline replay advances the bitmap's rotation schedule from *packet
timestamps* — time is whatever the trace says.  A live daemon filtering
real traffic has no such luxury: rotations must fire every Δt seconds of
wall-clock time whether or not packets arrive, or marks never expire and
utilization (and with it the penetration probability U^m) creeps upward.

:class:`RotationScheduler` is that driver.  It maps wall-clock time into
the filter's time domain through a fixed ``epoch`` (filter time 0 ==
``clock() == epoch``) and wakes at each rotation boundary to call
``advance_to`` on the filter:

- **Drift-compensated** — each deadline is computed from the filter's own
  ``next_rotation`` (anchored at the schedule origin), never from
  ``last wakeup + dt``, so sleep jitter cannot accumulate into schedule
  drift.
- **Missed-rotation catch-up** — an event-loop stall that sleeps through
  several boundaries is repaired on the next wakeup: ``advance_to`` runs
  *every* missed rotation immediately, the same catch-up semantics the
  fault layer proves out for stalled timers and outages
  (:meth:`~repro.core.bitmap_filter.BitmapFilter.resume_rotations` with
  ``catch_up=True`` and :meth:`~repro.core.bitmap_filter.BitmapFilter.recover`).
  The naive alternative — restarting the schedule from the late wakeup —
  silently stretches every mark's lifetime, which is exactly the failure
  mode ``repro.faults``' ``RotationStall(catch_up=False)`` models.

The scheduler emits telemetry (rotation wakeups, per-wakeup catch-up
counts, boundary drift) and offers an ``on_boundary`` hook the daemon uses
to apply deferred configuration rebuilds at a rotation edge.
"""

from __future__ import annotations

import asyncio
import time
from typing import Awaitable, Callable, Optional

from repro.telemetry.registry import MetricsRegistry, log_buckets

__all__ = ["RotationScheduler"]

#: Drift histogram bounds: 100 µs to ~100 s of boundary lateness.
_DRIFT_BUCKETS = tuple(log_buckets(1e-4, 100.0, per_decade=3))


class RotationScheduler:
    """Drive a filter's rotations from wall-clock time on an event loop.

    ``filt`` is any object with ``next_rotation`` and ``advance_to``
    (serial and sharded filters both qualify).  ``epoch`` is the wall
    instant (in ``clock()`` units) corresponding to filter time zero; the
    daemon sets it at startup so live packets and rotations share one
    time domain.  ``clock`` defaults to :func:`time.monotonic` and is
    injectable for tests.
    """

    def __init__(
        self,
        filt,
        *,
        epoch: float,
        clock: Callable[[], float] = time.monotonic,
        registry: Optional[MetricsRegistry] = None,
        on_boundary: Optional[Callable[[float], Awaitable[None]]] = None,
        poll_cap: float = 3600.0,
    ):
        self._filt = filt
        self._epoch = epoch
        self._clock = clock
        self._on_boundary = on_boundary
        self._poll_cap = poll_cap
        self._stopped = asyncio.Event()
        self._task: Optional[asyncio.Task] = None
        if registry is not None and registry.enabled:
            self._wakeups = registry.counter(
                "repro_serve_rotation_wakeups_total",
                "Scheduler wakeups that performed at least one rotation")
            self._caught_up = registry.counter(
                "repro_serve_rotations_caught_up_total",
                "Rotations beyond the first performed in one wakeup "
                "(missed-boundary catch-up)")
            self._drift = registry.histogram(
                "repro_serve_rotation_drift_seconds",
                "How late each rotation boundary fired (wall-clock)",
                bounds=_DRIFT_BUCKETS)
        else:
            self._wakeups = self._caught_up = self._drift = None

    # -- time mapping ---------------------------------------------------------

    @property
    def epoch(self) -> float:
        """Wall-clock instant (``clock()`` units) of filter time zero."""
        return self._epoch

    def filter_now(self) -> float:
        """Current wall-clock time expressed in the filter's time domain."""
        return self._clock() - self._epoch

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> asyncio.Task:
        """Spawn the scheduler task on the running event loop."""
        if self._task is not None:
            raise RuntimeError("scheduler already started")
        self._task = asyncio.get_running_loop().create_task(
            self.run(), name="repro-serve-rotation")
        return self._task

    def stop(self) -> None:
        """Ask the scheduler loop to exit after its current wait."""
        self._stopped.set()

    async def join(self) -> None:
        if self._task is not None:
            await self._task

    # -- the loop -------------------------------------------------------------

    async def run(self) -> None:
        """Sleep to each rotation boundary; rotate (catching up) on wake."""
        while not self._stopped.is_set():
            deadline = self._filt.next_rotation  # filter-time boundary
            delay = deadline - self.filter_now()
            if delay > 0:
                try:
                    await asyncio.wait_for(self._stopped.wait(),
                                           timeout=min(delay, self._poll_cap))
                    break  # stop requested
                except asyncio.TimeoutError:
                    pass
                # Re-read the deadline: a restore/rebuild may have moved it.
                continue
            ran = await self._rotate_due()
            if not ran:
                # A stalled filter leaves the deadline in the past; idle
                # briefly instead of spinning against the frozen schedule.
                try:
                    await asyncio.wait_for(self._stopped.wait(), timeout=0.05)
                    break
                except asyncio.TimeoutError:
                    continue

    async def _rotate_due(self) -> int:
        deadline = self._filt.next_rotation
        now_ft = self.filter_now()
        ran = self._filt.advance_to(now_ft)
        if ran and self._wakeups is not None:
            self._wakeups.inc()
            if ran > 1:
                self._caught_up.inc(ran - 1)
            self._drift.observe(max(now_ft - deadline, 0.0))
        if self._on_boundary is not None:
            await self._on_boundary(now_ft)
        return ran
