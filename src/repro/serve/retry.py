"""Retry policy: exponential backoff with jitter under a deadline budget.

One policy object describes how hard to try: how many attempts, how the
delay between them grows, how much of each delay is randomized away (so a
fleet of clients retrying a dead daemon does not stampede it in
lockstep), and an overall wall-clock budget the whole sequence must fit
inside.  Time never comes from the wall directly — ``clock``/``sleep``
are injectable, so every retry path is unit-testable against a fake
clock with zero real sleeping.

:func:`call_with_retry` is the synchronous driver used by
:class:`~repro.serve.client.FilterClient` and the fleet router;
:func:`async_call_with_retry` is its asyncio twin for
:class:`~repro.serve.client.AsyncFilterClient`.  Both retry only
*transient* failures (:func:`repro.serve.errors.is_transient`); fatal
errors propagate on the first throw.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Awaitable, Callable, Optional, TypeVar

from repro.serve.errors import ServeTimeoutError, is_transient

__all__ = ["Deadline", "RetryPolicy", "async_call_with_retry",
           "call_with_retry"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How a transient failure is retried.

    ``max_attempts`` counts every try including the first; 1 means no
    retries.  The delay before attempt ``i`` (0-based retry index) is
    ``min(max_delay, base_delay * multiplier**i)``, then shrunk by up to
    ``jitter`` (a fraction in [0, 1]) of itself, sampled uniformly —
    full-jitter style, so delays spread instead of synchronizing.
    ``deadline`` bounds the whole sequence: once the budget is spent, the
    next retry is abandoned and the last error re-raised.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")

    def backoff(self, retry_index: int,
                rng: Optional[random.Random] = None) -> float:
        """The delay before retry ``retry_index`` (0-based), jittered."""
        if retry_index < 0:
            raise ValueError("retry_index must be non-negative")
        delay = min(self.max_delay,
                    self.base_delay * self.multiplier ** retry_index)
        if self.jitter and delay > 0:
            fraction = (rng or random).random()
            delay *= 1.0 - self.jitter * fraction
        return delay

    def start(self, clock: Callable[[], float] = time.monotonic) -> "Deadline":
        """A :class:`Deadline` holding this policy's overall budget."""
        return Deadline(self.deadline, clock=clock)


class Deadline:
    """A wall-clock budget: ``None`` means unbounded.

    Created once per logical operation and threaded through its retries,
    so connect + N reconnects + the final request all share one budget.
    """

    def __init__(self, budget: Optional[float], *,
                 clock: Callable[[], float] = time.monotonic):
        self._clock = clock
        self._expires = None if budget is None else clock() + budget

    def remaining(self) -> Optional[float]:
        """Seconds left (possibly negative), or ``None`` if unbounded."""
        if self._expires is None:
            return None
        return self._expires - self._clock()

    @property
    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0

    def clamp(self, timeout: Optional[float]) -> Optional[float]:
        """``timeout`` shrunk to fit the remaining budget."""
        remaining = self.remaining()
        if remaining is None:
            return timeout
        remaining = max(0.0, remaining)
        return remaining if timeout is None else min(timeout, remaining)


def _next_delay(policy: RetryPolicy, retry_index: int, deadline: Deadline,
                rng: Optional[random.Random]) -> Optional[float]:
    """The backoff before the next retry, or ``None`` to give up."""
    if retry_index + 1 >= policy.max_attempts:
        return None
    delay = policy.backoff(retry_index, rng)
    remaining = deadline.remaining()
    if remaining is not None and delay >= remaining:
        return None  # the budget cannot fit the sleep, let alone the try
    return delay


def call_with_retry(fn: Callable[[], T], *,
                    policy: RetryPolicy,
                    deadline: Optional[Deadline] = None,
                    clock: Callable[[], float] = time.monotonic,
                    sleep: Callable[[float], None] = time.sleep,
                    rng: Optional[random.Random] = None,
                    on_retry: Optional[Callable[[int, BaseException], None]]
                    = None) -> T:
    """Call ``fn`` until it succeeds, a fatal error, or the budget is gone.

    Only transient errors (per :func:`~repro.serve.errors.is_transient`)
    are retried.  ``on_retry(retry_index, exc)`` fires before each backoff
    sleep — telemetry hooks go there.
    """
    if deadline is None:
        deadline = policy.start(clock)
    retry_index = 0
    while True:
        if deadline.expired:
            raise ServeTimeoutError("retry deadline budget exhausted")
        try:
            return fn()
        except Exception as exc:  # noqa: BLE001 - filtered just below
            if not is_transient(exc):
                raise
            delay = _next_delay(policy, retry_index, deadline, rng)
            if delay is None:
                raise
            if on_retry is not None:
                on_retry(retry_index, exc)
            sleep(delay)
            retry_index += 1


async def async_call_with_retry(
        fn: Callable[[], Awaitable[T]], *,
        policy: RetryPolicy,
        deadline: Optional[Deadline] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Optional[Callable[[float], Awaitable[None]]] = None,
        rng: Optional[random.Random] = None,
        on_retry: Optional[Callable[[int, BaseException], None]] = None) -> T:
    """:func:`call_with_retry` for coroutines (``sleep`` defaults to
    ``asyncio.sleep``)."""
    if sleep is None:
        import asyncio

        sleep = asyncio.sleep
    if deadline is None:
        deadline = policy.start(clock)
    retry_index = 0
    while True:
        if deadline.expired:
            raise ServeTimeoutError("retry deadline budget exhausted")
        try:
            return await fn()
        except Exception as exc:  # noqa: BLE001 - filtered just below
            if not is_transient(exc):
                raise
            delay = _next_delay(policy, retry_index, deadline, rng)
            if delay is None:
                raise
            if on_retry is not None:
                on_retry(retry_index, exc)
            await sleep(delay)
            retry_index += 1
