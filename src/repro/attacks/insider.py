"""The insider attack of Section 5.2: an infected host inside the client net.

An inside host emitting *outgoing* random tuples at rate ``r`` marks
``m * r * Te`` bits per expiry window, inflating the bitmap's utilization by
roughly ``m * r * Te / 2**n`` and therefore the random-packet penetration
rate.  This generator produces that outgoing pollution traffic so the
Section 5.2 experiment can validate the formula and its mitigations (larger
``n``, shorter ``Te``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.address import AddressSpace
from repro.net.packet import PacketArray, PacketLabel, TcpFlags
from repro.net.protocols import IPPROTO_TCP


@dataclass(frozen=True)
class InsiderAttack:
    """An infected internal host scanning the outside world."""

    attacker_addr: int      # must be inside the protected space
    rate_pps: float
    start: float
    duration: float
    seed: int = 4242

    def __post_init__(self) -> None:
        if self.rate_pps <= 0 or self.duration <= 0:
            raise ValueError("rate and duration must be positive")

    def generate(self, protected: AddressSpace) -> PacketArray:
        if not protected.contains_int(self.attacker_addr):
            raise ValueError("insider attacker must live inside the protected space")
        rng = np.random.default_rng(self.seed)
        count = int(round(self.rate_pps * self.duration))
        if count == 0:
            return PacketArray.empty()
        gaps = rng.exponential(1.0 / self.rate_pps, size=count)
        ts = self.start + np.cumsum(gaps)
        overshoot = ts[-1] - (self.start + self.duration)
        if overshoot > 0:
            ts -= overshoot * (ts - self.start) / (ts[-1] - self.start)

        # Random external victims: each outgoing packet marks a fresh key.
        daddr = rng.integers(0x01000000, 0xE0000000, size=count, dtype=np.uint32)
        inside = np.zeros(count, dtype=bool)
        for net in protected.networks:
            inside |= (daddr & np.uint32(net.netmask)) == np.uint32(net.prefix)
        while inside.any():
            n = int(inside.sum())
            daddr[inside] = rng.integers(0x01000000, 0xE0000000, size=n, dtype=np.uint32)
            inside[:] = False
            for net in protected.networks:
                inside |= (daddr & np.uint32(net.netmask)) == np.uint32(net.prefix)

        return PacketArray.from_fields(
            ts=ts,
            proto=np.full(count, IPPROTO_TCP, dtype=np.uint8),
            src=np.full(count, self.attacker_addr, dtype=np.uint32),
            sport=rng.integers(1024, 65536, size=count, dtype=np.uint32).astype(np.uint16),
            dst=daddr,
            dport=rng.integers(1, 65536, size=count, dtype=np.uint32).astype(np.uint16),
            flags=np.full(count, int(TcpFlags.SYN), dtype=np.uint8),
            size=np.full(count, 48, dtype=np.uint16),
            label=np.full(count, int(PacketLabel.ATTACK), dtype=np.uint8),
        )
