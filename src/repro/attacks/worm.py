"""Random-scanning worm propagation (the Code Red family of models).

The paper motivates the bitmap filter with active worms that "efficiently
spread among millions of hosts in a short period of time" [6, 13, 21].  This
module implements the classic epidemic model of those references: ``N``
vulnerable hosts inside the IPv4 space, each infected host scanning random
addresses at ``s`` probes/second, giving the logistic growth

    di/dt = beta * i * (1 - i),   beta = s * N / 2**32

where ``i`` is the infected fraction.  :meth:`WormModel.infection_curve`
integrates it discretely, and :meth:`WormModel.inbound_scans` converts the
curve into the scan traffic a protected client network receives — the
realistic, time-varying version of the constant-rate scanner used in Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.net.address import AddressSpace
from repro.net.packet import PacketArray, PacketLabel, TcpFlags
from repro.net.protocols import IPPROTO_TCP

_IPV4_SPACE = 2.0**32


@dataclass(frozen=True)
class WormParameters:
    """Epidemic parameters (defaults roughly Code Red v2)."""

    vulnerable_hosts: int = 360_000    # N: Code Red's victim population
    scan_rate: float = 10.0            # s: probes per second per infected host
    initially_infected: int = 10       # I(0)
    target_port: int = 80              # the service the worm exploits
    #: Code Red II-style locality: the fraction of each host's scans aimed
    #: at its own /local_prefix_len instead of the whole IPv4 space.
    local_preference: float = 0.0
    local_prefix_len: int = 8

    def __post_init__(self) -> None:
        if self.vulnerable_hosts < 1 or self.initially_infected < 1:
            raise ValueError("need at least one vulnerable and one infected host")
        if self.initially_infected > self.vulnerable_hosts:
            raise ValueError("cannot start with more infected than vulnerable hosts")
        if self.scan_rate <= 0:
            raise ValueError("scan rate must be positive")
        if not 0.0 <= self.local_preference <= 1.0:
            raise ValueError("local preference must be in [0, 1]")
        if not 1 <= self.local_prefix_len <= 24:
            raise ValueError("local prefix length must be in [1, 24]")

    @property
    def beta(self) -> float:
        """The epidemic's pairwise infection rate."""
        return self.scan_rate * self.vulnerable_hosts / _IPV4_SPACE


class WormModel:
    """Discrete-time integration of the random-scanning epidemic."""

    def __init__(self, params: WormParameters):
        self.params = params

    def infection_curve(self, duration: float, step: float = 1.0) -> Tuple[np.ndarray, np.ndarray]:
        """(t, infected_count) over ``duration`` seconds.

        Deterministic logistic integration — the mean-field curve the
        measurement studies fit to Code Red telescope data.
        """
        if step <= 0 or duration <= 0:
            raise ValueError("duration and step must be positive")
        params = self.params
        steps = int(np.ceil(duration / step)) + 1
        t = np.arange(steps) * step
        infected = np.empty(steps, dtype=float)
        i = params.initially_infected / params.vulnerable_hosts
        beta = params.beta
        for index in range(steps):
            infected[index] = i * params.vulnerable_hosts
            i = min(1.0, i + step * beta * i * (1.0 - i))
        return t, infected

    def infection_curve_stochastic(
        self, duration: float, step: float = 1.0, seed: int = 0
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Monte Carlo twin of :meth:`infection_curve`.

        Each step draws the number of new infections binomially: every one
        of the ``I*s*step`` scans hits a *susceptible* host with probability
        ``S / 2**32``.  Early-phase noise (the regime where one lucky scan
        matters) is visible here and averaged away in the mean-field curve.
        """
        if step <= 0 or duration <= 0:
            raise ValueError("duration and step must be positive")
        rng = np.random.default_rng(seed)
        params = self.params
        steps = int(np.ceil(duration / step)) + 1
        t = np.arange(steps) * step
        infected = np.empty(steps, dtype=float)
        current = params.initially_infected
        for index in range(steps):
            infected[index] = current
            susceptible = params.vulnerable_hosts - current
            if susceptible <= 0:
                current = params.vulnerable_hosts
                continue
            scans = rng.poisson(current * params.scan_rate * step)
            hit_probability = susceptible / _IPV4_SPACE
            new_infections = rng.binomial(scans, hit_probability) if scans else 0
            current = min(params.vulnerable_hosts, current + new_infections)
        return t, infected

    def time_to_fraction(self, fraction: float, step: float = 1.0,
                         horizon: float = 1e7) -> float:
        """Seconds until the given fraction of vulnerable hosts is infected."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        params = self.params
        i = params.initially_infected / params.vulnerable_hosts
        beta = params.beta
        t = 0.0
        while i < fraction:
            i += step * beta * i * (1.0 - i)
            t += step
            if t > horizon:
                raise RuntimeError("infection never reaches the requested fraction")
        return t

    def inbound_scans(
        self,
        protected: AddressSpace,
        duration: float,
        start: float = 0.0,
        step: float = 1.0,
        seed: int = 99,
        infected_near_fraction: float = 0.0,
    ) -> PacketArray:
        """Worm scan packets that happen to target the protected networks.

        With uniform scanning each infected host hits the protected space
        with probability ``num_protected / 2**32``.  With local preference
        (Code Red II), the ``infected_near_fraction`` of infected hosts that
        share the protected network's /local_prefix_len aim their local
        share of scans into a 2**(32-prefix) space instead — a
        ``2**prefix``-fold amplification for those hosts.
        """
        rng = np.random.default_rng(seed)
        t, infected = self.infection_curve(duration, step)
        params = self.params
        uniform_share = 1.0 - params.local_preference
        global_fraction = protected.num_addresses / _IPV4_SPACE
        local_space = 2.0 ** (32 - params.local_prefix_len)
        local_fraction = min(1.0, protected.num_addresses / local_space)
        per_host_hit = (
            uniform_share * global_fraction
            + params.local_preference * infected_near_fraction * local_fraction
        )
        rates = infected * params.scan_rate * per_host_hit  # per second

        rows_ts: List[np.ndarray] = []
        for index in range(len(t) - 1):
            expected = rates[index] * step
            count = rng.poisson(expected)
            if count:
                rows_ts.append(start + t[index] + rng.random(count) * step)
        if not rows_ts:
            return PacketArray.empty()
        ts = np.sort(np.concatenate(rows_ts))
        count = len(ts)

        networks = protected.networks
        choice = rng.integers(0, len(networks), size=count)
        daddr = np.zeros(count, dtype=np.uint32)
        for i, net in enumerate(networks):
            mask = choice == i
            n = int(mask.sum())
            if n:
                daddr[mask] = np.uint32(net.prefix) + rng.integers(
                    1, net.num_addresses - 1, size=n, dtype=np.uint32
                )

        return PacketArray.from_fields(
            ts=ts,
            proto=np.full(count, IPPROTO_TCP, dtype=np.uint8),
            src=rng.integers(0x01000000, 0xE0000000, size=count, dtype=np.uint32),
            sport=rng.integers(1024, 65536, size=count, dtype=np.uint32).astype(np.uint16),
            dst=daddr,
            dport=np.full(count, self.params.target_port, dtype=np.uint16),
            flags=np.full(count, int(TcpFlags.SYN), dtype=np.uint8),
            size=np.full(count, 48, dtype=np.uint16),
            label=np.full(count, int(PacketLabel.ATTACK), dtype=np.uint8),
        )
