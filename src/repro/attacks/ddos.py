"""Flood/scan attack primitives: SYN flood, FIN scan, UDP flood.

These complement the random scanner for the Section 5.3 APD experiments —
floods that aim at a *fixed* victim (bandwidth attacks) rather than sweeping
the address space, and the SYN/FIN scans whose elicited replies motivate the
APD signal-packet marking policy.
"""

from __future__ import annotations

import numpy as np

from repro.net.packet import PacketArray, PacketLabel, TcpFlags
from repro.net.protocols import IPPROTO_TCP, IPPROTO_UDP


def _poisson_timestamps(rng: np.random.Generator, rate_pps: float, start: float,
                        duration: float) -> np.ndarray:
    count = int(round(rate_pps * duration))
    gaps = rng.exponential(1.0 / rate_pps, size=count)
    ts = start + np.cumsum(gaps)
    overshoot = ts[-1] - (start + duration)
    if overshoot > 0:
        ts -= overshoot * (ts - start) / (ts[-1] - start)
    return ts


def _spoofed_sources(rng: np.random.Generator, count: int) -> np.ndarray:
    return rng.integers(0x01000000, 0xE0000000, size=count, dtype=np.uint32)


def syn_flood(
    target_addr: int,
    target_port: int,
    rate_pps: float,
    start: float,
    duration: float,
    seed: int = 7,
) -> PacketArray:
    """A spoofed-source TCP SYN flood against one victim host/port."""
    rng = np.random.default_rng(seed)
    ts = _poisson_timestamps(rng, rate_pps, start, duration)
    count = len(ts)
    return PacketArray.from_fields(
        ts=ts,
        proto=np.full(count, IPPROTO_TCP, dtype=np.uint8),
        src=_spoofed_sources(rng, count),
        sport=rng.integers(1024, 65536, size=count, dtype=np.uint32).astype(np.uint16),
        dst=np.full(count, target_addr, dtype=np.uint32),
        dport=np.full(count, target_port, dtype=np.uint16),
        flags=np.full(count, int(TcpFlags.SYN), dtype=np.uint8),
        size=np.full(count, 40, dtype=np.uint16),
        label=np.full(count, int(PacketLabel.ATTACK), dtype=np.uint8),
    )


def fin_scan(
    target_addr: int,
    rate_pps: float,
    start: float,
    duration: float,
    seed: int = 8,
) -> PacketArray:
    """A FIN port scan sweeping a victim's ports (stealth scan)."""
    rng = np.random.default_rng(seed)
    ts = _poisson_timestamps(rng, rate_pps, start, duration)
    count = len(ts)
    return PacketArray.from_fields(
        ts=ts,
        proto=np.full(count, IPPROTO_TCP, dtype=np.uint8),
        src=_spoofed_sources(rng, count),
        sport=rng.integers(1024, 65536, size=count, dtype=np.uint32).astype(np.uint16),
        dst=np.full(count, target_addr, dtype=np.uint32),
        dport=rng.integers(1, 65536, size=count, dtype=np.uint32).astype(np.uint16),
        flags=np.full(count, int(TcpFlags.FIN), dtype=np.uint8),
        size=np.full(count, 40, dtype=np.uint16),
        label=np.full(count, int(PacketLabel.ATTACK), dtype=np.uint8),
    )


def udp_flood(
    target_addr: int,
    rate_pps: float,
    start: float,
    duration: float,
    packet_size: int = 1400,
    seed: int = 9,
) -> PacketArray:
    """A volumetric UDP flood (bandwidth attack) against one victim."""
    rng = np.random.default_rng(seed)
    ts = _poisson_timestamps(rng, rate_pps, start, duration)
    count = len(ts)
    return PacketArray.from_fields(
        ts=ts,
        proto=np.full(count, IPPROTO_UDP, dtype=np.uint8),
        src=_spoofed_sources(rng, count),
        sport=rng.integers(1, 65536, size=count, dtype=np.uint32).astype(np.uint16),
        dst=np.full(count, target_addr, dtype=np.uint32),
        dport=rng.integers(1, 65536, size=count, dtype=np.uint32).astype(np.uint16),
        flags=np.zeros(count, dtype=np.uint8),
        size=np.full(count, packet_size, dtype=np.uint16),
        label=np.full(count, int(PacketLabel.ATTACK), dtype=np.uint8),
    )
