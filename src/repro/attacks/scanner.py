"""The random-scan attack of Section 4.3.

"An attack generator releases incoming attack packets with address tuples in
the form of {saddr, sport, daddr, dport}, where saddr, sport, and dport are
chosen at random; however, daddr is confined to the address space of the
given sub-networks."  The paper runs it at 500K pps — 20x the normal packet
rate; scaled runs preserve that ratio.

Generation is fully vectorized (NumPy RNG) so even paper-scale packet counts
are cheap to produce.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.net.address import AddressSpace
from repro.net.packet import PacketArray, PacketLabel, TcpFlags
from repro.net.protocols import IPPROTO_TCP, IPPROTO_UDP


@dataclass(frozen=True)
class ScanConfig:
    """Parameters of a random scanning attack."""

    rate_pps: float           # attack packet rate
    start: float              # first packet timestamp
    duration: float           # seconds of attack
    tcp_fraction: float = 0.9  # worms mostly scan TCP service ports
    syn_fraction: float = 0.95  # of the TCP scans, how many are SYN probes
    seed: int = 1337
    #: Ground-truth label stamped on the generated packets.  The workload
    #: generator reuses this generator for low-rate *background* radiation
    #: (label BACKGROUND) as well as for the Fig. 5 attack (label ATTACK).
    label: PacketLabel = PacketLabel.ATTACK

    def __post_init__(self) -> None:
        if self.rate_pps <= 0 or self.duration <= 0:
            raise ValueError("rate and duration must be positive")
        if not 0.0 <= self.tcp_fraction <= 1.0:
            raise ValueError("tcp_fraction must be in [0, 1]")


class RandomScanAttack:
    """Vectorized random-scan packet generator."""

    def __init__(self, config: ScanConfig, protected: AddressSpace):
        self.config = config
        self.protected = protected

    def generate(self) -> PacketArray:
        config = self.config
        rng = np.random.default_rng(config.seed)
        count = int(round(config.rate_pps * config.duration))
        if count == 0:
            return PacketArray.empty()

        # Poisson arrivals: exponential gaps re-normalized to the duration.
        gaps = rng.exponential(1.0 / config.rate_pps, size=count)
        ts = config.start + np.cumsum(gaps)
        ts *= 1.0  # keep float64
        overshoot = ts[-1] - (config.start + config.duration)
        if overshoot > 0:
            ts -= overshoot * (ts - config.start) / (ts[-1] - config.start)

        saddr = self._random_external(rng, count)
        sport = rng.integers(1, 65536, size=count, dtype=np.uint32).astype(np.uint16)
        daddr = self._random_protected(rng, count)
        dport = rng.integers(1, 65536, size=count, dtype=np.uint32).astype(np.uint16)

        is_tcp = rng.random(count) < config.tcp_fraction
        proto = np.where(is_tcp, IPPROTO_TCP, IPPROTO_UDP).astype(np.uint8)
        flags = np.zeros(count, dtype=np.uint8)
        syn_mask = is_tcp & (rng.random(count) < config.syn_fraction)
        flags[syn_mask] = int(TcpFlags.SYN)
        # The remainder of the TCP probes are ACK/FIN stealth scans.
        other_tcp = is_tcp & ~syn_mask
        flags[other_tcp] = int(TcpFlags.ACK)

        size = rng.integers(40, 80, size=count, dtype=np.uint32).astype(np.uint16)
        label = np.full(count, int(config.label), dtype=np.uint8)
        return PacketArray.from_fields(
            ts=ts, proto=proto, src=saddr, sport=sport, dst=daddr, dport=dport,
            flags=flags, size=size, label=label,
        )

    # -- address sampling -------------------------------------------------------

    def _random_external(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Spoofed source addresses: uniform, re-rolled out of the client nets."""
        addrs = rng.integers(0x01000000, 0xE0000000, size=count, dtype=np.uint32)
        inside = self._membership(addrs)
        while inside.any():
            addrs[inside] = rng.integers(
                0x01000000, 0xE0000000, size=int(inside.sum()), dtype=np.uint32
            )
            inside = self._membership(addrs)
        return addrs

    def _random_protected(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Scan targets: uniform over the protected address space."""
        networks = self.protected.networks
        choice = rng.integers(0, len(networks), size=count)
        addrs = np.zeros(count, dtype=np.uint32)
        for i, net in enumerate(networks):
            mask = choice == i
            n = int(mask.sum())
            if n:
                offsets = rng.integers(1, net.num_addresses - 1, size=n, dtype=np.uint32)
                addrs[mask] = np.uint32(net.prefix) + offsets
        return addrs

    def _membership(self, addrs: np.ndarray) -> np.ndarray:
        inside = np.zeros(len(addrs), dtype=bool)
        for net in self.protected.networks:
            inside |= (addrs & np.uint32(net.netmask)) == np.uint32(net.prefix)
        return inside
