"""Attack traffic generators.

- :mod:`repro.attacks.scanner` — the random-scan generator of Section 4.3
  (random saddr/sport/dport, daddr confined to the protected subnets).
- :mod:`repro.attacks.ddos` — SYN floods, FIN scans, UDP floods.
- :mod:`repro.attacks.worm` — a random-scanning epidemic worm model
  (Code Red-style) plus the inbound scan traffic it aims at a client network.
- :mod:`repro.attacks.insider` — an infected *inside* host polluting the
  bitmap with outgoing random traffic (Section 5.2).

All generators produce :class:`~repro.net.packet.PacketArray` batches whose
``label`` field is :data:`~repro.net.packet.PacketLabel.ATTACK`, so the
evaluation pipeline can separate attack from normal traffic when scoring.
"""

from repro.attacks.ddos import fin_scan, syn_flood, udp_flood
from repro.attacks.insider import InsiderAttack
from repro.attacks.scanner import RandomScanAttack, ScanConfig
from repro.attacks.worm import WormModel, WormParameters

__all__ = [
    "fin_scan",
    "syn_flood",
    "udp_flood",
    "InsiderAttack",
    "RandomScanAttack",
    "ScanConfig",
    "WormModel",
    "WormParameters",
]
