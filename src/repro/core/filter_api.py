"""The unified admission API every filter in the repository speaks.

Historically the bitmap filter exposed ``process``/``process_batch`` while
the SPI baselines exposed ``process``/``process_array`` and ad-hoc helpers,
so harnesses dispatched on concrete types.  This module defines the single
:class:`PacketFilter` protocol they all implement now:

- ``observe_out(pkt)`` / ``observe_out_batch(packets)`` — record outgoing
  traffic (mark the bitmap, insert/refresh flow state);
- ``admit_in(pkt) -> bool`` / ``admit_in_batch(packets) -> mask`` — judge
  incoming traffic;
- ``process(pkt) -> Decision`` / ``process_batch(packets) -> mask`` — the
  direction-agnostic entry points the directional methods derive from.

Batches are time-sorted :class:`~repro.net.packet.PacketArray` instances of
*mixed* traffic; direction classification stays inside the filter, so
``observe_out``/``admit_in`` on a packet of the other direction is safe
(non-incoming packets always admit).  Old entry points
(``StatefulFilter.process_array`` and friends) remain as thin deprecation
shims delegating here.
"""

from __future__ import annotations

import enum
import warnings
from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:
    import numpy as np

    from repro.net.packet import Packet, PacketArray


class Decision(enum.Enum):
    """Verdict of a filter for one packet."""

    PASS = "pass"
    DROP = "drop"


@runtime_checkable
class PacketFilter(Protocol):
    """What every admission filter implements (bitmap, SPI, ablations)."""

    def process(self, pkt: "Packet") -> Decision:
        """Filter one packet of any direction, advancing time to it."""
        ...

    def process_batch(self, packets: "PacketArray",
                      exact: bool = True) -> "np.ndarray":
        """Filter a time-sorted mixed batch; returns a boolean PASS mask."""
        ...

    def observe_out(self, pkt: "Packet") -> None:
        """Record one outgoing packet (mark/refresh state, advance time)."""
        ...

    def admit_in(self, pkt: "Packet") -> bool:
        """Judge one incoming packet; True means admit."""
        ...

    def observe_out_batch(self, packets: "PacketArray") -> None:
        """Record a time-sorted batch of (predominantly) outgoing packets."""
        ...

    def admit_in_batch(self, packets: "PacketArray") -> "np.ndarray":
        """Judge a time-sorted batch; boolean admit mask per packet."""
        ...


class PacketFilterMixin:
    """Default directional methods derived from ``process``/``process_batch``.

    Mixing this into a class that provides the two generic entry points
    completes the :class:`PacketFilter` protocol.  Implementations with a
    cheaper direct path (no direction classification) may override any of
    the four.
    """

    def observe_out(self, pkt: "Packet") -> None:
        self.process(pkt)

    def admit_in(self, pkt: "Packet") -> bool:
        return self.process(pkt) is Decision.PASS

    def observe_out_batch(self, packets: "PacketArray") -> None:
        self.process_batch(packets)

    def admit_in_batch(self, packets: "PacketArray") -> "np.ndarray":
        return self.process_batch(packets)


def deprecated_alias(old_name: str, new_name: str) -> None:
    """Warn once per call site that ``old_name`` is a compatibility shim."""
    warnings.warn(
        f"{old_name} is deprecated; use {new_name} (the unified "
        "PacketFilter API) instead",
        DeprecationWarning,
        stacklevel=3,
    )
