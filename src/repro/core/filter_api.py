"""The unified admission API every filter in the repository speaks — and the
one factory that constructs them.

Two things live here:

**The protocol.**  :class:`PacketFilter` is the single interface all seven
filter implementations present (bitmap, close-aware, SPI baselines,
throttle, sharded/shared parallel, hybrid-verified):

- ``observe_out(pkt)`` / ``observe_out_batch(packets)`` — record outgoing
  traffic (mark the bitmap, insert/refresh flow state);
- ``admit_in(pkt) -> bool`` / ``admit_in_batch(packets) -> mask`` — judge
  incoming traffic;
- ``process(pkt) -> Decision`` / ``process_batch(packets) -> mask`` — the
  direction-agnostic entry points the directional methods derive from.

Batches are time-sorted :class:`~repro.net.packet.PacketArray` instances of
*mixed* traffic; direction classification stays inside the filter, so
``observe_out``/``admit_in`` on a packet of the other direction is safe
(non-incoming packets always admit).

**The factory.**  :func:`build_filter` replaces the three historical
construction paths (``BitmapFilter.from_config``,
``repro.parallel.create_filter``, ``restore_serve_filter``) with one
registry-driven entry point:

- an **execution backend** (``serial`` / ``sharded`` / ``shared``) chosen
  explicitly, or ambiently via :func:`set_backend` / :func:`use_backend` —
  parallel backends register themselves from :mod:`repro.parallel.backend`;
- a stack of **layers** wrapped around the base filter, described by frozen
  spec objects (e.g. :class:`~repro.core.hybrid.VerifySpec`, kind
  ``"verify"``) carried on ``FilterConfig.layers``, passed as
  ``layers=("verify", ...)``, or installed ambiently with
  :func:`use_layers`;
- an optional **snapshot** warm start (``snapshot=path``) subsuming
  ``restore_serve_filter``: the checksummed v2 archive is loaded, a fresh
  shell is built on the requested backend under the caller's telemetry
  registry, the state (bit vectors *and* any cuckoo verification table) is
  applied, and the recorded layer stack is re-wrapped.

CLI (``--filter hybrid``), serve, fleet, and snapshot restore all construct
filters through this one factory.
"""

from __future__ import annotations

import enum
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Callable, Dict, Iterable, Optional,
                    Protocol, Tuple, Union, runtime_checkable)

if TYPE_CHECKING:
    import numpy as np

    from repro.net.packet import Packet, PacketArray


class Decision(enum.Enum):
    """Verdict of a filter for one packet."""

    PASS = "pass"
    DROP = "drop"


@runtime_checkable
class PacketFilter(Protocol):
    """What every admission filter implements (bitmap, SPI, ablations)."""

    def process(self, pkt: "Packet") -> Decision:
        """Filter one packet of any direction, advancing time to it."""
        ...

    def process_batch(self, packets: "PacketArray",
                      exact: bool = True) -> "np.ndarray":
        """Filter a time-sorted mixed batch; returns a boolean PASS mask."""
        ...

    def observe_out(self, pkt: "Packet") -> None:
        """Record one outgoing packet (mark/refresh state, advance time)."""
        ...

    def admit_in(self, pkt: "Packet") -> bool:
        """Judge one incoming packet; True means admit."""
        ...

    def observe_out_batch(self, packets: "PacketArray") -> None:
        """Record a time-sorted batch of (predominantly) outgoing packets."""
        ...

    def admit_in_batch(self, packets: "PacketArray") -> "np.ndarray":
        """Judge a time-sorted batch; boolean admit mask per packet."""
        ...


class PacketFilterMixin:
    """Default directional methods derived from ``process``/``process_batch``.

    Mixing this into a class that provides the two generic entry points
    completes the :class:`PacketFilter` protocol.  Implementations with a
    cheaper direct path (no direction classification) may override any of
    the four.
    """

    def observe_out(self, pkt: "Packet") -> None:
        self.process(pkt)

    def admit_in(self, pkt: "Packet") -> bool:
        return self.process(pkt) is Decision.PASS

    def observe_out_batch(self, packets: "PacketArray") -> None:
        self.process_batch(packets)

    def admit_in_batch(self, packets: "PacketArray") -> "np.ndarray":
        return self.process_batch(packets)


def deprecated_alias(old_name: str, new_name: str,
                     note: str = "the unified PacketFilter API") -> None:
    """Warn once per call site that ``old_name`` is a compatibility shim."""
    warnings.warn(
        f"{old_name} is deprecated; use {new_name} ({note}) instead",
        DeprecationWarning,
        stacklevel=3,
    )


# ---------------------------------------------------------------------------
# Execution backends (moved here from repro.parallel.backend, which now
# re-exports them — serial construction must not import multiprocessing).
# ---------------------------------------------------------------------------

#: Every selectable backend, in the order the CLI surfaces them.
BACKEND_NAMES = ("serial", "sharded", "shared")


@dataclass(frozen=True)
class ExecutionBackend:
    """Where filter work runs: in-process, or fanned out over workers."""

    name: str = "serial"
    workers: int = 1

    def __post_init__(self) -> None:
        if self.name not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {self.name!r}; choose from {BACKEND_NAMES}")
        if self.workers < 1:
            raise ValueError("backend needs at least one worker")
        if self.name == "serial" and self.workers != 1:
            raise ValueError("the serial backend has exactly one worker")

    @property
    def is_sharded(self) -> bool:
        return self.name == "sharded"

    @property
    def is_shared(self) -> bool:
        return self.name == "shared"

    @property
    def is_parallel(self) -> bool:
        return self.name != "serial"


#: The default: everything in-process.
SERIAL_BACKEND = ExecutionBackend()

_active_backend: ExecutionBackend = SERIAL_BACKEND


def get_backend() -> ExecutionBackend:
    """The backend :func:`build_filter` consults when none is given."""
    return _active_backend


def set_backend(backend: Optional[ExecutionBackend]) -> ExecutionBackend:
    """Install ``backend`` process-wide (None → serial); returns the
    previous one so callers can restore it."""
    global _active_backend
    previous = _active_backend
    _active_backend = backend if backend is not None else SERIAL_BACKEND
    return previous


@contextmanager
def use_backend(backend: Optional[ExecutionBackend] = None, *,
                name: Optional[str] = None, workers: Optional[int] = None):
    """Scoped :func:`set_backend`: yields the backend, restores on exit.

    Accepts either a ready :class:`ExecutionBackend` or the ``name=``/
    ``workers=`` fields to build one (``use_backend(name="shared",
    workers=4)``).
    """
    if backend is None:
        fields = {}
        if name is not None:
            fields["name"] = name
        if workers is not None:
            fields["workers"] = workers
        backend = ExecutionBackend(**fields)
    elif name is not None or workers is not None:
        raise TypeError("pass either a backend object or name=/workers= "
                        "fields, not both")
    previous = set_backend(backend)
    try:
        yield backend
    finally:
        set_backend(previous)


# ---------------------------------------------------------------------------
# Registries: backend builders and layer wrappers.
# ---------------------------------------------------------------------------

#: backend name -> builder(config, protected, *, workers, start_time, apd,
#:                         fail_policy, telemetry, mp_context, config_fields)
FILTER_BACKENDS: Dict[str, Callable] = {}

#: layer kind -> wrapper(inner_filter, spec, *, telemetry) and its spec class
LAYER_BUILDERS: Dict[str, Callable] = {}
LAYER_SPECS: Dict[str, type] = {}


def register_backend(name: str, builder: Callable) -> None:
    """Register a filter builder for an execution-backend name."""
    FILTER_BACKENDS[name] = builder


def register_layer(spec_cls: type, builder: Callable) -> None:
    """Register a layer spec class (with a ``kind`` attribute) and its
    wrapper builder."""
    kind = spec_cls.kind
    LAYER_SPECS[kind] = spec_cls
    LAYER_BUILDERS[kind] = builder


def _serial_builder(config, protected, *, workers, start_time, apd,
                    fail_policy, telemetry, mp_context, config_fields):
    del workers, mp_context  # one in-process worker, no subprocesses
    from repro.core.bitmap_filter import BitmapFilter

    return BitmapFilter(config, protected, start_time=start_time, apd=apd,
                        fail_policy=fail_policy, telemetry=telemetry,
                        **config_fields)


register_backend("serial", _serial_builder)


def _require_backend_builder(name: str) -> Callable:
    if name not in FILTER_BACKENDS:
        # Parallel builders register on import; pull them in lazily so the
        # serial path never touches multiprocessing.
        import repro.parallel.backend  # noqa: F401
    try:
        return FILTER_BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"no builder registered for backend {name!r}; "
            f"registered: {sorted(FILTER_BACKENDS)}") from None


def _require_layer_kind(kind: str):
    if kind not in LAYER_BUILDERS:
        import repro.core.hybrid  # noqa: F401  (registers "verify")
    if kind not in LAYER_BUILDERS:
        raise ValueError(
            f"unknown layer kind {kind!r}; registered: {sorted(LAYER_BUILDERS)}")
    return LAYER_SPECS[kind], LAYER_BUILDERS[kind]


# ---------------------------------------------------------------------------
# Layer specs: normalization and the ambient stack.
# ---------------------------------------------------------------------------

#: What callers may pass wherever layers are accepted: a kind name, a dict
#: with a "kind" discriminator, a ready spec object, or an iterable thereof.
LayerLike = Union[str, dict, object]


def normalize_layers(layers) -> Tuple[object, ...]:
    """Canonicalize any accepted layers form into a tuple of frozen specs.

    ``None`` → ``()``.  A bare string names a layer kind with default
    parameters (``"verify"``); a dict carries ``{"kind": ..., **fields}``
    (the JSON form used by ``describe()`` and SIGHUP reload); spec objects
    pass through.
    """
    if layers is None:
        return ()
    if isinstance(layers, (str, dict)) or not isinstance(layers, Iterable):
        layers = (layers,)
    out = []
    for entry in layers:
        if isinstance(entry, str):
            spec_cls, _ = _require_layer_kind(entry)
            out.append(spec_cls())
        elif isinstance(entry, dict):
            fields = dict(entry)
            kind = fields.pop("kind", None)
            if kind is None:
                raise ValueError(
                    f"layer dict needs a 'kind' discriminator, got {entry!r}")
            spec_cls, _ = _require_layer_kind(kind)
            out.append(spec_cls(**fields))
        else:
            kind = getattr(entry, "kind", None)
            if kind is None:
                raise TypeError(
                    f"layer spec {entry!r} has no 'kind' attribute")
            out.append(entry)
    return tuple(out)


def layer_dicts(layers) -> list:
    """JSON-safe ``as_dict()`` forms of a normalized layer stack."""
    return [spec.as_dict() for spec in normalize_layers(layers)]


_active_layers: Tuple[object, ...] = ()


def get_layers() -> Tuple[object, ...]:
    """The ambient layer stack :func:`build_filter` applies by default."""
    return _active_layers


@contextmanager
def use_layers(layers):
    """Scoped ambient layer stack — the layers analogue of
    :func:`use_backend`; the CLI's ``--filter hybrid`` is exactly
    ``use_layers(("verify",))`` around the experiment run."""
    global _active_layers
    previous = _active_layers
    _active_layers = normalize_layers(layers)
    try:
        yield _active_layers
    finally:
        _active_layers = previous


def _apply_layers(filt, layers, *, telemetry=None):
    for spec in layers:
        _, builder = _require_layer_kind(spec.kind)
        filt = builder(filt, spec, telemetry=telemetry)
    return filt


# ---------------------------------------------------------------------------
# The factory.
# ---------------------------------------------------------------------------

def _resolve_backend(backend, workers: Optional[int]) -> ExecutionBackend:
    if isinstance(backend, ExecutionBackend):
        if workers is not None and workers != backend.workers:
            raise TypeError("pass workers inside the ExecutionBackend, "
                            "not alongside it")
        return backend
    if backend is None:
        ambient = get_backend()
        if workers is None or workers == ambient.workers:
            return ambient
        if ambient.name == "serial":
            return ambient if workers == 1 else ExecutionBackend("sharded", workers)
        return ExecutionBackend(ambient.name, workers)
    if backend not in BACKEND_NAMES:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {BACKEND_NAMES}")
    if backend == "serial":
        return SERIAL_BACKEND
    return ExecutionBackend(backend, workers if workers and workers > 1 else 2)


def build_filter(
    config=None,
    protected=None,
    start_time: float = 0.0,
    apd=None,
    fail_policy=None,
    *,
    backend=None,
    workers: Optional[int] = None,
    telemetry=None,
    mp_context: Optional[str] = None,
    layers=None,
    snapshot=None,
    **config_fields,
):
    """Build a filter stack: base filter on an execution backend, wrapped
    by verification layers, optionally warm-started from a snapshot.

    Parameters
    ----------
    config:
        A :class:`~repro.core.bitmap_filter.FilterConfig` (its
        ``fail_policy``, ``warmup_grace`` and ``layers`` are honored), a
        plain ``BitmapFilterConfig``, or None with bare ``**config_fields``.
    backend, workers:
        An :class:`ExecutionBackend`, a backend name (``workers`` sizes the
        pool), or None for the ambient backend from :func:`use_backend`.
    layers:
        Layer stack override — kind names, spec dicts, or spec objects.
        Defaults to ``config.layers`` when non-empty, else the ambient
        stack from :func:`use_layers`.
    snapshot:
        Path (or binary file object) of a checksummed v2 snapshot to warm
        start from.  The snapshot's config/protected/fail-policy are used
        (``config``/``protected`` must be None), its recorded layer stack
        is re-wrapped (explicit ``layers`` overrides), and any cuckoo
        verification table rides along.
    """
    resolved = _resolve_backend(backend, workers)

    if snapshot is not None:
        if config is not None or protected is not None or config_fields:
            raise TypeError("snapshot restore takes its config and protected "
                            "space from the snapshot; do not pass them")
        if apd is not None:
            raise TypeError("snapshots never hold APD state; attach the "
                            "policy after restoring")
        return _build_from_snapshot(
            snapshot, resolved, fail_policy=fail_policy, telemetry=telemetry,
            mp_context=mp_context, layers=layers)

    if layers is None:
        config_layers = getattr(config, "layers", ()) if config is not None else ()
        layers = config_layers or get_layers()
    layers = normalize_layers(layers)

    builder = _require_backend_builder(resolved.name)
    filt = builder(config, protected, workers=resolved.workers,
                   start_time=start_time, apd=apd, fail_policy=fail_policy,
                   telemetry=telemetry, mp_context=mp_context,
                   config_fields=config_fields)
    return _apply_layers(filt, layers, telemetry=telemetry)


def _build_from_snapshot(snapshot, resolved: ExecutionBackend, *,
                         fail_policy, telemetry, mp_context, layers):
    import numpy as np

    from repro.core.persistence import load_filter

    loaded = load_filter(snapshot)  # validates geometry + checksums
    restored_layers = getattr(loaded, "layers", ())
    inner = getattr(loaded, "inner", loaded)
    if layers is None:
        layers = restored_layers
    layers = normalize_layers(layers)
    if fail_policy is None:
        fail_policy = inner.fail_policy

    vectors = np.stack([vec.as_numpy() for vec in inner.bitmap.vectors])
    state = dict(
        current_index=inner.bitmap.current_index,
        bitmap_rotations=inner.bitmap.rotations,
        next_rotation=inner.next_rotation,
        stats=inner.stats.as_dict(),
    )
    builder = _require_backend_builder(resolved.name)
    start_time = inner.next_rotation - inner.config.rotation_interval
    filt = builder(inner.config, inner.protected, workers=resolved.workers,
                   start_time=start_time, apd=None, fail_policy=fail_policy,
                   telemetry=telemetry, mp_context=mp_context,
                   config_fields={})
    filt.apply_snapshot_state(vectors, **state)
    filt = _apply_layers(filt, layers, telemetry=telemetry)
    # Hand the restored verification table to the re-wrapped stack so warm
    # starts do not forget confirmed flows.
    table = getattr(loaded, "table", None)
    if table is not None and hasattr(filt, "apply_table_state"):
        if layers == tuple(restored_layers):
            filt.apply_table_state(table.copy())
    return filt
