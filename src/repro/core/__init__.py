"""The paper's primary contribution: the {k x n}-bitmap filter and its analysis.

Modules
-------
- :mod:`repro.core.bitvector` — fixed-size bit vectors (the Bloom-filter rows).
- :mod:`repro.core.hashing` — the m shared n-bit hash functions.
- :mod:`repro.core.bitmap` — the {k x n}-bitmap with ``rotate`` (Algorithm 1).
- :mod:`repro.core.bitmap_filter` — ``b.filter`` (Algorithm 2) plus timing.
- :mod:`repro.core.parameters` — Equations (1)-(5) and the parameter advisor.
- :mod:`repro.core.apd` — adaptive packet dropping (Section 5.3).
- :mod:`repro.core.hole_punch` — hole punching for active protocols (Sec. 5.1).
"""

from repro.core.apd import (
    AdaptiveDroppingPolicy,
    BandwidthIndicator,
    PacketRatioIndicator,
    classify_signal_packet,
)
from repro.core.bitmap import Bitmap
from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig, Decision
from repro.core.bitvector import BitVector
from repro.core.hashing import HashFamily
from repro.core.hole_punch import HolePuncher, hole_punch_packet
from repro.core.parameters import (
    BitmapParameters,
    ParameterAdvisor,
    expected_utilization,
    insider_utilization_increase,
    max_supported_connections,
    memory_bytes,
    optimal_num_hashes,
    penetration_probability,
    penetration_probability_for_load,
)

__all__ = [
    "AdaptiveDroppingPolicy",
    "BandwidthIndicator",
    "PacketRatioIndicator",
    "classify_signal_packet",
    "Bitmap",
    "BitmapFilter",
    "BitmapFilterConfig",
    "Decision",
    "BitVector",
    "HashFamily",
    "HolePuncher",
    "hole_punch_packet",
    "BitmapParameters",
    "ParameterAdvisor",
    "expected_utilization",
    "insider_utilization_increase",
    "max_supported_connections",
    "memory_bytes",
    "optimal_num_hashes",
    "penetration_probability",
    "penetration_probability_for_load",
]
