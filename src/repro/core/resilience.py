"""Degraded-mode primitives: what an inline filter does when it is broken.

An inline bitmap filter is a single point of failure for the client
network's inbound traffic.  When the filter process is down (crash, wedged
rotation thread, maintenance) the edge router must still decide what to do
with every inbound packet, and the only two coherent answers are the
classic ones:

- **fail-open** — admit everything; the network is unprotected but
  reachable (availability over security);
- **fail-closed** — drop all inbound; the network is protected but
  unreachable (security over availability).

:class:`FailPolicy` names the choice; both :class:`~repro.core.bitmap_filter.BitmapFilter`
(for its own down state) and :class:`~repro.sim.router.EdgeRouter` (for
filter exceptions) consume it.  The chaos experiment
(``python -m repro resilience``) measures the cost of each choice.
"""

from __future__ import annotations

import enum


class FailPolicy(enum.Enum):
    """What to do with inbound traffic while the filter is unavailable."""

    FAIL_OPEN = "fail_open"      # admit all inbound (availability wins)
    FAIL_CLOSED = "fail_closed"  # drop all inbound (security wins)


class FilterUnavailableError(RuntimeError):
    """Raised when an operation requires a live filter but it is down."""
