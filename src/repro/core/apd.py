"""Adaptive packet dropping (APD) — Section 5.3.

When the only goal is mitigating *bandwidth* attacks, dropping every
unmatched incoming packet is unnecessarily strict.  An APD-enabled bitmap
filter runs as usual, but when the bitmap says DROP the edge router drops
the packet only with a probability given by an *indicator*:

- :class:`BandwidthIndicator` — drop probability equals the monitored
  incoming-link bandwidth utilization ``U_b``.
- :class:`PacketRatioIndicator` — drop probability derived from the ratio
  ``r = P_in / P_out`` with two thresholds ``l < h``: 0 below ``l``, 1 at or
  above ``h``, linear in between.

APD also changes the *marking* policy: outgoing TCP *signal* packets that a
scan would elicit (SYN+ACK, FIN+ACK, RST, RST+ACK) must not mark the bitmap,
otherwise a SYN/FIN scan whose probes are admitted while the drop
probability is low would trick the victims' replies into punching durable
holes.  Lone SYN or lone FIN packets (client-initiated opens/closes) still
mark.  :func:`classify_signal_packet` implements that table.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Protocol, Tuple

from repro.net.packet import Packet, TcpFlags


def classify_signal_packet(proto: int, flags: TcpFlags) -> bool:
    """Return True if an outgoing packet is a *non-marking signal* packet.

    Implements the Section 5.3 marking policy.  Returns ``True`` exactly for
    the outgoing TCP packets that must **not** mark bit vectors:
    SYN+ACK, FIN+ACK, RST, and RST+ACK.  UDP, TCP data/ACK packets, and lone
    SYN / lone FIN packets return ``False`` (they mark as usual).
    """
    from repro.net.protocols import IPPROTO_TCP

    if proto != IPPROTO_TCP:
        return False
    if flags & TcpFlags.RST:
        return True
    has_ack = bool(flags & TcpFlags.ACK)
    if flags & TcpFlags.SYN:
        return has_ack
    if flags & TcpFlags.FIN:
        return has_ack
    return False


class SlidingWindowCounter:
    """Per-second binned sliding-window counter for rate estimation."""

    def __init__(self, window: float = 10.0, bin_width: float = 1.0):
        if window <= 0 or bin_width <= 0:
            raise ValueError("window and bin width must be positive")
        self._window = window
        self._bin_width = bin_width
        self._bins: Deque[Tuple[int, float]] = deque()  # (bin index, amount)
        self._total = 0.0

    def add(self, ts: float, amount: float = 1.0) -> None:
        bin_index = int(ts / self._bin_width)
        self._expire(bin_index)
        if self._bins and self._bins[-1][0] == bin_index:
            last_index, last_amount = self._bins[-1]
            self._bins[-1] = (last_index, last_amount + amount)
        else:
            self._bins.append((bin_index, amount))
        self._total += amount

    def total(self, now: Optional[float] = None) -> float:
        if now is not None:
            self._expire(int(now / self._bin_width))
        return self._total

    def rate(self, now: float) -> float:
        """Average amount per second over the window ending at ``now``."""
        return self.total(now) / self._window

    def _expire(self, current_bin: int) -> None:
        horizon = current_bin - int(self._window / self._bin_width)
        while self._bins and self._bins[0][0] <= horizon:
            _, amount = self._bins.popleft()
            self._total -= amount


class DropIndicator(Protocol):
    """Anything that can quote the current drop probability."""

    def observe_outgoing(self, pkt: Packet) -> None: ...

    def observe_incoming(self, pkt: Packet) -> None: ...

    def drop_probability(self) -> float: ...


class BandwidthIndicator:
    """APD design 1: drop probability = incoming bandwidth utilization U_b."""

    def __init__(self, link_capacity_bps: float, window: float = 5.0):
        if link_capacity_bps <= 0:
            raise ValueError("link capacity must be positive")
        self._capacity = link_capacity_bps
        self._bytes = SlidingWindowCounter(window=window)
        self._now = 0.0

    def observe_outgoing(self, pkt: Packet) -> None:
        self._now = max(self._now, pkt.ts)

    def observe_incoming(self, pkt: Packet) -> None:
        self._now = max(self._now, pkt.ts)
        self._bytes.add(pkt.ts, pkt.size)

    def utilization(self) -> float:
        bits_per_second = self._bytes.rate(self._now) * 8.0
        return min(1.0, bits_per_second / self._capacity)

    def drop_probability(self) -> float:
        return self.utilization()


class PacketRatioIndicator:
    """APD design 2: drop probability from the in/out packet-count ratio.

    With ``r = P_in / P_out`` over the monitoring window and thresholds
    ``l < h``::

        p = 0              if r < l
        p = (r - l)/(h - l) if l <= r < h
        p = 1              if r >= h
    """

    def __init__(self, low: float = 1.5, high: float = 4.0, window: float = 5.0):
        if not low < high:
            raise ValueError(f"thresholds must satisfy l < h, got l={low}, h={high}")
        self._low = low
        self._high = high
        self._in = SlidingWindowCounter(window=window)
        self._out = SlidingWindowCounter(window=window)
        self._now = 0.0

    def observe_outgoing(self, pkt: Packet) -> None:
        self._now = max(self._now, pkt.ts)
        self._out.add(pkt.ts)

    def observe_incoming(self, pkt: Packet) -> None:
        self._now = max(self._now, pkt.ts)
        self._in.add(pkt.ts)

    def ratio(self) -> float:
        outgoing = self._out.total(self._now)
        incoming = self._in.total(self._now)
        if outgoing == 0:
            # No outgoing traffic at all: any incoming traffic is unsolicited.
            return float("inf") if incoming else 0.0
        return incoming / outgoing

    def drop_probability(self) -> float:
        r = self.ratio()
        if r < self._low:
            return 0.0
        if r >= self._high:
            return 1.0
        return (r - self._low) / (self._high - self._low)


@dataclass
class ApdStats:
    admitted: int = 0
    dropped: int = 0


class AdaptiveDroppingPolicy:
    """Glue between an indicator and the bitmap filter.

    The filter calls :meth:`observe_outgoing` / :meth:`observe_incoming` for
    accounting, :meth:`should_mark` before marking an outgoing packet, and
    :meth:`should_drop` when the bitmap verdict is DROP.
    """

    def __init__(self, indicator: DropIndicator, seed: int = 0,
                 signal_policy: bool = True):
        self._indicator = indicator
        self._rng = random.Random(seed)
        self._signal_policy = signal_policy
        self.stats = ApdStats()

    @property
    def indicator(self) -> DropIndicator:
        return self._indicator

    def observe_outgoing(self, pkt: Packet) -> None:
        self._indicator.observe_outgoing(pkt)

    def observe_incoming(self, pkt: Packet) -> None:
        self._indicator.observe_incoming(pkt)

    def should_mark(self, pkt: Packet) -> bool:
        """Marking policy: suppress non-marking signal packets.

        With ``signal_policy=False`` (the ablation configuration) every
        outgoing packet marks, reproducing the vulnerability Section 5.3
        warns about: scan-elicited replies punch holes for the scanner.
        """
        if not self._signal_policy:
            return True
        return not classify_signal_packet(pkt.proto, pkt.flags)

    def should_drop(self) -> bool:
        """Randomized drop decision for a bitmap-rejected packet."""
        probability = self._indicator.drop_probability()
        if self._rng.random() < probability:
            self.stats.dropped += 1
            return True
        self.stats.admitted += 1
        return False
