"""Platform-independent operation accounting for the Table 1 comparison.

Wall-clock micro-benchmarks depend on the host; the complexity claims of
Table 1 do not.  This module instruments the three filter data structures
with *operation counters* — hash evaluations, memory-word touches, pointer
dereferences, key comparisons — so the O(1) / O(log n) / O(n) columns can be
asserted deterministically.

The counters model a straightforward hardware mapping:

- bitmap: one hash-pair evaluation per packet + ``m`` bit reads (lookup) or
  ``m*k`` bit writes (mark); rotation touches ``2**n / w`` words.
- hash+linked-list: one hash evaluation + one pointer dereference per chain
  node visited; GC visits every node and every bucket head.
- AVL tree: one key comparison + one pointer dereference per node on the
  root-to-target path, plus rebalancing writes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.bitmap import Bitmap
from repro.core.hashing import HashFamily
from repro.net.flow import BitmapKey, FlowKey
from repro.spi.avltree import AvlTree
from repro.spi.base import FlowState
from repro.spi.hashlist import FlowHashTable

#: Machine word size used to count memset cost, in bits.
WORD_BITS = 64


@dataclass
class OpCounts:
    """Abstract operation counts for one batch of operations."""

    hash_evaluations: int = 0
    memory_reads: int = 0
    memory_writes: int = 0
    pointer_derefs: int = 0
    key_comparisons: int = 0

    @property
    def total(self) -> int:
        return (self.hash_evaluations + self.memory_reads + self.memory_writes
                + self.pointer_derefs + self.key_comparisons)

    def per_op(self, operations: int) -> "OpCounts":
        if operations <= 0:
            raise ValueError("need at least one operation")
        return OpCounts(
            hash_evaluations=self.hash_evaluations // operations,
            memory_reads=self.memory_reads // operations,
            memory_writes=self.memory_writes // operations,
            pointer_derefs=self.pointer_derefs // operations,
            key_comparisons=self.key_comparisons // operations,
        )


class CountingBitmap:
    """A {k x n}-bitmap wrapper that counts abstract operations."""

    def __init__(self, num_vectors: int, order: int, num_hashes: int, seed: int = 0):
        self.bitmap = Bitmap(num_vectors, order)
        self.hashes = HashFamily(num_hashes, order, seed)
        self.num_hashes = num_hashes
        self.counts = OpCounts()

    def mark(self, key: BitmapKey) -> None:
        self.counts.hash_evaluations += 1  # one double-hash pair derives all m
        indices = self.hashes.indices(key)
        self.bitmap.mark(indices)
        self.counts.memory_writes += self.num_hashes * self.bitmap.num_vectors

    def lookup(self, key: BitmapKey) -> bool:
        self.counts.hash_evaluations += 1
        indices = self.hashes.indices(key)
        hit = self.bitmap.test_current(indices)
        self.counts.memory_reads += self.num_hashes  # worst case: all m read
        return hit

    def rotate(self) -> None:
        self.bitmap.rotate()
        self.counts.memory_writes += (1 << self.bitmap.order) // WORD_BITS


class CountingFlowTable:
    """A hash+linked-list store that counts chain traversal work."""

    def __init__(self, num_buckets: int = 16384):
        self.table = FlowHashTable(num_buckets)
        self.num_buckets = num_buckets
        self.counts = OpCounts()

    def _walk(self, key: FlowKey) -> Tuple[int, Optional[FlowState]]:
        """Walk the chain for ``key``; returns (nodes visited, state)."""
        index = self.table._bucket_index(key)
        node = self.table._buckets[index]
        visited = 0
        while node is not None:
            visited += 1
            if node.key == key:
                return visited, node.state
            node = node.next
        return visited, None

    def insert(self, key: FlowKey, state: FlowState) -> None:
        self.counts.hash_evaluations += 1
        visited, existing = self._walk(key)
        self.counts.pointer_derefs += visited + 1
        self.counts.key_comparisons += visited
        if existing is None:
            self.table.insert(key, state)
            self.counts.memory_writes += 2  # node init + bucket head

    def lookup(self, key: FlowKey) -> Optional[FlowState]:
        self.counts.hash_evaluations += 1
        visited, state = self._walk(key)
        self.counts.pointer_derefs += visited + 1
        self.counts.key_comparisons += visited
        return state

    def gc(self, now: float) -> int:
        # The sweep dereferences every bucket head and every node.
        self.counts.pointer_derefs += self.num_buckets + len(self.table)
        self.counts.memory_reads += len(self.table)  # expiry check per node
        return self.table.sweep_expired(now)


class CountingAvlTree:
    """An AVL tree wrapper that counts path length and rebalancing work."""

    def __init__(self):
        self.tree = AvlTree()
        self.counts = OpCounts()

    def _path_length(self, key: FlowKey) -> int:
        node = self.tree._root
        depth = 0
        while node is not None:
            depth += 1
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                break
        return depth

    def insert(self, key: FlowKey, state: FlowState) -> None:
        depth = self._path_length(key)
        self.counts.key_comparisons += max(depth, 1) * 2  # two-way compares
        self.counts.pointer_derefs += depth + 1
        inserted = self.tree.put(key, state)
        if inserted:
            # Height updates + possible rotation along the path back up.
            self.counts.memory_writes += depth + 2

    def lookup(self, key: FlowKey) -> Optional[FlowState]:
        depth = self._path_length(key)
        self.counts.key_comparisons += max(depth, 1) * 2
        self.counts.pointer_derefs += depth
        return self.tree.get(key)

    def gc(self, now: float) -> int:
        size = len(self.tree)
        self.counts.pointer_derefs += 2 * size  # in-order traversal edges
        self.counts.memory_reads += size
        expired = [key for key, state in self.tree.items() if state.expires_at <= now]
        for key in expired:
            self.tree.remove(key)
        return len(expired)


@dataclass
class CostProfile:
    """Per-operation op counts at one population size."""

    population: int
    insert: OpCounts
    lookup: OpCounts
    gc: OpCounts


def profile_structures(
    populations: Tuple[int, ...] = (1_000, 4_000, 16_000),
    probes: int = 1_000,
    order: int = 20,
    seed: int = 0,
) -> Dict[str, List[CostProfile]]:
    """Measure abstract op counts for all three structures.

    Returns per-structure lists of :class:`CostProfile`, one per population
    size, suitable for asserting the Table 1 complexity columns exactly.
    """
    rng = random.Random(seed)

    def flow_keys(count: int) -> List[FlowKey]:
        return [
            (6, rng.getrandbits(32), rng.getrandbits(16), rng.getrandbits(32),
             rng.getrandbits(16))
            for _ in range(count)
        ]

    results: Dict[str, List[CostProfile]] = {
        "bitmap filter": [], "hash+link-list": [], "AVL-tree": [],
    }
    for population in populations:
        base = flow_keys(population)
        extra = flow_keys(probes)

        bitmap = CountingBitmap(4, order, 3)
        for key in base:
            bitmap.mark(key[:4])
        bitmap.counts = OpCounts()
        for key in extra:
            bitmap.mark(key[:4])
        insert_counts = bitmap.counts
        bitmap.counts = OpCounts()
        for key in extra:
            bitmap.lookup(key[:4])
        lookup_counts = bitmap.counts
        bitmap.counts = OpCounts()
        bitmap.rotate()
        results["bitmap filter"].append(CostProfile(
            population, insert_counts.per_op(probes),
            lookup_counts.per_op(probes), bitmap.counts))

        table = CountingFlowTable()
        for key in base:
            table.insert(key, FlowState(1e18))
        table.counts = OpCounts()
        for key in extra:
            table.insert(key, FlowState(1e18))
        insert_counts = table.counts
        table.counts = OpCounts()
        for key in extra:
            table.lookup(key)
        lookup_counts = table.counts
        table.counts = OpCounts()
        table.gc(0.0)
        results["hash+link-list"].append(CostProfile(
            population, insert_counts.per_op(probes),
            lookup_counts.per_op(probes), table.counts))

        tree = CountingAvlTree()
        for key in base:
            tree.insert(key, FlowState(1e18))
        tree.counts = OpCounts()
        for key in extra:
            tree.insert(key, FlowState(1e18))
        insert_counts = tree.counts
        tree.counts = OpCounts()
        for key in extra:
            tree.lookup(key)
        lookup_counts = tree.counts
        tree.counts = OpCounts()
        tree.gc(0.0)
        results["AVL-tree"].append(CostProfile(
            population, insert_counts.per_op(probes),
            lookup_counts.per_op(probes), tree.counts))
    return results
