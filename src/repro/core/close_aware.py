"""A close-aware bitmap filter — extending the paper's design space.

Section 4.3 concedes the one precision the bitmap lacks: "the SPI filter
knows the exact time of closed connections and can therefore drop packets
more precisely".  Packets arriving shortly after a connection's FIN/RST
still match the bitmap (the mark lives for up to Te) but a close-tracking
SPI filter drops them.

This module closes most of that gap with Bloom-only state: a second,
*tombstone* bitmap records the keys of closed flows.  Two twists make it
work without per-flow state:

1. **Maturation.**  Tombstone marks are written to every vector *except*
   the current one, and lookups consult only the current vector — so a
   tombstone takes effect only at the next tombstone rotation, between 0
   and ``grace`` seconds after the close.  The FIN/ACK close handshake
   therefore still passes, mirroring the SPI filter's ``close_grace``.
2. **Revival.**  Any outgoing *non-closing* packet on a flow clears
   nothing (Bloom filters cannot delete) but re-marks the data bitmap, and
   tombstones expire after roughly ``(k_t - 1) * grace`` seconds, bounding
   the damage of tombstone hash collisions on reused tuples.

An incoming packet passes iff its key is marked in the data bitmap AND not
(yet) tombstoned.  Memory cost: one extra {k_t x n} bitmap.  Collateral
false-positive risk: a legitimate flow whose key collides with a recent
close — probability ``U_t ** m`` with the tombstone utilization ``U_t``
tiny (only closes mark it).

``benchmarks/test_ablation_closeaware.py`` measures where this lands
between the plain bitmap and the SPI filter on post-close stragglers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bitmap import Bitmap
from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig, Decision
from repro.core.filter_api import PacketFilterMixin
from repro.net.address import AddressSpace
from repro.net.flow import bitmap_key_incoming, bitmap_key_outgoing
from repro.net.packet import Direction, Packet, TcpFlags
from repro.net.protocols import IPPROTO_TCP

_CLOSING = int(TcpFlags.FIN | TcpFlags.RST)


@dataclass(frozen=True)
class CloseAwareConfig:
    """Parameters of the tombstone side of a close-aware filter."""

    grace: float = 2.5          # tombstone rotation interval (activation delay)
    lifetime: float = 20.0      # how long a matured tombstone blocks

    def __post_init__(self) -> None:
        if self.grace <= 0 or self.lifetime <= 0:
            raise ValueError("grace and lifetime must be positive")
        if self.lifetime < 2 * self.grace:
            raise ValueError("lifetime must cover at least two grace periods")

    @property
    def num_vectors(self) -> int:
        """k_t = ceil(lifetime / grace) + 1 (the always-fresh current one)."""
        import math

        return math.ceil(self.lifetime / self.grace) + 1


class TombstoneBitmap:
    """A rotating bitmap whose marks activate one rotation after writing.

    ``mark`` writes every vector except the current; ``test`` reads only the
    current vector.  A mark is therefore invisible until the rotation after
    it was written and expires when its last vector is cleared.
    """

    def __init__(self, num_vectors: int, order: int):
        self._bitmap = Bitmap(num_vectors, order)

    def mark(self, indices) -> None:
        indices = tuple(indices)
        current = self._bitmap.current_index
        for i, vector in enumerate(self._bitmap.vectors):
            if i != current:
                vector.set_many(indices)

    def test(self, indices) -> bool:
        return self._bitmap.test_current(indices)

    def rotate(self) -> None:
        self._bitmap.rotate()

    @property
    def bitmap(self) -> Bitmap:
        return self._bitmap

    def utilization(self) -> float:
        return self._bitmap.utilization()


class CloseAwareBitmapFilter(PacketFilterMixin):
    """The paper's bitmap filter plus tombstoned closes.

    Same interface as :class:`~repro.core.bitmap_filter.BitmapFilter` for
    the scalar path (``process``/``advance_to``), with the extra tombstone
    bookkeeping.  Memory: ``config.memory_bytes`` for the data bitmap plus
    ``tombstones.memory_bytes``.
    """

    def __init__(
        self,
        config: BitmapFilterConfig,
        protected: AddressSpace,
        close_config: CloseAwareConfig = CloseAwareConfig(),
        start_time: float = 0.0,
    ):
        self.config = config
        self.close_config = close_config
        self.protected = protected
        self._inner = BitmapFilter(config, protected, start_time=start_time)
        self.tombstones = TombstoneBitmap(close_config.num_vectors, config.order)
        self._next_tombstone_rotation = start_time + close_config.grace
        self.closes_recorded = 0
        self.dropped_after_close = 0

    # -- time ---------------------------------------------------------------

    def advance_to(self, ts: float) -> None:
        self._inner.advance_to(ts)
        while self._next_tombstone_rotation <= ts:
            self.tombstones.rotate()
            self._next_tombstone_rotation += self.close_config.grace

    # -- filtering -------------------------------------------------------------

    def process(self, pkt: Packet) -> Decision:
        self.advance_to(pkt.ts)
        direction = pkt.direction(self.protected)
        if direction is Direction.OUTGOING:
            self._inner.stats.outgoing += 1
            key = bitmap_key_outgoing(pkt.proto, pkt.src, pkt.sport, pkt.dst)
            indices = self._inner.hashes.indices(key)
            self._inner.bitmap.mark(indices)
            if pkt.proto == IPPROTO_TCP and int(pkt.flags) & _CLOSING:
                self.tombstones.mark(indices)
                self.closes_recorded += 1
            return Decision.PASS
        if direction is Direction.INCOMING:
            self._inner.stats.incoming += 1
            key = bitmap_key_incoming(pkt.proto, pkt.dst, pkt.dport, pkt.src)
            indices = self._inner.hashes.indices(key)
            if not self._inner.bitmap.test_current(indices):
                self._inner.stats.incoming_dropped += 1
                return Decision.DROP
            if self.tombstones.test(indices):
                self._inner.stats.incoming_dropped += 1
                self.dropped_after_close += 1
                return Decision.DROP
            self._inner.stats.incoming_passed += 1
            # An incoming FIN also tombstones the flow (either side closes).
            if pkt.proto == IPPROTO_TCP and int(pkt.flags) & _CLOSING:
                self.tombstones.mark(indices)
                self.closes_recorded += 1
            return Decision.PASS
        return Decision.PASS

    def process_batch(self, packets, exact: bool = True) -> np.ndarray:
        """Batch wrapper (scalar loop; this is an ablation filter).

        ``exact`` is accepted for PacketFilter conformance; the scalar loop
        is always exact.
        """
        verdicts = np.ones(len(packets), dtype=bool)
        for i, pkt in enumerate(packets):
            verdicts[i] = self.process(pkt) is Decision.PASS
        return verdicts

    # -- introspection -------------------------------------------------------------

    @property
    def stats(self):
        return self._inner.stats

    @property
    def memory_bytes(self) -> int:
        return (self.config.memory_bytes
                + self.tombstones.bitmap.memory_bytes)

    def __repr__(self) -> str:
        return (f"CloseAwareBitmapFilter({self._inner!r}, "
                f"tombstones=k{self.close_config.num_vectors} "
                f"grace={self.close_config.grace:g}s)")
