"""The {k x n}-bitmap — k bloom-filter bit vectors with rotation (Figure 3).

The bitmap is the storage core of the filter: ``k`` bit vectors of ``2**n``
bits sharing the same m hash functions.  Marks go to **all** vectors; lookups
consult only the **current** vector; :meth:`rotate` (Algorithm 1) advances
the current index and clears the vector that was current, so the vector that
becomes current always holds between ``(k-1)*dt`` and ``k*dt`` seconds of
marking history.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.core.bitvector import BitVector


class Bitmap:
    """A {k x n}-bitmap: ``k`` bit vectors of ``2**n`` bits each."""

    __slots__ = ("_order", "_num_vectors", "_vectors", "_idx", "_rotations",
                 "_peak_utilization")

    def __init__(self, num_vectors: int, order: int):
        if num_vectors < 2:
            raise ValueError(
                f"a bitmap needs at least 2 vectors (one current, one expiring), got {num_vectors}"
            )
        self._order = order
        self._num_vectors = num_vectors
        self._vectors: List[BitVector] = [BitVector(order) for _ in range(num_vectors)]
        self._idx = 0
        self._rotations = 0
        self._peak_utilization = 0.0

    # -- properties ------------------------------------------------------------

    @property
    def order(self) -> int:
        """n — each vector holds 2**n bits."""
        return self._order

    @property
    def num_vectors(self) -> int:
        """k — the number of bloom-filter rows."""
        return self._num_vectors

    @property
    def num_bits_per_vector(self) -> int:
        return 1 << self._order

    @property
    def memory_bytes(self) -> int:
        """Total backing storage: ``k * 2**n / 8`` bytes."""
        return self._num_vectors * (1 << self._order) // 8

    @property
    def current_index(self) -> int:
        return self._idx

    @property
    def rotations(self) -> int:
        """How many times :meth:`rotate` has run."""
        return self._rotations

    @property
    def current(self) -> BitVector:
        """The bit vector lookups are checked against."""
        return self._vectors[self._idx]

    @property
    def vectors(self) -> Sequence[BitVector]:
        return tuple(self._vectors)

    def vector(self, index: int) -> BitVector:
        return self._vectors[index]

    # -- Algorithm 1: b.rotate ---------------------------------------------------

    def rotate(self) -> int:
        """Advance the current index and clear the vector left behind.

        Implements Algorithm 1 verbatim::

            last = idx
            idx  = (idx + 1) mod k
            clear bit-vector[last]
            return idx
        """
        last = self._idx
        # The outgoing current vector is at its fullest right now — sample
        # it so peak_utilization reflects steady state, not the run's tail.
        utilization = self._vectors[last].utilization()
        if utilization > self._peak_utilization:
            self._peak_utilization = utilization
        self._idx = (self._idx + 1) % self._num_vectors
        self._vectors[last].clear()
        self._rotations += 1
        return self._idx

    # -- marking and lookup --------------------------------------------------------

    def mark(self, indices: Iterable[int]) -> None:
        """Set the given bit indices in **all** k vectors (outgoing packets)."""
        indices = tuple(indices)
        for vector in self._vectors:
            vector.set_many(indices)

    def test_current(self, indices: Iterable[int]) -> bool:
        """True iff every index is set in the current vector (incoming lookup)."""
        return self._vectors[self._idx].test_all(indices)

    # -- vectorized twins ------------------------------------------------------------

    def mark_vec(self, index_matrix: np.ndarray) -> None:
        """Vectorized mark: ``index_matrix`` is the (m, N) output of
        :meth:`repro.core.hashing.HashFamily.indices_vec`."""
        flat = index_matrix.reshape(-1)
        for vector in self._vectors:
            vector.set_many_vec(flat)

    def test_current_vec(self, index_matrix: np.ndarray) -> np.ndarray:
        """Vectorized lookup: boolean array of length N, True = all m bits set."""
        current = self._vectors[self._idx]
        hits = current.test_many_vec(index_matrix.reshape(-1))
        return hits.reshape(index_matrix.shape).all(axis=0)

    # -- introspection ------------------------------------------------------------------

    def utilization(self) -> float:
        """Utilization U of the *current* vector (Equation 1's U)."""
        return self._vectors[self._idx].utilization()

    @property
    def peak_utilization(self) -> float:
        """Highest pre-rotation utilization seen so far (steady-state U)."""
        return max(self._peak_utilization, self.utilization())

    def utilizations(self) -> List[float]:
        """Utilization of every vector, in index order."""
        return [vector.utilization() for vector in self._vectors]

    def is_empty(self) -> bool:
        return not any(vector.any() for vector in self._vectors)

    def clear_all(self) -> None:
        """Reset the whole bitmap (not part of the paper's algorithms)."""
        for vector in self._vectors:
            vector.clear()
        self._idx = 0
        self._peak_utilization = 0.0

    def __repr__(self) -> str:
        return (
            f"Bitmap(k={self._num_vectors}, n={self._order}, idx={self._idx}, "
            f"U={self.utilization():.4f}, mem={self.memory_bytes}B)"
        )
