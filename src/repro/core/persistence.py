"""Checkpoint/restore for bitmap-filter state.

An operator restarting an edge router wants to resume filtering without a
Te-long warm-up window in which every inbound reply would be dropped.  These
helpers snapshot a :class:`~repro.core.bitmap_filter.BitmapFilter` — the k
bit vectors, the rotation index/schedule, the configuration, and the
counters — into a single ``.npz`` file and restore it bit-exactly.

The protected address space is stored too, so a snapshot is self-contained;
restoring verifies the configuration rather than trusting the file.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig, FilterStats
from repro.net.address import AddressSpace, IPv4Network

_FORMAT_VERSION = 1


def save_filter(filt: BitmapFilter, path: Union[str, Path]) -> None:
    """Snapshot a filter's complete state to ``path`` (npz)."""
    if filt.apd is not None:
        raise ValueError("APD-enabled filters hold indicator state that is "
                         "not checkpointable; snapshot the plain filter")
    vectors = np.stack([vec.as_numpy() for vec in filt.bitmap.vectors])
    meta = {
        "format_version": _FORMAT_VERSION,
        "config": asdict(filt.config),
        "current_index": filt.bitmap.current_index,
        "rotations": filt.bitmap.rotations,
        "next_rotation": filt.next_rotation,
        "stats": filt.stats.as_dict(),
        "protected_networks": [str(net) for net in filt.protected.networks],
    }
    np.savez_compressed(Path(path), vectors=vectors, metadata=json.dumps(meta))


def load_filter(path: Union[str, Path]) -> BitmapFilter:
    """Restore a filter snapshot written by :func:`save_filter`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        vectors = archive["vectors"]
        meta = json.loads(str(archive["metadata"]))
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported snapshot version {meta.get('format_version')}")

    config = BitmapFilterConfig(**meta["config"])
    protected = AddressSpace(
        [IPv4Network.parse(text) for text in meta["protected_networks"]]
    )
    filt = BitmapFilter(config, protected)

    expected_shape = (config.num_vectors, (1 << config.order) // 8)
    if vectors.shape != expected_shape:
        raise ValueError(
            f"snapshot vectors {vectors.shape} do not match config {expected_shape}"
        )
    for index, vec in enumerate(filt.bitmap.vectors):
        vec.as_numpy()[:] = vectors[index]
    filt.bitmap._idx = int(meta["current_index"])
    filt.bitmap._rotations = int(meta["rotations"])
    filt._next_rotation = float(meta["next_rotation"])
    filt.stats = FilterStats(**meta["stats"])
    return filt
