"""Checkpoint/restore for bitmap-filter state.

An operator restarting an edge router wants to resume filtering without a
Te-long warm-up window in which every inbound reply would be dropped.  These
helpers snapshot a :class:`~repro.core.bitmap_filter.BitmapFilter` — the k
bit vectors, the rotation index/schedule, the configuration, and the
counters — into a single ``.npz`` file and restore it bit-exactly.

The protected address space is stored too, so a snapshot is self-contained;
restoring verifies the configuration rather than trusting the file, and a
SHA-256 over the stacked bit vectors is checked on load so a corrupted
snapshot raises :class:`SnapshotCorruptionError` instead of silently
restoring damaged filter state.

:func:`restore_filter` is the operational entry point: it loads a snapshot
*at a given wall-clock time*, catches up every rotation missed while the
filter was down, and opens a warm-up grace window sized to the staleness so
a restart does not drop every in-flight flow's inbound packets.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path
from typing import IO, Optional, Union

import numpy as np

from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig
from repro.core.cuckoo import CuckooFlowTable
from repro.core.filter_api import _apply_layers, normalize_layers
from repro.core.hybrid import HybridVerifiedFilter
from repro.core.resilience import FailPolicy
from repro.net.address import AddressSpace, IPv4Network

#: Version 2 added the vector checksum and the fail policy; the optional
#: ``layers``/``cuckoo`` section (hybrid verification state) rides on the
#: same version — old readers never see the extra keys.
_FORMAT_VERSION = 2

_CUCKOO_ARRAYS = ("cuckoo_key_lo", "cuckoo_key_hi", "cuckoo_stamp")

SnapshotTarget = Union[str, Path, IO[bytes]]


class SnapshotCorruptionError(ValueError):
    """A snapshot's stored state does not match its integrity metadata."""


def _as_target(path: SnapshotTarget):
    """File objects pass through; everything else becomes a Path."""
    if hasattr(path, "write") or hasattr(path, "read"):
        return path
    return Path(path)


def _vector_digest(vectors: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(vectors).tobytes()).hexdigest()


def save_filter(filt: Union[BitmapFilter, HybridVerifiedFilter],
                path: SnapshotTarget) -> None:
    """Snapshot a filter's complete state to ``path`` (npz or binary file object).

    A :class:`~repro.core.hybrid.HybridVerifiedFilter` stack adds a
    ``layers`` record plus a separately checksummed ``cuckoo`` section so a
    warm restart keeps its exact verification table.
    """
    if filt.apd is not None:
        raise ValueError("APD-enabled filters hold indicator state that is "
                         "not checkpointable; snapshot the plain filter")
    if filt.is_down:
        raise ValueError("refusing to snapshot a failed filter; recover it "
                         "first so the rotation schedule is live")
    extra_arrays = {}
    vectors = np.stack([vec.as_numpy() for vec in filt.bitmap.vectors])
    meta = {
        "format_version": _FORMAT_VERSION,
        "config": asdict(filt.config),
        "current_index": filt.bitmap.current_index,
        "rotations": filt.bitmap.rotations,
        "next_rotation": filt.next_rotation,
        "stats": filt.stats.as_dict(),
        "protected_networks": [str(net) for net in filt.protected.networks],
        "fail_policy": filt.fail_policy.value,
        "vectors_sha256": _vector_digest(vectors),
    }
    if isinstance(filt, HybridVerifiedFilter):
        # A hybrid over a *parallel* inner works too: the parallel filters
        # reconstruct the serial view (vectors, stats, schedule) on demand,
        # and the cuckoo table lives in the wrapper itself.
        cuckoo_arrays, cuckoo_meta = filt.table.export_state()
        extra_arrays.update(cuckoo_arrays)
        meta["layers"] = [spec.as_dict() for spec in filt.layers]
        meta["cuckoo"] = cuckoo_meta
    np.savez_compressed(_as_target(path), vectors=vectors,
                        metadata=json.dumps(meta), **extra_arrays)


def load_filter(path: SnapshotTarget) -> BitmapFilter:
    """Restore a filter snapshot written by :func:`save_filter`.

    Raises :class:`SnapshotCorruptionError` when the stored bit vectors do
    not match the snapshot's checksum or expected shape — restoring damaged
    state would silently change verdicts for up to Te seconds.
    """
    with np.load(_as_target(path), allow_pickle=False) as archive:
        vectors = archive["vectors"]
        meta = json.loads(str(archive["metadata"]))
        cuckoo_arrays = {
            name: archive[name] for name in _CUCKOO_ARRAYS if name in archive
        }
    version = meta.get("format_version")
    if version not in (1, _FORMAT_VERSION):
        raise ValueError(f"unsupported snapshot version {version}")

    config = BitmapFilterConfig(**meta["config"])
    protected = AddressSpace(
        [IPv4Network.parse(text) for text in meta["protected_networks"]]
    )
    fail_policy = FailPolicy(meta.get("fail_policy", FailPolicy.FAIL_CLOSED.value))
    filt = BitmapFilter(config, protected, fail_policy=fail_policy)

    expected_shape = (config.num_vectors, (1 << config.order) // 8)
    if vectors.shape != expected_shape:
        raise SnapshotCorruptionError(
            f"snapshot vectors {vectors.shape} do not match config {expected_shape}"
        )
    stored_digest = meta.get("vectors_sha256")
    if version >= 2:
        if stored_digest is None:
            raise SnapshotCorruptionError(
                "snapshot metadata is missing the vector checksum"
            )
        actual = _vector_digest(vectors)
        if actual != stored_digest:
            raise SnapshotCorruptionError(
                "snapshot bit vectors failed checksum verification "
                f"(stored {stored_digest[:12]}…, computed {actual[:12]}…); "
                "the file is corrupted — fall back to a cold start with a "
                "warm-up grace window instead of trusting this state"
            )
    filt.apply_snapshot_state(
        vectors,
        current_index=int(meta["current_index"]),
        bitmap_rotations=int(meta["rotations"]),
        next_rotation=float(meta["next_rotation"]),
        stats=meta["stats"],
    )

    layer_meta = meta.get("layers")
    if not layer_meta:
        return filt
    wrapped = _apply_layers(filt, normalize_layers(layer_meta))
    cuckoo_meta = meta.get("cuckoo")
    if cuckoo_meta is not None:
        if not cuckoo_arrays:
            raise SnapshotCorruptionError(
                "snapshot metadata records a cuckoo section but the table "
                "arrays are missing")
        table = CuckooFlowTable.from_state(cuckoo_arrays, cuckoo_meta)
        stored = cuckoo_meta.get("sha256")
        actual = table.state_digest()
        if stored is None or actual != stored:
            raise SnapshotCorruptionError(
                "snapshot cuckoo table failed checksum verification "
                f"(stored {str(stored)[:12]}…, computed {actual[:12]}…); "
                "restore the bitmap cold instead of trusting this state")
        wrapped.apply_table_state(table)
    return wrapped


def restore_filter(
    path: SnapshotTarget,
    now: float,
    warmup_grace: Optional[float] = None,
) -> BitmapFilter:
    """Load a snapshot and bring the filter back online at time ``now``.

    Every rotation missed between the snapshot and ``now`` runs immediately
    (missed-rotation catch-up — the schedule is never silently stretched).
    ``warmup_grace`` seconds of grace admit inbound bitmap misses after the
    restart; the default is Te when the snapshot missed at least one rotation
    (marks made since the snapshot are gone) and 0 for a fresh snapshot.
    """
    filt = load_filter(path)
    missed = filt.advance_to(now)
    if warmup_grace is None:
        warmup_grace = filt.config.expiry_timer if missed else 0.0
    if warmup_grace > 0:
        filt.begin_warmup(now + warmup_grace)
    return filt
