"""Hole punching for protocols with server-initiated data channels (Sec. 5.1).

The bitmap filter drops every inbound connection attempt, which breaks
active-mode FTP and peer-to-peer protocols where the *remote* side opens the
data channel.  The fix exploits the fact that the bitmap key omits the
remote port: when client ``c`` expects server ``s`` to connect to local port
``p``, the client first sends any packet from ``(c, p)`` to ``(s, x)`` for a
random ``x``.  That outgoing packet marks the key ``(proto, c, p, s)`` — the
exact key an inbound packet from ``s`` (from *any* source port) to ``(c, p)``
will be checked against — so the server can connect until the mark expires.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.net.packet import Packet, TcpFlags
from repro.net.protocols import EPHEMERAL_PORT_RANGE, IPPROTO_TCP


def hole_punch_packet(
    ts: float,
    proto: int,
    client_addr: int,
    client_port: int,
    server_addr: int,
    random_port: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Packet:
    """Build the outbound packet that opens a hole for an inbound channel.

    The packet travels from ``(client_addr, client_port)`` to
    ``(server_addr, random_port)``; only its source address/port and
    destination address matter to the bitmap, so ``random_port`` is
    arbitrary (the paper calls it ``x``).
    """
    if random_port is None:
        rng = rng or random.Random()
        random_port = rng.randint(*EPHEMERAL_PORT_RANGE)
    flags = TcpFlags.ACK if proto == IPPROTO_TCP else TcpFlags.NONE
    return Packet(
        ts=ts,
        proto=proto,
        src=client_addr,
        sport=client_port,
        dst=server_addr,
        dport=random_port,
        flags=flags,
        size=40,
    )


class HolePuncher:
    """Convenience wrapper bound to one client host.

    >>> puncher = HolePuncher(client_addr)
    >>> pkt = puncher.punch(ts=10.0, local_port=20, server_addr=server)
    >>> bitmap_filter.process(pkt)   # marks (tcp, client, 20, server)

    After processing, an inbound connection from ``server`` (any source
    port) to ``client:20`` passes until the mark expires (Te seconds).
    """

    def __init__(self, client_addr: int, seed: int = 0):
        self._client_addr = client_addr
        self._rng = random.Random(seed)

    def punch(
        self,
        ts: float,
        local_port: int,
        server_addr: int,
        proto: int = IPPROTO_TCP,
    ) -> Packet:
        return hole_punch_packet(
            ts=ts,
            proto=proto,
            client_addr=self._client_addr,
            client_port=local_port,
            server_addr=server_addr,
            rng=self._rng,
        )
