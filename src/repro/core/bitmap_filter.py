"""The bitmap filter: Algorithm 2 (``b.filter``) driven by simulated time.

:class:`BitmapFilter` wraps a :class:`~repro.core.bitmap.Bitmap` with

- direction classification against the protected client address space,
- the directional tuple keys of Section 3.3 (outgoing marks
  ``{saddr, sport, daddr}``; incoming checks ``{daddr, dport, saddr}``),
- timestamp-driven rotation (``b.rotate`` every ``dt`` seconds),
- optional adaptive packet dropping (Section 5.3),
- two batch paths: an *exact* one that preserves per-packet ordering while
  vectorizing the hashing, and a *windowed* one that additionally vectorizes
  the bit operations by processing each rotation window mark-first (see
  ``process_batch_windowed`` for the approximation argument),
- degraded-mode machinery for operational faults: a
  :class:`~repro.core.resilience.FailPolicy` applied while the filter is
  down (:meth:`BitmapFilter.fail` / :meth:`BitmapFilter.recover`), a
  post-restore warm-up grace window (:meth:`BitmapFilter.begin_warmup`),
  and rotation-stall handling with missed-rotation catch-up
  (:meth:`BitmapFilter.stall_rotations` / :meth:`BitmapFilter.resume_rotations`), and
- optional runtime telemetry (see :mod:`repro.telemetry`): admits/drops/
  marks counters per admission path, rotation count/duration, and
  degraded-mode gauges, all behind a single ``is not None`` guard so the
  default (null-registry) hot path pays nothing.

Construction accepts either the legacy positional
:class:`BitmapFilterConfig`, the keyword-only :class:`FilterConfig` (which
also carries fail policy and warm-up grace), or bare keyword fields::

    BitmapFilter(config, protected)                      # legacy, still fine
    BitmapFilter.from_config(FilterConfig(order=16), protected)
    BitmapFilter(protected=protected, order=16, rotation_interval=2.5)
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from repro.core.apd import AdaptiveDroppingPolicy
from repro.core.bitmap import Bitmap
from repro.core.filter_api import Decision, PacketFilterMixin, normalize_layers
from repro.core.hashing import HashFamily
from repro.core.resilience import FailPolicy
from repro.net.address import AddressSpace
from repro.net.flow import bitmap_key_incoming, bitmap_key_outgoing
from repro.net.packet import (
    DIRECTION_INCOMING,
    DIRECTION_INTERNAL,
    DIRECTION_OUTGOING,
    DIRECTION_TRANSIT,
    Direction,
    Packet,
    PacketArray,
)
from repro.telemetry.registry import MetricsRegistry, get_registry

if TYPE_CHECKING:
    pass

__all__ = [
    "BitmapFilter",
    "BitmapFilterConfig",
    "Decision",
    "FilterConfig",
    "FilterStats",
]


@dataclass(frozen=True)
class BitmapFilterConfig:
    """Tunable parameters of a {k x n}-bitmap filter.

    Defaults are the paper's evaluation setup (Section 4.3): a 512 KB
    {4 x 20}-bitmap with 3 hash functions rotating every 5 seconds, i.e.
    an expiry timer ``Te = k * dt = 20`` seconds.
    """

    order: int = 20              # n: each vector has 2**n bits
    num_vectors: int = 4         # k: number of bloom-filter rows
    num_hashes: int = 3          # m: hash functions
    rotation_interval: float = 5.0  # dt seconds
    seed: int = 0x5EED

    def __post_init__(self) -> None:
        if self.rotation_interval <= 0:
            raise ValueError("rotation interval must be positive")
        if self.num_hashes < 1:
            raise ValueError("need at least one hash function")

    @property
    def expiry_timer(self) -> float:
        """Te = k * dt — the nominal lifetime of a mark."""
        return self.num_vectors * self.rotation_interval

    @property
    def guaranteed_window(self) -> float:
        """(k-1) * dt — a mark is *guaranteed* visible for this long."""
        return (self.num_vectors - 1) * self.rotation_interval

    @property
    def memory_bytes(self) -> int:
        return self.num_vectors * (1 << self.order) // 8

    @classmethod
    def paper_default(cls) -> "BitmapFilterConfig":
        """The {4 x 20}-bitmap, m=3, dt=5 configuration of Section 4.3."""
        return cls(order=20, num_vectors=4, num_hashes=3, rotation_interval=5.0)


@dataclass(frozen=True, kw_only=True)
class FilterConfig:
    """Keyword-only construction config for a deployed bitmap filter.

    Bundles the bitmap geometry (k, n), hash family (m, seed), rotation
    timing (Δt), and the *operational* knobs the plain
    :class:`BitmapFilterConfig` never carried — fail policy and warm-up
    grace — into one frozen object.  All fields are keyword-only, so call
    sites name every parameter::

        FilterConfig(order=16, num_vectors=4, rotation_interval=2.5,
                     fail_policy=FailPolicy.FAIL_OPEN, warmup_grace=10.0)

    Feed it to :meth:`BitmapFilter.from_config` (or pass it anywhere a
    ``BitmapFilterConfig`` was accepted before).
    """

    order: int = 20              # n: each vector has 2**n bits
    num_vectors: int = 4         # k: number of bloom-filter rows
    num_hashes: int = 3          # m: hash functions
    rotation_interval: float = 5.0  # dt seconds
    seed: int = 0x5EED           # hash-family seed
    fail_policy: FailPolicy = FailPolicy.FAIL_CLOSED
    warmup_grace: float = 0.0    # grace window opened at construction
    layers: tuple = ()           # layer specs build_filter wraps around the base

    def __post_init__(self) -> None:
        if self.rotation_interval <= 0:
            raise ValueError("rotation interval must be positive")
        if self.num_hashes < 1:
            raise ValueError("need at least one hash function")
        if self.warmup_grace < 0:
            raise ValueError("warm-up grace cannot be negative")
        object.__setattr__(self, "layers", normalize_layers(self.layers))

    def layer_dicts(self) -> list:
        """JSON-safe forms of :attr:`layers` (for describe()/reload)."""
        return [spec.as_dict() for spec in self.layers]

    @property
    def expiry_timer(self) -> float:
        """Te = k * dt — the nominal lifetime of a mark."""
        return self.num_vectors * self.rotation_interval

    @property
    def guaranteed_window(self) -> float:
        """(k-1) * dt — a mark is *guaranteed* visible for this long."""
        return (self.num_vectors - 1) * self.rotation_interval

    @property
    def memory_bytes(self) -> int:
        return self.num_vectors * (1 << self.order) // 8

    def bitmap_config(self) -> BitmapFilterConfig:
        """The plain bitmap-geometry view (what snapshots persist)."""
        return BitmapFilterConfig(
            order=self.order,
            num_vectors=self.num_vectors,
            num_hashes=self.num_hashes,
            rotation_interval=self.rotation_interval,
            seed=self.seed,
        )

    @classmethod
    def from_bitmap_config(cls, config: BitmapFilterConfig,
                           **extra) -> "FilterConfig":
        """Lift a legacy :class:`BitmapFilterConfig` (plus operational extras)."""
        return cls(
            order=config.order,
            num_vectors=config.num_vectors,
            num_hashes=config.num_hashes,
            rotation_interval=config.rotation_interval,
            seed=config.seed,
            **extra,
        )

    @classmethod
    def paper_default(cls) -> "FilterConfig":
        """The {4 x 20}-bitmap, m=3, dt=5 configuration of Section 4.3."""
        return cls()


AnyFilterConfig = Union[BitmapFilterConfig, FilterConfig]


@dataclass
class FilterStats:
    """Counters accumulated by a filter instance."""

    outgoing: int = 0
    incoming: int = 0
    incoming_dropped: int = 0
    incoming_passed: int = 0
    internal: int = 0
    transit: int = 0
    apd_admitted: int = 0  # would-be drops admitted by adaptive dropping
    marks_suppressed: int = 0  # outgoing signal packets not marked (APD policy)
    rotations: int = 0
    degraded_admitted: int = 0   # inbound admitted by FAIL_OPEN while down
    degraded_dropped: int = 0    # inbound dropped by FAIL_CLOSED while down
    warmup_admitted: int = 0     # bitmap misses admitted by the warm-up grace
    unmarked_outgoing: int = 0   # outgoing seen while down (marks lost)

    @property
    def total(self) -> int:
        return self.outgoing + self.incoming + self.internal + self.transit

    @property
    def incoming_drop_rate(self) -> float:
        if not self.incoming:
            return 0.0
        return self.incoming_dropped / self.incoming

    def as_dict(self) -> dict:
        return {
            "outgoing": self.outgoing,
            "incoming": self.incoming,
            "incoming_dropped": self.incoming_dropped,
            "incoming_passed": self.incoming_passed,
            "internal": self.internal,
            "transit": self.transit,
            "apd_admitted": self.apd_admitted,
            "marks_suppressed": self.marks_suppressed,
            "rotations": self.rotations,
            "degraded_admitted": self.degraded_admitted,
            "degraded_dropped": self.degraded_dropped,
            "warmup_admitted": self.warmup_admitted,
            "unmarked_outgoing": self.unmarked_outgoing,
        }


#: Admission-path labels used by the telemetry counters.
_PATHS = ("scalar", "exact_batch", "windowed_batch")


class _FilterInstruments:
    """Bound telemetry instruments for one live-registry filter instance.

    Created only when the registry is enabled; the filter stores ``None``
    otherwise, so every hot-path guard is a single identity check.
    """

    __slots__ = (
        "registry", "marks", "admits", "drops", "rotations",
        "rotation_seconds", "degraded", "stalled", "warmup_until",
        "warmup_admits", "degraded_admits", "degraded_drops",
    )

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self.marks = {
            path: registry.counter(
                "repro_filter_marks_total",
                "Outgoing packets marked into the bitmap, by admission path",
                path=path,
            ) for path in _PATHS
        }
        self.admits = {
            path: registry.counter(
                "repro_filter_admits_total",
                "Incoming packets admitted while the filter is up, by path",
                path=path,
            ) for path in _PATHS
        }
        self.drops = {
            path: registry.counter(
                "repro_filter_drops_total",
                "Incoming packets dropped while the filter is up, by path",
                path=path,
            ) for path in _PATHS
        }
        self.rotations = registry.counter(
            "repro_filter_rotations_total", "Bitmap rotations performed")
        self.rotation_seconds = registry.histogram(
            "repro_filter_rotation_seconds",
            "Wall-clock duration of each bitmap rotation")
        self.degraded = registry.gauge(
            "repro_filter_degraded",
            "1 while the filter is down and verdicts come from the fail policy")
        self.stalled = registry.gauge(
            "repro_filter_rotations_stalled",
            "1 while the rotation timer is wedged")
        self.warmup_until = registry.gauge(
            "repro_filter_warmup_until_seconds",
            "End of the active warm-up grace window in simulated time "
            "(0 when inactive)")
        self.warmup_admits = registry.counter(
            "repro_filter_warmup_admits_total",
            "Bitmap misses admitted by the warm-up grace window")
        self.degraded_admits = registry.counter(
            "repro_filter_degraded_admits_total",
            "Inbound packets admitted by the fail policy while down")
        self.degraded_drops = registry.counter(
            "repro_filter_degraded_drops_total",
            "Inbound packets dropped by the fail policy while down")
        self.degraded.set(0)
        self.stalled.set(0)
        self.warmup_until.set(0)

    def on_rotation(self, boundary_ts: float, seconds: float) -> None:
        """One rotation finished: count it, time it, pulse the Δt samplers."""
        self.rotations.inc()
        self.rotation_seconds.observe(seconds)
        self.registry.tick(boundary_ts)

    @staticmethod
    def stats_snapshot(stats: FilterStats) -> tuple:
        """The stat fields batch accounting diffs against."""
        return (stats.outgoing, stats.incoming_passed,
                stats.incoming_dropped, stats.warmup_admitted)

    def count_batch(self, path: str, stats: FilterStats, before: tuple) -> None:
        """Credit one batch's stat deltas to the per-path counters."""
        outgoing0, passed0, dropped0, warmup0 = before
        marks = stats.outgoing - outgoing0
        admits = stats.incoming_passed - passed0
        drops = stats.incoming_dropped - dropped0
        warmup = stats.warmup_admitted - warmup0
        if marks:
            self.marks[path].inc(marks)
        if admits:
            self.admits[path].inc(admits)
        if drops:
            self.drops[path].inc(drops)
        if warmup:
            self.warmup_admits.inc(warmup)


class BitmapFilter(PacketFilterMixin):
    """A deployed bitmap filter protecting one client address space.

    Implements the unified :class:`~repro.core.filter_api.PacketFilter`
    protocol (``observe_out``/``admit_in`` and their batch variants) on top
    of the generic ``process``/``process_batch`` entry points.
    """

    def __init__(
        self,
        config: Optional[AnyFilterConfig] = None,
        protected: Optional[AddressSpace] = None,
        start_time: float = 0.0,
        apd: Optional[AdaptiveDroppingPolicy] = None,
        fail_policy: Optional[FailPolicy] = None,
        *,
        telemetry: Optional[MetricsRegistry] = None,
        **config_fields,
    ):
        if protected is None:
            raise TypeError("BitmapFilter requires a protected AddressSpace")
        if config is None:
            config = FilterConfig(**config_fields)
        elif config_fields:
            raise TypeError("pass either a config object or bare config "
                            "fields, not both")
        warmup_grace = 0.0
        if isinstance(config, FilterConfig):
            if fail_policy is None:
                fail_policy = config.fail_policy
            warmup_grace = config.warmup_grace
            config = config.bitmap_config()
        if fail_policy is None:
            fail_policy = FailPolicy.FAIL_CLOSED

        self.config = config
        self.protected = protected
        self.bitmap = Bitmap(config.num_vectors, config.order)
        self.hashes = HashFamily(config.num_hashes, config.order, config.seed)
        self.apd = apd
        self.fail_policy = fail_policy
        self.stats = FilterStats()
        self._next_rotation = start_time + config.rotation_interval
        self._down = False
        self._stalled = False
        self._warmup_until = float("-inf")

        registry = telemetry if telemetry is not None else get_registry()
        self._tel = _FilterInstruments(registry) if registry.enabled else None
        if warmup_grace > 0:
            self.begin_warmup(start_time + warmup_grace)

    @classmethod
    def from_config(
        cls,
        config: AnyFilterConfig,
        protected: AddressSpace,
        *,
        start_time: float = 0.0,
        apd: Optional[AdaptiveDroppingPolicy] = None,
        telemetry: Optional[MetricsRegistry] = None,
    ) -> "BitmapFilter":
        """Build a filter from a :class:`FilterConfig` (fail policy and
        warm-up grace included) or a plain :class:`BitmapFilterConfig`."""
        return cls(config, protected, start_time=start_time, apd=apd,
                   telemetry=telemetry)

    # -- time ---------------------------------------------------------------

    @property
    def next_rotation(self) -> float:
        return self._next_rotation

    def advance_to(self, ts: float) -> int:
        """Run every rotation due at or before ``ts``; returns how many ran.

        While the rotation timer is stalled (:meth:`stall_rotations`) this is
        a no-op — the schedule is frozen until :meth:`resume_rotations`.
        """
        if self._stalled:
            return 0
        ran = 0
        tel = self._tel
        while self._next_rotation <= ts:
            if tel is None:
                self.bitmap.rotate()
            else:
                begin = perf_counter()
                self.bitmap.rotate()
                tel.on_rotation(self._next_rotation, perf_counter() - begin)
            self._next_rotation += self.config.rotation_interval
            ran += 1
        self.stats.rotations += ran
        return ran

    # -- degraded-mode operation ---------------------------------------------

    @property
    def is_down(self) -> bool:
        """True while the filter is failed (``fail`` called, no ``recover``)."""
        return self._down

    @property
    def rotations_stalled(self) -> bool:
        return self._stalled

    @property
    def warmup_until(self) -> float:
        """End of the current warm-up grace window (-inf when inactive)."""
        return self._warmup_until

    def in_warmup(self, ts: float) -> bool:
        return ts < self._warmup_until

    def fail(self) -> None:
        """Take the filter down: packets are judged by ``fail_policy`` only.

        The bit state and rotation schedule freeze; nothing is marked or
        rotated until :meth:`recover`.
        """
        self._down = True
        if self._tel is not None:
            self._tel.degraded.set(1)

    def recover(self, now: float, warmup_grace: Optional[float] = None) -> int:
        """Bring a failed filter back at ``now``; returns rotations caught up.

        Rotations missed during the outage run immediately (the schedule is
        not silently stretched).  ``warmup_grace`` opens a grace window of
        that many seconds during which bitmap *misses* on inbound packets are
        admitted instead of dropped — outgoing packets seen while down were
        never marked, so their replies would otherwise all be dropped.  The
        default grace is ``Te`` when the outage spanned at least one rotation
        and 0 otherwise (a sub-rotation blip loses no marks).
        """
        self._down = False
        if self._tel is not None:
            self._tel.degraded.set(0)
        missed = self.advance_to(now)
        if warmup_grace is None:
            warmup_grace = self.config.expiry_timer if missed else 0.0
        if warmup_grace > 0:
            self.begin_warmup(now + warmup_grace)
        return missed

    def begin_warmup(self, until: float) -> None:
        """Admit inbound bitmap misses until time ``until`` (grace window)."""
        self._warmup_until = until
        if self._tel is not None:
            self._tel.warmup_until.set(until)

    def stall_rotations(self) -> None:
        """Freeze the rotation timer (models a stalled/stuck timer thread).

        Packets keep flowing and keep being marked/checked; vectors are just
        never cleared, so utilization — and with it the penetration
        probability U^m — creeps up for the duration of the stall.
        """
        self._stalled = True
        if self._tel is not None:
            self._tel.stalled.set(1)

    def resume_rotations(self, now: float, catch_up: bool = True) -> int:
        """Un-stall the timer at ``now``; returns the rotations performed.

        ``catch_up=True`` (the robust behavior) performs every rotation the
        stall missed, restoring the nominal Te immediately.  ``catch_up=False``
        models the naive late-firing timer: one rotation runs and the
        schedule restarts from ``now``, silently stretching every mark's
        lifetime by the stall duration.
        """
        self._stalled = False
        if self._tel is not None:
            self._tel.stalled.set(0)
        if catch_up:
            return self.advance_to(now)
        if self._next_rotation <= now:
            tel = self._tel
            if tel is None:
                self.bitmap.rotate()
            else:
                begin = perf_counter()
                self.bitmap.rotate()
                tel.on_rotation(now, perf_counter() - begin)
            self.stats.rotations += 1
            self._next_rotation = now + self.config.rotation_interval
            return 1
        return 0

    # -- Algorithm 2: per-packet path -------------------------------------------

    def process(self, pkt: Packet) -> Decision:
        """Filter one packet, advancing rotations to its timestamp first."""
        if self._down:
            return self._process_down(pkt)
        self.advance_to(pkt.ts)
        direction = pkt.direction(self.protected)
        if direction is Direction.OUTGOING:
            self._handle_outgoing(pkt)
            return Decision.PASS
        if direction is Direction.INCOMING:
            return self._handle_incoming(pkt)
        if direction is Direction.INTERNAL:
            self.stats.internal += 1
        else:
            self.stats.transit += 1
        return Decision.PASS

    def _handle_outgoing(self, pkt: Packet) -> None:
        self.stats.outgoing += 1
        if self.apd is not None:
            self.apd.observe_outgoing(pkt)
            if not self.apd.should_mark(pkt):
                self.stats.marks_suppressed += 1
                return
        key = bitmap_key_outgoing(pkt.proto, pkt.src, pkt.sport, pkt.dst)
        self.bitmap.mark(self.hashes.indices(key))
        if self._tel is not None:
            self._tel.marks["scalar"].inc()

    def _test_incoming(self, pkt: Packet) -> bool:
        """The scalar bitmap membership test for one incoming packet.

        Split out as a hook: the shared-memory backend overrides it to
        route the lookup through the packet's owner reader process (same
        shared bits, different process) while every other piece of the
        incoming path — warm-up grace, APD, stats — stays inherited.
        """
        key = bitmap_key_incoming(pkt.proto, pkt.dst, pkt.dport, pkt.src)
        return self.bitmap.test_current(self.hashes.indices(key))

    def _handle_incoming(self, pkt: Packet) -> Decision:
        tel = self._tel
        self.stats.incoming += 1
        if self.apd is not None:
            self.apd.observe_incoming(pkt)
        if self._test_incoming(pkt):
            self.stats.incoming_passed += 1
            if tel is not None:
                tel.admits["scalar"].inc()
            return Decision.PASS
        if pkt.ts < self._warmup_until:
            self.stats.warmup_admitted += 1
            self.stats.incoming_passed += 1
            if tel is not None:
                tel.admits["scalar"].inc()
                tel.warmup_admits.inc()
            return Decision.PASS
        if self.apd is not None and not self.apd.should_drop():
            self.stats.apd_admitted += 1
            self.stats.incoming_passed += 1
            if tel is not None:
                tel.admits["scalar"].inc()
            return Decision.PASS
        self.stats.incoming_dropped += 1
        if tel is not None:
            tel.drops["scalar"].inc()
        return Decision.DROP

    def _process_down(self, pkt: Packet) -> Decision:
        """Judge one packet while the filter is down: policy only, no state."""
        direction = pkt.direction(self.protected)
        stats = self.stats
        tel = self._tel
        if direction is Direction.OUTGOING:
            stats.outgoing += 1
            stats.unmarked_outgoing += 1
            return Decision.PASS
        if direction is Direction.INCOMING:
            stats.incoming += 1
            if self.fail_policy is FailPolicy.FAIL_OPEN:
                stats.degraded_admitted += 1
                stats.incoming_passed += 1
                if tel is not None:
                    tel.degraded_admits.inc()
                return Decision.PASS
            stats.degraded_dropped += 1
            stats.incoming_dropped += 1
            if tel is not None:
                tel.degraded_drops.inc()
            return Decision.DROP
        if direction is Direction.INTERNAL:
            stats.internal += 1
        else:
            stats.transit += 1
        return Decision.PASS

    # -- batch paths -----------------------------------------------------------

    def process_batch(self, packets: PacketArray, exact: bool = True) -> np.ndarray:
        """Filter a time-sorted batch; returns a boolean PASS mask.

        ``exact=True`` preserves per-packet ordering semantics (identical to
        calling :meth:`process` per packet) while vectorizing direction
        classification and hashing.  ``exact=False`` delegates to
        :meth:`process_batch_windowed`.

        APD is not supported on the batch paths (use :meth:`process`).
        """
        if self.apd is not None:
            raise NotImplementedError("batch paths do not support adaptive dropping")
        if self._down:
            return self._process_batch_down(packets)
        if exact:
            return self._process_batch_exact(packets)
        return self.process_batch_windowed(packets)

    def _process_batch_down(self, packets: PacketArray) -> np.ndarray:
        """Vectorized down-state verdicts: ``fail_policy`` decides everything."""
        directions = packets.directions(self.protected)
        incoming = directions == DIRECTION_INCOMING
        outgoing = directions == DIRECTION_OUTGOING
        stats = self.stats
        n_in = int(incoming.sum())
        n_out = int(outgoing.sum())
        stats.outgoing += n_out
        stats.unmarked_outgoing += n_out
        stats.incoming += n_in
        stats.internal += int((directions == DIRECTION_INTERNAL).sum())
        stats.transit += int((directions == DIRECTION_TRANSIT).sum())
        verdict = np.ones(len(packets), dtype=bool)
        tel = self._tel
        if self.fail_policy is FailPolicy.FAIL_OPEN:
            stats.degraded_admitted += n_in
            stats.incoming_passed += n_in
            if tel is not None and n_in:
                tel.degraded_admits.inc(n_in)
        else:
            verdict[incoming] = False
            stats.degraded_dropped += n_in
            stats.incoming_dropped += n_in
            if tel is not None and n_in:
                tel.degraded_drops.inc(n_in)
        return verdict

    def _directional_indices(self, packets: PacketArray, directions: np.ndarray) -> np.ndarray:
        """(m, N) index matrix using local/remote fields per direction.

        For outgoing packets the local endpoint is (src, sport); for incoming
        it is (dst, dport).  Rows for transit/internal packets are computed
        but never used.
        """
        outgoing = directions == DIRECTION_OUTGOING
        local_addr = np.where(outgoing, packets.src, packets.dst).astype(np.uint32)
        local_port = np.where(outgoing, packets.sport, packets.dport).astype(np.uint16)
        remote_addr = np.where(outgoing, packets.dst, packets.src).astype(np.uint32)
        return self.hashes.indices_vec(packets.proto, local_addr, local_port, remote_addr)

    def _process_batch_exact(self, packets: PacketArray) -> np.ndarray:
        n = len(packets)
        verdict = np.ones(n, dtype=bool)
        if not n:
            return verdict
        directions = packets.directions(self.protected)
        index_matrix = self._directional_indices(packets, directions)
        # Convert the hot columns to plain Python lists once; per-element
        # list indexing is several times faster than NumPy scalar access.
        ts_list = packets.ts.tolist()
        dir_list = directions.tolist()
        idx_lists = [row.tolist() for row in index_matrix.T]  # per-packet index tuples

        bitmap = self.bitmap
        stats = self.stats
        interval = self.config.rotation_interval
        # Stall/warm-up state cannot change mid-batch (only the fault harness
        # toggles it, between batches), so hoist both out of the hot loop.
        stalled = self._stalled
        warmup_until = self._warmup_until
        tel = self._tel
        before = tel.stats_snapshot(stats) if tel is not None else None
        for i in range(n):
            ts = ts_list[i]
            while not stalled and self._next_rotation <= ts:
                if tel is None:
                    bitmap.rotate()
                else:
                    # Flush this window's counter deltas before the tick so
                    # samplers see per-Δt admits/drops, not batch totals.
                    tel.count_batch("exact_batch", stats, before)
                    before = tel.stats_snapshot(stats)
                    begin = perf_counter()
                    bitmap.rotate()
                    tel.on_rotation(self._next_rotation, perf_counter() - begin)
                self._next_rotation += interval
                stats.rotations += 1
            direction = dir_list[i]
            if direction == DIRECTION_OUTGOING:
                stats.outgoing += 1
                bitmap.mark(idx_lists[i])
            elif direction == DIRECTION_INCOMING:
                stats.incoming += 1
                if bitmap.test_current(idx_lists[i]):
                    stats.incoming_passed += 1
                elif ts < warmup_until:
                    stats.warmup_admitted += 1
                    stats.incoming_passed += 1
                else:
                    stats.incoming_dropped += 1
                    verdict[i] = False
            elif direction == DIRECTION_INTERNAL:
                stats.internal += 1
            else:
                stats.transit += 1
        if tel is not None:
            tel.count_batch("exact_batch", stats, before)
        return verdict

    def process_batch_windowed(self, packets: PacketArray) -> np.ndarray:
        """Fully vectorized batch filtering, exact up to one approximation.

        Packets are grouped into rotation windows.  Within a window all
        outgoing packets are marked *first*, then all incoming packets are
        checked.  Genuine traffic always sends the request before the reply,
        so every packet the exact path passes is also passed here; the only
        divergence is an unsolicited incoming packet whose matching bits are
        marked *later in the same window*, which this path admits up to
        ``dt`` seconds early.  Tests bound the divergence.
        """
        n = len(packets)
        verdict = np.ones(n, dtype=bool)
        if not n:
            return verdict
        directions = packets.directions(self.protected)
        index_matrix = self._directional_indices(packets, directions)
        ts = packets.ts

        stats = self.stats
        outgoing_mask = directions == DIRECTION_OUTGOING
        incoming_mask = directions == DIRECTION_INCOMING
        stats.internal += int((directions == 3).sum())
        stats.transit += int((directions == 2).sum())
        tel = self._tel
        before = tel.stats_snapshot(stats) if tel is not None else None

        start = 0
        while start < n:
            # A stalled rotation timer means the remainder is one window.
            boundary = float("inf") if self._stalled else self._next_rotation
            end = int(np.searchsorted(ts[start:], boundary, side="left")) + start
            if end > start:
                window = slice(start, end)
                out_in_window = outgoing_mask[window]
                in_in_window = incoming_mask[window]
                if out_in_window.any():
                    self.bitmap.mark_vec(index_matrix[:, window][:, out_in_window])
                    stats.outgoing += int(out_in_window.sum())
                if in_in_window.any():
                    ok = self.bitmap.test_current_vec(index_matrix[:, window][:, in_in_window])
                    if self._warmup_until > ts[start]:
                        grace = ~ok & (ts[window][in_in_window] < self._warmup_until)
                        if grace.any():
                            ok = ok | grace
                            stats.warmup_admitted += int(grace.sum())
                    incoming_positions = np.nonzero(in_in_window)[0] + start
                    verdict[incoming_positions[~ok]] = False
                    stats.incoming += int(in_in_window.sum())
                    stats.incoming_passed += int(ok.sum())
                    stats.incoming_dropped += int((~ok).sum())
                start = end
            if start < n:
                # Next packet is at/after the boundary: rotate and continue.
                if tel is None:
                    self.bitmap.rotate()
                else:
                    # Per-window flush before the tick (see exact path).
                    tel.count_batch("windowed_batch", stats, before)
                    before = tel.stats_snapshot(stats)
                    begin = perf_counter()
                    self.bitmap.rotate()
                    tel.on_rotation(self._next_rotation, perf_counter() - begin)
                self._next_rotation += self.config.rotation_interval
                stats.rotations += 1
        if tel is not None:
            tel.count_batch("windowed_batch", stats, before)
        return verdict

    # -- snapshot state -------------------------------------------------------

    def set_fail_policy(self, policy: FailPolicy) -> None:
        """Swap the fail policy in place (a safe hot-reloadable knob)."""
        self.fail_policy = FailPolicy(policy)

    def apply_snapshot_state(
        self,
        vectors: np.ndarray,
        current_index: int,
        bitmap_rotations: int,
        next_rotation: float,
        stats: Optional[dict] = None,
    ) -> None:
        """Overwrite this filter's mutable state with snapshot contents.

        ``vectors`` is the ``(k, 2**n / 8)`` byte matrix of the bit vectors
        (what :func:`repro.core.persistence.save_filter` persists); the rest
        restores the rotation bookkeeping and, optionally, the counters.
        The configuration must already match — this only moves state, so
        restore paths (including sharded worker replicas, which receive
        this call over the worker pipe) validate geometry up front.
        """
        vectors = np.asarray(vectors, dtype=np.uint8)
        expected = (self.config.num_vectors, (1 << self.config.order) // 8)
        if vectors.shape != expected:
            raise ValueError(
                f"snapshot vectors {vectors.shape} do not match this "
                f"filter's geometry {expected}")
        for index, vec in enumerate(self.bitmap.vectors):
            vec.as_numpy()[:] = vectors[index]
        self.bitmap._idx = int(current_index)
        self.bitmap._rotations = int(bitmap_rotations)
        self._next_rotation = float(next_rotation)
        if stats is not None:
            self.stats = FilterStats(**stats)

    # -- convenience ---------------------------------------------------------------

    def mark_key(self, proto: int, local_addr: int, local_port: int, remote_addr: int) -> None:
        """Directly mark an outgoing-direction key (used by hole punching)."""
        key = bitmap_key_outgoing(proto, local_addr, local_port, remote_addr)
        self.bitmap.mark(self.hashes.indices(key))

    def flip_bits(self, fraction: float, seed: int = 0xB17F11) -> int:
        """Flip each bit of every vector with probability ``fraction``.

        The memory-corruption fault surface (see
        :class:`~repro.faults.injectors.BitFlips`).  Deterministic in
        ``seed``, so replicas fed the same call corrupt identically — the
        sharded backend relies on this to keep worker bitmaps bit-for-bit
        equal to the serial filter under fault injection.  Returns the
        number of bits flipped.
        """
        if not 0 <= fraction <= 1:
            raise ValueError("flip fraction must be within [0, 1]")
        rng = np.random.default_rng(seed)
        total = 0
        for vec in self.bitmap.vectors:
            count = int(rng.binomial(vec.num_bits, fraction))
            if not count:
                continue
            indices = rng.choice(vec.num_bits, size=count, replace=False)
            view = vec.as_numpy()
            byte_idx = (indices >> 3).astype(np.int64)
            masks = np.left_shift(np.uint8(1), (indices & 7).astype(np.uint8))
            np.bitwise_xor.at(view, byte_idx, masks)
            total += count
        return total

    def would_pass_incoming(self, pkt: Packet) -> bool:
        """Non-mutating lookup: would this incoming packet pass right now?"""
        return self._test_incoming(pkt)

    def utilization(self) -> float:
        return self.bitmap.utilization()

    @property
    def peak_utilization(self) -> float:
        """Steady-state utilization: the fullest any vector got (sampled
        just before each rotation cleared it)."""
        return self.bitmap.peak_utilization

    def __repr__(self) -> str:
        cfg = self.config
        return (
            f"BitmapFilter(k={cfg.num_vectors}, n={cfg.order}, m={cfg.num_hashes}, "
            f"dt={cfg.rotation_interval}, Te={cfg.expiry_timer}, "
            f"mem={cfg.memory_bytes}B)"
        )
