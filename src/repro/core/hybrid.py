"""Hybrid bitmap → cuckoo verification filter (the seventh ``PacketFilter``).

The {k×n}-bitmap is kept as the O(1) probabilistic pre-filter; every admit it
grants — all of them, or only those destined to a configured protected-subnet
subset — is *confirmed* against the exact
:class:`~repro.core.cuckoo.CuckooFlowTable` before the packet reaches a
client.  A bitmap admit whose exact flow key is absent from the table is a
false admit by construction and is denied, driving the false-admit rate on
the verified subset to ~0.

Semantics (chosen so the differential suite's serial-vs-parallel equivalence
holds verbatim):

- **Outgoing, filter up, in scope** → the flow key is inserted/refreshed in
  the table, *regardless* of APD mark suppression — the table tracks truth,
  the bitmap tracks what was marked.
- **Incoming, filter up, bitmap PASS, past warm-up, in scope** → confirmed
  against the table; a miss flips the verdict to DROP.
- **Warm-up admits are never denied**: during the grace window the bitmap
  itself has no state, so neither does the table — denying would turn the
  warm-up ramp into an outage.
- **Degraded mode is transparent**: while the inner filter is down, verdicts
  come from its fail policy untouched, and nothing is inserted (the table
  must not learn from traffic the bitmap never saw).

The wrapper composes over *any* inner filter — serial
:class:`~repro.core.bitmap_filter.BitmapFilter`, sharded or shared-memory
parallel — and delegates the whole degraded-mode/snapshot control surface,
which is how the differential and fault suites sweep it with zero copied
tests.  Verification itself is deterministic and identical across scalar,
exact-batch and windowed-batch paths: batch lookups replay packet order, and
lookups never mutate the table.

Telemetry: ``repro_hybrid_confirmed_total`` / ``repro_hybrid_denied_total`` /
``repro_hybrid_inserts_total`` / ``repro_hybrid_resizes_total`` counters plus
``repro_hybrid_occupancy`` / ``repro_hybrid_utilization`` gauges, behind the
usual single ``is None`` hot-path guard.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar, Optional, Tuple

import numpy as np

from repro.core.cuckoo import CuckooFlowTable, pack_flow, pack_flows_vec
from repro.core.filter_api import Decision, PacketFilterMixin, register_layer
from repro.net.address import AddressSpace
from repro.net.packet import (
    DIRECTION_INCOMING,
    DIRECTION_OUTGOING,
    Direction,
    Packet,
    PacketArray,
)
from repro.telemetry import MetricsRegistry, get_registry


@dataclass(frozen=True)
class VerifySpec:
    """Layer spec for the exact-verification tier (``kind="verify"``).

    ``scope`` is a tuple of CIDR strings naming the protected subnets whose
    inbound traffic must be confirmed; empty means *every* protected address.
    ``lifetime`` is how long a flow entry stays live after its last outgoing
    refresh; 0 resolves to the inner filter's expiry timer Te = k·dt, the
    longest the bitmap itself can remember a flow.  ``resize_fpr`` arms the
    measured-FPR resize trigger: when the denied fraction over the last
    ``fpr_window`` verified lookups exceeds it, the table doubles once — a
    grow-ahead heuristic for attack pressure (a flood of bitmap false admits
    colliding with a small table).  0 disables the trigger.
    """

    kind: ClassVar[str] = "verify"

    scope: Tuple[str, ...] = ()
    lifetime: float = 0.0
    initial_order: int = 8
    slots_per_bucket: int = 4
    max_order: int = 24
    grow_at: float = 0.85
    max_kick_nodes: int = 64
    resize_fpr: float = 0.0
    fpr_window: int = 4096
    seed: int = 0xC0C0A

    def __post_init__(self):
        object.__setattr__(self, "scope", tuple(self.scope))
        if self.lifetime < 0:
            raise ValueError(f"lifetime must be >= 0, got {self.lifetime}")
        if not 0.0 <= self.resize_fpr < 1.0:
            raise ValueError(f"resize_fpr must be in [0, 1), got {self.resize_fpr}")
        if self.fpr_window < 1:
            raise ValueError(f"fpr_window must be positive, got {self.fpr_window}")

    def as_dict(self) -> dict:
        """JSON-safe form carrying the ``kind`` discriminator."""
        out = {"kind": self.kind}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = list(value) if isinstance(value, tuple) else value
        return out


class _HybridInstruments:
    """Bound ``repro_hybrid_*`` instruments for one live-registry filter."""

    __slots__ = ("confirmed", "denied", "inserts", "resizes",
                 "occupancy", "utilization")

    def __init__(self, registry: MetricsRegistry):
        self.confirmed = registry.counter(
            "repro_hybrid_confirmed_total",
            "Bitmap admits confirmed by the exact cuckoo flow table")
        self.denied = registry.counter(
            "repro_hybrid_denied_total",
            "Bitmap admits denied as false admits (absent from the flow table)")
        self.inserts = registry.counter(
            "repro_hybrid_inserts_total",
            "Outgoing flow keys inserted/refreshed into the flow table")
        self.resizes = registry.counter(
            "repro_hybrid_resizes_total",
            "Cuckoo table doublings (utilization, kick pressure, or FPR)")
        self.occupancy = registry.gauge(
            "repro_hybrid_occupancy",
            "Occupied slots in the cuckoo flow table")
        self.utilization = registry.gauge(
            "repro_hybrid_utilization",
            "Occupied fraction of cuckoo table capacity")


class HybridVerifiedFilter(PacketFilterMixin):
    """Wrap any inner ``PacketFilter`` with exact cuckoo verification.

    Everything the inner filter exposes — config, degraded-mode control
    surface, snapshot state, rotation clock — is delegated; this class adds
    only the verification tier and its counters.
    """

    def __init__(
        self,
        inner,
        spec: Optional[VerifySpec] = None,
        *,
        table: Optional[CuckooFlowTable] = None,
        telemetry: Optional[MetricsRegistry] = None,
    ):
        if spec is None:
            spec = VerifySpec()
        self.spec = spec
        self._inner = inner
        self._scope = AddressSpace(list(spec.scope)) if spec.scope else None
        if table is not None:
            self.table = table
        else:
            lifetime = spec.lifetime or inner.config.expiry_timer
            self.table = CuckooFlowTable(
                order=spec.initial_order,
                slots_per_bucket=spec.slots_per_bucket,
                lifetime=lifetime,
                seed=spec.seed,
                max_order=spec.max_order,
                grow_at=spec.grow_at,
                max_kick_nodes=spec.max_kick_nodes,
            )
        self.confirmed = 0
        self.denied = 0
        self._window_lookups = 0
        self._window_denied = 0
        self._flushed = {"confirmed": 0, "denied": 0, "inserts": 0, "resizes": 0}
        registry = telemetry if telemetry is not None else get_registry()
        self._tel = _HybridInstruments(registry) if registry.enabled else None

    # -- layer/introspection surface -----------------------------------------

    @property
    def inner(self):
        """The wrapped pre-filter (serial or parallel bitmap filter)."""
        return self._inner

    @property
    def layers(self) -> Tuple[VerifySpec, ...]:
        """Layer specs this stack was built from (for describe()/rebuild)."""
        return (self.spec,)

    @property
    def measured_fpr(self) -> float:
        """Denied fraction of all verified lookups so far."""
        verified = self.confirmed + self.denied
        return self.denied / verified if verified else 0.0

    @property
    def memory_bytes(self) -> int:
        return self._inner.config.memory_bytes + self.table.memory_bytes

    # -- scope ----------------------------------------------------------------

    def _in_scope(self, local_addr: int) -> bool:
        scope = self._scope
        return scope is None or scope.contains_int(local_addr)

    def _scope_mask(self, local_addr: np.ndarray) -> np.ndarray:
        if self._scope is None:
            return np.ones(len(local_addr), dtype=bool)
        mask = np.zeros(len(local_addr), dtype=bool)
        for net in self._scope.networks:
            mask |= (local_addr & np.uint32(net.netmask)) == np.uint32(net.prefix)
        return mask

    # -- verification core -----------------------------------------------------

    def _note_lookups(self, lookups: int, denied: int, now: float) -> None:
        if self.spec.resize_fpr <= 0.0:
            return
        self._window_lookups += lookups
        self._window_denied += denied
        if self._window_lookups >= self.spec.fpr_window:
            if self._window_denied > self.spec.resize_fpr * self._window_lookups:
                self.table.grow_for_pressure(now, cause="fpr")
            self._window_lookups = 0
            self._window_denied = 0

    def _flush_telemetry(self) -> None:
        tel = self._tel
        if tel is None:
            return
        flushed = self._flushed
        table = self.table
        for name, instrument, current in (
            ("confirmed", tel.confirmed, self.confirmed),
            ("denied", tel.denied, self.denied),
            ("inserts", tel.inserts, table.inserts),
            ("resizes", tel.resizes, table.grows),
        ):
            delta = current - flushed[name]
            if delta:
                instrument.inc(delta)
                flushed[name] = current
        tel.occupancy.set(table.occupancy)
        tel.utilization.set(table.utilization)

    # -- scalar path -----------------------------------------------------------

    def process(self, pkt: Packet) -> Decision:
        inner = self._inner
        if inner.is_down:
            return inner.process(pkt)
        verdict = inner.process(pkt)
        direction = pkt.direction(inner.protected)
        if direction is Direction.OUTGOING:
            if self._in_scope(pkt.src):
                lo, hi = pack_flow(pkt.proto, pkt.src, pkt.sport, pkt.dst)
                self.table.insert(lo, hi, pkt.ts)
        elif (
            direction is Direction.INCOMING
            and verdict is Decision.PASS
            and pkt.ts >= inner.warmup_until
            and self._in_scope(pkt.dst)
        ):
            lo, hi = pack_flow(pkt.proto, pkt.dst, pkt.dport, pkt.src)
            if self.table.contains(lo, hi, pkt.ts):
                self.confirmed += 1
                self._note_lookups(1, 0, pkt.ts)
            else:
                self.denied += 1
                self._note_lookups(1, 1, pkt.ts)
                verdict = Decision.DROP
        if self._tel is not None:
            self._flush_telemetry()
        return verdict

    # -- batch path ------------------------------------------------------------

    def process_batch(self, packets: PacketArray, exact: bool = True) -> np.ndarray:
        inner = self._inner
        if inner.is_down:
            return inner.process_batch(packets, exact=exact)
        warmup_until = inner.warmup_until
        mask = inner.process_batch(packets, exact=exact)
        n = len(packets)
        if n == 0:
            return mask
        directions = packets.directions(inner.protected)
        outgoing = directions == DIRECTION_OUTGOING
        incoming = directions == DIRECTION_INCOMING
        local = np.where(outgoing, packets.src, packets.dst)
        lport = np.where(outgoing, packets.sport, packets.dport)
        remote = np.where(outgoing, packets.dst, packets.src)
        lo, hi = pack_flows_vec(packets.proto, local, lport, remote)
        scope = self._scope_mask(local)
        ts = packets.ts
        insert_mask = outgoing & scope
        check_mask = incoming & mask & scope & (ts >= warmup_until)
        if exact:
            self._verify_exact(lo, hi, ts, insert_mask, check_mask, mask)
        else:
            self._verify_windowed(lo, hi, ts, insert_mask, check_mask, mask)
        if self._tel is not None:
            self._flush_telemetry()
        return mask

    def _verify_exact(self, lo, hi, ts, insert_mask, check_mask, mask) -> None:
        """Replay inserts and lookups in packet order — bit-identical to the
        scalar path (lookups never mutate, so interleaving is exact).

        The replay itself is vectorized whenever that is provably safe (the
        serving hot path always is); otherwise it falls back to the literal
        scalar interleave."""
        idxs = np.nonzero(insert_mask | check_mask)[0]
        if len(idxs) == 0:
            return
        n_inserts = int(np.count_nonzero(insert_mask))
        if (
            self.spec.resize_fpr <= 0.0
            and self._ceiling_unreachable(n_inserts)
            and bool(np.all(np.diff(ts[idxs]) >= 0.0))
        ):
            self._verify_exact_vec(lo, hi, ts, insert_mask, check_mask,
                                   mask, idxs)
            return
        self._verify_exact_scalar(lo, hi, ts, insert_mask, check_mask,
                                  mask, idxs)

    def _ceiling_unreachable(self, n_inserts: int) -> bool:
        """True when this batch provably cannot drive the table to the
        ``max_order`` ceiling — the only state where an insert may overwrite
        a *live* entry, which is the one mutation the vectorized replay
        cannot model.  Simulates worst-case growth (every insert a brand-new
        key, nothing expired)."""
        table = self.table
        occupancy = table.occupancy + n_inserts
        order, capacity = table.order, table.capacity
        while occupancy >= table.grow_at * capacity:
            if order >= table.max_order:
                return False
            order += 1
            capacity *= 2
        return True

    def _verify_exact_vec(self, lo, hi, ts, insert_mask, check_mask,
                          mask, idxs) -> None:
        """Vectorized exact replay.

        Lookups never mutate the table, so every check's verdict is fully
        determined by (a) the latest *preceding* in-batch insert of the same
        key — its stamp is exactly that insert's timestamp — or, absent one,
        (b) the pre-batch table state at the check's own cutoff.  Mid-batch
        purges and grows only ever drop entries already expired relative to
        an earlier timestamp, which (timestamps being monotonic — a fast-path
        precondition) every later check would reject anyway; live-entry
        overwrites are excluded by :meth:`_ceiling_unreachable`.  Inserts are
        then applied in array order, which :meth:`CuckooFlowTable.insert_batch`
        keeps bit-identical to sequential scalar inserts."""
        table = self.table
        ins = np.nonzero(insert_mask)[0]
        chk = np.nonzero(check_mask)[0]
        if len(chk) == 0:
            if len(ins):
                table.insert_batch(lo[ins], hi[ins], ts[ins])
            return
        pre_live = table.contains_batch(lo[chk], hi[chk], ts[chk])
        pre_hits = int(pre_live.sum())
        # Latest preceding insert per check, per key: sort by (key, position)
        # and take a grouped running max of insert positions.
        a_lo, a_hi = lo[idxs], hi[idxs]
        a_ins = insert_mask[idxs]
        order = np.lexsort((idxs, a_lo, a_hi))
        s_lo, s_hi = a_lo[order], a_hi[order]
        s_ins, s_pos = a_ins[order], idxs[order]
        new_group = np.empty(len(order), dtype=bool)
        new_group[0] = True
        new_group[1:] = (s_lo[1:] != s_lo[:-1]) | (s_hi[1:] != s_hi[:-1])
        group = np.cumsum(new_group, dtype=np.int64) - 1
        base = np.int64(len(mask) + 1)
        adjusted = np.where(s_ins, s_pos, -1) + group * base
        pred = np.maximum.accumulate(adjusted) - group * base   # -1 → none
        is_check = ~s_ins
        pred_check = pred[is_check]
        pos_check = s_pos[is_check]
        has_pred = pred_check >= 0
        pred_ts = ts[np.where(has_pred, pred_check, 0)]
        live_pred = has_pred & (pred_ts > ts[pos_check] - table.lifetime)
        ok = np.where(has_pred, live_pred,
                      pre_live[np.searchsorted(chk, pos_check)])
        if len(ins):
            table.insert_batch(lo[ins], hi[ins], ts[ins])
        denied_pos = pos_check[~ok]
        if len(denied_pos):
            mask[denied_pos] = False
        checked = len(pos_check)
        denied = len(denied_pos)
        self.confirmed += checked - denied
        self.denied += denied
        # contains_batch counted pre-state hits; the interleaved replay's
        # hit count is the confirmed count.
        table.hits += (checked - denied) - pre_hits

    def _verify_exact_scalar(self, lo, hi, ts, insert_mask, check_mask,
                             mask, idxs) -> None:
        is_insert = insert_mask[idxs].tolist()
        lo_s = lo[idxs].tolist()
        hi_s = hi[idxs].tolist()
        ts_s = ts[idxs].tolist()
        table = self.table
        idx_l = idxs.tolist()
        for j in range(len(idx_l)):
            if is_insert[j]:
                table.insert(lo_s[j], hi_s[j], ts_s[j])
            elif table.contains(lo_s[j], hi_s[j], ts_s[j]):
                self.confirmed += 1
                self._note_lookups(1, 0, ts_s[j])
            else:
                self.denied += 1
                self._note_lookups(1, 1, ts_s[j])
                mask[idx_l[j]] = False

    def _verify_windowed(self, lo, hi, ts, insert_mask, check_mask, mask) -> None:
        """Marks-first per rotation window, mirroring the inner windowed
        batch: within each window every insert lands before any lookup, so a
        lookup sees at least the inserts the exact interleave gave it and the
        windowed PASS mask stays a superset of the exact one.  Inserts pass
        the window start as the garbage-collection clock so a late-stamped
        insert can never purge (or reuse the slot of) an entry that a lookup
        in the same or a later window still considers live — without that,
        batch-order inserts spanning more than ``lifetime`` seconds would
        evict entries out from under earlier-timestamped lookups."""
        act = np.nonzero(insert_mask | check_mask)[0]
        if len(act) == 0:
            return
        dt = self._inner.config.rotation_interval
        wid = np.floor_divide(ts[act], dt).astype(np.int64)
        # Window-major, batch order within each window (stable sort), so
        # one pass over the active ops replaces a full-length mask scan
        # per rotation window.
        order = np.argsort(wid, kind="stable")
        s_act = act[order]
        s_wid = wid[order]
        s_ins = insert_mask[s_act]
        bounds = np.nonzero(np.diff(s_wid))[0] + 1
        starts = np.concatenate([[0], bounds])
        ends = np.concatenate([bounds, [len(s_act)]])
        table = self.table
        checked = 0
        denied = 0
        last_ts = 0.0
        for start, end in zip(starts.tolist(), ends.tolist()):
            seg_ins = s_ins[start:end]
            ins = s_act[start:end][seg_ins]
            if len(ins):
                table.insert_batch(lo[ins], hi[ins], ts[ins],
                                   gc_now=float(s_wid[start]) * dt)
            chk = s_act[start:end][~seg_ins]
            if len(chk) == 0:
                continue
            ok = table.contains_batch(lo[chk], hi[chk], ts[chk])
            misses = chk[~ok]
            checked += len(chk)
            denied += len(misses)
            if len(misses):
                mask[misses] = False
            last_ts = float(ts[chk[-1]])
        self.confirmed += checked - denied
        self.denied += denied
        if checked:
            self._note_lookups(checked, denied, last_ts)

    # -- stats -----------------------------------------------------------------

    @property
    def stats(self):
        """Inner stats with denials moved from passed to dropped.

        Always an adjusted copy: parallel inner filters reconstruct their
        stats from worker merges on every access, so in-place mutation would
        be silently lost — the copy keeps serial and parallel symmetric.
        """
        base = self._inner.stats
        if not self.denied:
            return base
        adjusted = type(base)(**base.as_dict())
        adjusted.incoming_passed -= self.denied
        adjusted.incoming_dropped += self.denied
        return adjusted

    # -- delegated control surface ---------------------------------------------

    @property
    def config(self):
        return self._inner.config

    @property
    def protected(self):
        return self._inner.protected

    @property
    def bitmap(self):
        return self._inner.bitmap

    @property
    def apd(self):
        return self._inner.apd

    @property
    def fail_policy(self):
        return self._inner.fail_policy

    @property
    def is_down(self) -> bool:
        return self._inner.is_down

    @property
    def warmup_until(self) -> float:
        return self._inner.warmup_until

    @property
    def next_rotation(self) -> float:
        return self._inner.next_rotation

    @property
    def peak_utilization(self) -> float:
        return self._inner.peak_utilization

    def advance_to(self, ts: float) -> int:
        return self._inner.advance_to(ts)

    def utilization(self) -> float:
        return self._inner.utilization()

    def fail(self) -> None:
        self._inner.fail()

    def recover(self, now: float, warmup_grace: Optional[float] = None) -> int:
        return self._inner.recover(now, warmup_grace)

    def begin_warmup(self, until: float) -> None:
        self._inner.begin_warmup(until)

    def in_warmup(self, ts: float) -> bool:
        return self._inner.in_warmup(ts)

    def stall_rotations(self) -> None:
        self._inner.stall_rotations()

    def resume_rotations(self, now: float, catch_up: bool = False) -> int:
        return self._inner.resume_rotations(now, catch_up)

    def set_fail_policy(self, policy) -> None:
        self._inner.set_fail_policy(policy)

    def flip_bits(self, fraction: float, seed: int = 0xB17F11) -> int:
        return self._inner.flip_bits(fraction, seed)

    def apply_snapshot_state(self, *args, **kwargs) -> None:
        self._inner.apply_snapshot_state(*args, **kwargs)

    def apply_table_state(self, table: CuckooFlowTable) -> None:
        """Adopt a restored cuckoo table (snapshot warm start)."""
        self.table = table

    def would_pass_incoming(self, pkt: Packet) -> bool:
        admitted = self._inner.would_pass_incoming(pkt)
        if not admitted or self._inner.is_down:
            return admitted
        if pkt.ts < self._inner.warmup_until or not self._in_scope(pkt.dst):
            return admitted
        lo, hi = pack_flow(pkt.proto, pkt.dst, pkt.dport, pkt.src)
        return self.table.contains(lo, hi, pkt.ts)

    def mark_key(self, proto: int, local_addr: int, local_port: int,
                 remote_addr: int) -> None:
        self._inner.mark_key(proto, local_addr, local_port, remote_addr)
        if self._in_scope(local_addr):
            # mark_key carries no timestamp (hole punching): stamp the entry
            # at the upcoming rotation boundary so it stays live a full
            # lifetime from roughly now.
            lo, hi = pack_flow(proto, local_addr, local_port, remote_addr)
            self.table.insert(lo, hi, self._inner.next_rotation)

    def close(self) -> None:
        close = getattr(self._inner, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "HybridVerifiedFilter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._inner, name)

    def __repr__(self) -> str:
        return (
            f"HybridVerifiedFilter({self._inner!r}, confirmed={self.confirmed}, "
            f"denied={self.denied}, table={self.table!r})"
        )


def _build_verify_layer(inner, spec: VerifySpec, *, telemetry=None):
    return HybridVerifiedFilter(inner, spec, telemetry=telemetry)


register_layer(VerifySpec, _build_verify_layer)
