"""Analytical model of the bitmap filter — Equations (1)-(5) and Section 5.2.

These closed forms let an operator size the filter without simulation:

- Eq. (1): penetration probability ``p = U**m`` for a random incoming tuple
  against a vector with utilization ``U = b / 2**n``.
- Eq. (2): with ``c`` active connections and rare hash collisions,
  ``p ~= (c * m / 2**n) ** m``.
- Eq. (4): the ``m`` minimizing Eq. (2) is ``m* = 2**n / (e * c)``.
- Eq. (5): at optimal ``m``, achieving penetration ``p`` requires
  ``c <= 2**n / (e * ln(1/p))``.
- Sec. 5.2: an insider emitting random tuples at rate ``r`` adds roughly
  ``m * r * Te / 2**n`` of utilization.

Section 4.1's worked example (n=20, k=4, dt=5: c <= ~167K/125K/83K for
p = 10%/5%/1%, m=3 adequate, 512 KB of memory) is reproduced by
``benchmarks/test_sec41_analysis.py`` directly from these functions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List


def memory_bytes(num_vectors: int, order: int) -> int:
    """Storage of a {k x n}-bitmap: ``k * 2**n / 8`` bytes."""
    if num_vectors < 1 or order < 3:
        raise ValueError("need k >= 1 and n >= 3")
    return num_vectors * (1 << order) // 8


def penetration_probability(utilization: float, num_hashes: int) -> float:
    """Eq. (1): ``p = U**m`` for current-vector utilization U."""
    if not 0.0 <= utilization <= 1.0:
        raise ValueError(f"utilization must be in [0, 1], got {utilization}")
    if num_hashes < 1:
        raise ValueError("need at least one hash function")
    return utilization**num_hashes


def expected_utilization(connections: float, num_hashes: int, order: int, exact: bool = False) -> float:
    """Expected current-vector utilization for ``c`` active connections.

    The paper's approximation (collisions rare) is ``U ~= c*m / 2**n``.
    With ``exact=True`` the standard Bloom occupancy
    ``U = 1 - (1 - 2**-n) ** (c*m)`` is returned instead, which stays
    meaningful at high load.
    """
    if connections < 0:
        raise ValueError("connection count cannot be negative")
    bits = float(1 << order)
    if exact:
        return 1.0 - (1.0 - 1.0 / bits) ** (connections * num_hashes)
    return min(1.0, connections * num_hashes / bits)


def penetration_probability_for_load(
    connections: float, num_hashes: int, order: int, exact: bool = False
) -> float:
    """Eq. (2): ``p ~= (c*m / 2**n) ** m`` (or via the exact occupancy)."""
    utilization = expected_utilization(connections, num_hashes, order, exact=exact)
    return penetration_probability(utilization, num_hashes)


def optimal_num_hashes(order: int, connections: float, integral: bool = True) -> float:
    """Eq. (4): ``m* = e**-1 * 2**n / c`` minimizes Eq. (2).

    With ``integral=True`` (the default) the value is rounded to the better
    of floor/ceil under Eq. (2) and clamped to at least 1.
    """
    if connections <= 0:
        raise ValueError("connection count must be positive")
    m_star = (1 << order) / (math.e * connections)
    if not integral:
        return m_star
    lo = max(1, math.floor(m_star))
    hi = max(1, math.ceil(m_star))
    if lo == hi:
        return float(lo)
    p_lo = penetration_probability_for_load(connections, lo, order)
    p_hi = penetration_probability_for_load(connections, hi, order)
    return float(lo if p_lo <= p_hi else hi)


def max_supported_connections(order: int, target_penetration: float) -> float:
    """Eq. (5): ``c <= 2**n / (e * ln(1/p))`` at the optimal m."""
    if not 0.0 < target_penetration < 1.0:
        raise ValueError("target penetration must be in (0, 1)")
    return (1 << order) / (math.e * math.log(1.0 / target_penetration))


def required_order(connections: float, target_penetration: float) -> int:
    """Smallest n such that Eq. (5) admits ``connections`` at the target p."""
    if connections <= 0:
        raise ValueError("connection count must be positive")
    needed_bits = connections * math.e * math.log(1.0 / target_penetration)
    return max(3, math.ceil(math.log2(needed_bits)))


def insider_utilization_increase(
    attack_rate_pps: float, num_hashes: int, order: int, expiry_timer: float
) -> float:
    """Sec. 5.2: utilization added by an insider scanning at ``r`` pps.

    Each outgoing random tuple marks m bits that live ~Te seconds, so the
    added utilization is roughly ``m * r * Te / 2**n`` (capped at 1).
    """
    if attack_rate_pps < 0 or expiry_timer < 0:
        raise ValueError("rate and expiry timer cannot be negative")
    return min(1.0, num_hashes * attack_rate_pps * expiry_timer / float(1 << order))


@dataclass(frozen=True)
class BitmapParameters:
    """A fully resolved parameter set with its analytical predictions."""

    order: int                 # n
    num_vectors: int           # k
    num_hashes: int            # m
    rotation_interval: float   # dt
    expected_connections: float  # c (per Te window)

    @property
    def expiry_timer(self) -> float:
        return self.num_vectors * self.rotation_interval

    @property
    def memory_bytes(self) -> int:
        return memory_bytes(self.num_vectors, self.order)

    @property
    def utilization(self) -> float:
        return expected_utilization(self.expected_connections, self.num_hashes, self.order)

    @property
    def penetration(self) -> float:
        return penetration_probability_for_load(
            self.expected_connections, self.num_hashes, self.order
        )

    def describe(self) -> str:
        return (
            f"{{{self.num_vectors} x {self.order}}}-bitmap, m={self.num_hashes}, "
            f"dt={self.rotation_interval:g}s (Te={self.expiry_timer:g}s), "
            f"{self.memory_bytes / 1024:.0f} KiB, "
            f"predicted U={self.utilization:.4f}, p={self.penetration:.3e}"
        )


class ParameterAdvisor:
    """Pick (k, n, dt, m) from deployment requirements (Section 3.4).

    Inputs are the desired expiry timer ``Te`` (20-30 s recommended; below
    60 s to dodge port reuse), a rotation granularity ``dt`` (4-5 s
    recommended), the expected maximum number of active connections per Te
    window, and the tolerable penetration probability.
    """

    def __init__(
        self,
        expiry_timer: float = 20.0,
        rotation_interval: float = 5.0,
        max_rotation_interval: float = 10.0,
    ):
        if expiry_timer <= 0 or rotation_interval <= 0:
            raise ValueError("timers must be positive")
        if rotation_interval > expiry_timer:
            raise ValueError("rotation interval cannot exceed the expiry timer")
        self.expiry_timer = expiry_timer
        self.rotation_interval = rotation_interval
        self.max_rotation_interval = max_rotation_interval

    def num_vectors(self) -> int:
        """k = ceil(Te / dt), at least 2."""
        return max(2, math.ceil(self.expiry_timer / self.rotation_interval))

    def recommend(
        self,
        expected_connections: float,
        target_penetration: float = 0.01,
        max_num_hashes: int = 8,
    ) -> BitmapParameters:
        """Smallest-memory parameter set meeting the penetration target.

        Searches n upward from the Eq. (5) bound; for each n picks the
        cheapest m (capped at ``max_num_hashes`` — hashing costs CPU) whose
        Eq. (2) penetration meets the target.
        """
        if expected_connections <= 0:
            raise ValueError("expected connections must be positive")
        k = self.num_vectors()
        order = required_order(expected_connections, target_penetration)
        for n in range(order, 33):
            for m in range(1, max_num_hashes + 1):
                p = penetration_probability_for_load(expected_connections, m, n)
                if p <= target_penetration:
                    return BitmapParameters(
                        order=n,
                        num_vectors=k,
                        num_hashes=m,
                        rotation_interval=self.rotation_interval,
                        expected_connections=expected_connections,
                    )
        raise ValueError(
            f"no feasible configuration up to n=32 for c={expected_connections}, "
            f"p={target_penetration}"
        )

    def capacity_table(self, order: int, targets: List[float]) -> List[dict]:
        """Section 4.1's worked table: max c per penetration target."""
        rows = []
        for p in targets:
            c_max = max_supported_connections(order, p)
            rows.append(
                {
                    "target_penetration": p,
                    "max_connections": c_max,
                    "optimal_m": optimal_num_hashes(order, c_max),
                }
            )
        return rows


def mark_survival_probability(delay: float, num_vectors: int,
                              rotation_interval: float) -> float:
    """Probability a reply delayed by ``delay`` still finds its mark.

    A mark made at a uniformly random phase within a rotation interval is
    erased from the lookup vector by the k-th rotation after it, i.e. after
    between ``(k-1)*dt`` and ``k*dt`` seconds.  Averaged over the phase, the
    survival probability of a single mark at age ``delay`` is::

        P(survive) = 1                          delay <  (k-1)*dt
                   = (k*dt - delay) / dt        (k-1)*dt <= delay < k*dt
                   = 0                          delay >= k*dt

    This is the closed-form false-positive model the paper's Section 3.4
    guidance implies: the expected fraction of legitimate replies dropped is
    ``E[1 - P(survive at D)]`` over the out-in delay distribution D.
    ``tests/properties/test_penetration_model.py`` validates it against the
    real rotating bitmap at random phases.
    """
    if delay < 0:
        raise ValueError("delay cannot be negative")
    if num_vectors < 2 or rotation_interval <= 0:
        raise ValueError("need k >= 2 and dt > 0")
    guaranteed = (num_vectors - 1) * rotation_interval
    expiry = num_vectors * rotation_interval
    if delay < guaranteed:
        return 1.0
    if delay >= expiry:
        return 0.0
    return (expiry - delay) / rotation_interval


def expected_false_positive_rate(delays, num_vectors: int,
                                 rotation_interval: float) -> float:
    """Expected drop fraction of genuine replies with the given delays.

    ``delays`` is any iterable of out-in reply delays (e.g. the output of
    :func:`repro.analysis.delay.out_in_delays`); the result is the mean
    mark-death probability across them — the analytical counterpart of the
    measured Fig. 4 false-positive component.
    """
    total = 0.0
    count = 0
    for delay in delays:
        total += 1.0 - mark_survival_probability(delay, num_vectors,
                                                 rotation_interval)
        count += 1
    if not count:
        return 0.0
    return total / count
