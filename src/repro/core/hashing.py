"""The m shared n-bit hash functions of the bitmap filter.

The paper requires *m* hash functions whose outputs are truncated to *n* bits
and are shared by every bloom-filter row of the bitmap.  We implement them
with the standard Kirsch–Mitzenmacher construction: two independent 64-bit
mixes ``h1`` and ``h2`` of the key, combined as ``g_i = h1 + i * h2 (mod 2^n)``
— this gives a family of any size m with Bloom-filter behaviour
indistinguishable from m independent hashes.

The key space is the directional bitmap key of Section 3.3:
``(protocol, local-address, local-port, remote-address)`` — packed into two
64-bit words and scrambled by splitmix64.  Both a scalar form (used by the
reference filter) and a fully vectorized NumPy form (used by the batch
filter) are provided, and they agree bit-for-bit.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.net.flow import BitmapKey

_MASK64 = (1 << 64) - 1

_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
_SPLITMIX_MUL1 = 0xBF58476D1CE4E5B9
_SPLITMIX_MUL2 = 0x94D049BB133111EB

_FNV64_OFFSET = 0xCBF29CE484222325
_FNV64_PRIME = 0x100000001B3


def splitmix64(x: int) -> int:
    """One round of the splitmix64 finalizer (a strong 64-bit mixer)."""
    z = (x + _SPLITMIX_GAMMA) & _MASK64
    z = ((z ^ (z >> 30)) * _SPLITMIX_MUL1) & _MASK64
    z = ((z ^ (z >> 27)) * _SPLITMIX_MUL2) & _MASK64
    return z ^ (z >> 31)


def splitmix64_vec(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`splitmix64` over a ``uint64`` array."""
    z = x + np.uint64(_SPLITMIX_GAMMA)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(_SPLITMIX_MUL1)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(_SPLITMIX_MUL2)
    return z ^ (z >> np.uint64(31))


def fnv1a64(data: bytes) -> int:
    """FNV-1a over bytes — generic fallback hash for arbitrary keys."""
    value = _FNV64_OFFSET
    for byte in data:
        value ^= byte
        value = (value * _FNV64_PRIME) & _MASK64
    return value


def pack_key(key: BitmapKey) -> Tuple[int, int]:
    """Pack a bitmap key into two 64-bit words (lo, hi)."""
    proto, local_addr, local_port, remote_addr = key
    lo = ((local_addr & 0xFFFFFFFF) << 32) | ((local_port & 0xFFFF) << 16) | (proto & 0xFF)
    hi = remote_addr & 0xFFFFFFFF
    return lo, hi


class HashFamily:
    """m truncated-to-n-bit hash functions via double hashing.

    Parameters
    ----------
    num_hashes:
        m — how many indices each key maps to.
    order:
        n — outputs are in ``[0, 2**n)``.
    seed:
        Makes families independent; an attacker who knows the seed could
        craft colliding tuples, so deployments should randomize it.
    """

    __slots__ = ("_num_hashes", "_order", "_seed", "_mask", "_seed1", "_seed2")

    def __init__(self, num_hashes: int, order: int, seed: int = 0x5EED):
        if num_hashes < 1:
            raise ValueError(f"need at least one hash function, got {num_hashes}")
        if not 3 <= order <= 32:
            raise ValueError(f"hash order must be in [3, 32], got {order}")
        self._num_hashes = num_hashes
        self._order = order
        self._seed = seed & _MASK64
        self._mask = (1 << order) - 1
        # Two derived, independent sub-seeds for the double-hashing pair.
        self._seed1 = splitmix64(self._seed)
        self._seed2 = splitmix64(self._seed ^ _MASK64)

    @property
    def num_hashes(self) -> int:
        return self._num_hashes

    @property
    def order(self) -> int:
        return self._order

    @property
    def seed(self) -> int:
        return self._seed

    # -- scalar path ----------------------------------------------------------

    def base_pair(self, key: BitmapKey) -> Tuple[int, int]:
        """The (h1, h2) 64-bit pair for a key; h2 is forced odd so the probe
        sequence covers the full 2**n ring."""
        lo, hi = pack_key(key)
        h1 = splitmix64(lo ^ splitmix64(hi ^ self._seed1))
        h2 = splitmix64(lo ^ splitmix64(hi ^ self._seed2)) | 1
        return h1, h2

    def indices(self, key: BitmapKey) -> Tuple[int, ...]:
        """The m bit indices for a key (each in ``[0, 2**n)``)."""
        h1, h2 = self.base_pair(key)
        mask = self._mask
        return tuple((h1 + i * h2) & mask for i in range(self._num_hashes))

    # -- vectorized path --------------------------------------------------------

    def pack_keys_vec(
        self,
        proto: np.ndarray,
        local_addr: np.ndarray,
        local_port: np.ndarray,
        remote_addr: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :func:`pack_key` over field arrays."""
        lo = (
            (local_addr.astype(np.uint64) << np.uint64(32))
            | (local_port.astype(np.uint64) << np.uint64(16))
            | proto.astype(np.uint64)
        )
        hi = remote_addr.astype(np.uint64)
        return lo, hi

    def indices_vec(
        self,
        proto: np.ndarray,
        local_addr: np.ndarray,
        local_port: np.ndarray,
        remote_addr: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`indices`: an ``(m, N) uint64`` index matrix."""
        lo, hi = self.pack_keys_vec(proto, local_addr, local_port, remote_addr)
        h1 = splitmix64_vec(lo ^ splitmix64_vec(hi ^ np.uint64(self._seed1)))
        h2 = splitmix64_vec(lo ^ splitmix64_vec(hi ^ np.uint64(self._seed2))) | np.uint64(1)
        steps = np.arange(self._num_hashes, dtype=np.uint64)[:, None]
        return (h1[None, :] + steps * h2[None, :]) & np.uint64(self._mask)

    # -- misc -------------------------------------------------------------------

    def with_order(self, order: int) -> "HashFamily":
        """Same family (m, seed) at a different output width."""
        return HashFamily(self._num_hashes, order, self._seed)

    def __repr__(self) -> str:
        return (
            f"HashFamily(m={self._num_hashes}, n={self._order}, seed={self._seed:#x})"
        )


def uniformity_chi2(samples: Sequence[int], num_bins: int) -> float:
    """Chi-square statistic of hash outputs vs. the uniform distribution.

    Used by tests to sanity-check the hash family: for a good family the
    statistic should be close to ``num_bins - 1`` (its expected value).
    """
    counts = np.bincount(np.asarray(samples) % num_bins, minlength=num_bins)
    expected = len(samples) / num_bins
    return float(((counts - expected) ** 2 / expected).sum())
