"""Fixed-size bit vectors — the rows of the {k x n}-bitmap.

A :class:`BitVector` of order ``n`` holds ``2**n`` bits in a ``bytearray``.
The bytearray backing keeps single-bit operations fast in pure Python, while
:meth:`as_numpy` exposes a zero-copy writable ``uint8`` view for the
vectorized filter path.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

# Popcount lookup for one byte, used by count() without allocating
# an unpacked bit array.
_POPCOUNT8 = np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1).sum(axis=1)
_POPCOUNT8 = _POPCOUNT8.astype(np.uint32)

_BIT_MASKS = tuple(1 << i for i in range(8))


class BitVector:
    """A vector of ``2**order`` bits, all initially zero."""

    __slots__ = ("_order", "_num_bits", "_bytes")

    def __init__(self, order: int):
        if not 3 <= order <= 32:
            raise ValueError(f"bit vector order must be in [3, 32], got {order}")
        self._order = order
        self._num_bits = 1 << order
        self._bytes = bytearray(self._num_bits >> 3)

    # -- basic properties ---------------------------------------------------

    @property
    def order(self) -> int:
        """The ``n`` in ``2**n`` bits."""
        return self._order

    @property
    def num_bits(self) -> int:
        return self._num_bits

    @property
    def num_bytes(self) -> int:
        return len(self._bytes)

    def __len__(self) -> int:
        return self._num_bits

    # -- single-bit operations ----------------------------------------------

    def set(self, index: int) -> None:
        """Set the bit at ``index`` to one."""
        self._bytes[index >> 3] |= _BIT_MASKS[index & 7]

    def test(self, index: int) -> bool:
        """Return whether the bit at ``index`` is one."""
        return bool(self._bytes[index >> 3] & _BIT_MASKS[index & 7])

    def __getitem__(self, index: int) -> bool:
        if not 0 <= index < self._num_bits:
            raise IndexError(f"bit index {index} out of range")
        return self.test(index)

    def set_many(self, indices: Iterable[int]) -> None:
        buf = self._bytes
        for index in indices:
            buf[index >> 3] |= _BIT_MASKS[index & 7]

    def test_all(self, indices: Iterable[int]) -> bool:
        """Return True iff every listed bit is set (Bloom membership test)."""
        buf = self._bytes
        return all(buf[index >> 3] & _BIT_MASKS[index & 7] for index in indices)

    # -- bulk operations ------------------------------------------------------

    def clear(self) -> None:
        """Reset every bit to zero (the ``b.rotate`` clean-up step).

        This is the O(2**n) operation Table 1 characterizes as "reset values
        in a fixed-size and continuous memory" — a single memset here.
        """
        view = memoryview(self._bytes)
        view[:] = bytes(len(self._bytes))

    def count(self) -> int:
        """Number of set bits (the ``b`` of Equation 1)."""
        arr = np.frombuffer(self._bytes, dtype=np.uint8)
        if hasattr(np, "bitwise_count"):  # NumPy >= 2.0: native popcount
            return int(np.bitwise_count(arr).sum(dtype=np.int64))
        return int(_POPCOUNT8[arr].sum())

    def utilization(self) -> float:
        """Fraction of bits set: ``U = b / 2**n`` (Equation 1)."""
        return self.count() / self._num_bits

    def any(self) -> bool:
        arr = np.frombuffer(self._bytes, dtype=np.uint8)
        return bool(arr.any())

    # -- vectorized access ----------------------------------------------------

    def as_numpy(self) -> np.ndarray:
        """Zero-copy writable ``uint8`` view of the backing bytes."""
        return np.frombuffer(self._bytes, dtype=np.uint8)

    def set_many_vec(self, indices: np.ndarray) -> None:
        """Vectorized :meth:`set_many` for a ``uint64``/``int64`` index array.

        Uses ``np.bitwise_or.at`` so duplicate indices are handled correctly.
        """
        view = self.as_numpy()
        byte_idx = (indices >> 3).astype(np.int64)
        masks = np.left_shift(np.uint8(1), (indices & 7).astype(np.uint8))
        np.bitwise_or.at(view, byte_idx, masks)

    def test_many_vec(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized membership: boolean array, one entry per index."""
        view = self.as_numpy()
        byte_idx = (indices >> 3).astype(np.int64)
        shifts = (indices & 7).astype(np.uint8)
        return ((view[byte_idx] >> shifts) & 1).astype(bool)

    # -- misc -----------------------------------------------------------------

    def copy(self) -> "BitVector":
        clone = BitVector(self._order)
        clone._bytes[:] = self._bytes
        return clone

    def set_bit_indices(self) -> List[int]:
        """All indices whose bit is set (for tests/debugging; O(2**n))."""
        arr = np.frombuffer(self._bytes, dtype=np.uint8)
        bits = np.unpackbits(arr, bitorder="little")
        return np.nonzero(bits)[0].tolist()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self._order == other._order and self._bytes == other._bytes

    def __repr__(self) -> str:
        return f"BitVector(order={self._order}, set={self.count()}/{self._num_bits})"
