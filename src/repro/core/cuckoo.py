"""Exact cuckoo flow table — the verification tier behind the bitmap.

The {k×n}-bitmap is a probabilistic pre-filter: a false admit lets an attack
packet reach a client.  This module stores the *exact* directional flow keys
``(protocol, local-address, local-port, remote-address)`` so admits can be
confirmed, the Bloom-pre-filter → exact-table pattern of the DDoS-filtering
survey literature.

Design:

- **Two-choice bucketed cuckoo hashing.**  ``2**order`` buckets of
  ``slots_per_bucket`` slots.  A key hashes (splitmix64, same primitive as
  the bitmap's :class:`~repro.core.hashing.HashFamily`) to bucket ``b1``;
  its alternate bucket is ``b2 = b1 ^ tag`` where ``tag`` is derived from
  the *key's own hash* — so either bucket of a stored entry is computable
  from the entry alone, which is what makes relocation and exact rehash on
  resize possible.  ``tag`` is forced odd so ``b2 != b1``.
- **BFS kicking.**  On a full pair of buckets we breadth-first-search the
  relocation graph for the nearest free slot and shift entries along that
  path (oldest-queued-first, bounded node budget) — shorter chains and
  higher attainable load factors than the classic random-walk kick, and
  fully deterministic.
- **Lazy expiry.**  Entries carry the timestamp of their last refresh and
  are live for ``lifetime`` seconds (the hybrid filter resolves this to the
  bitmap's expiry timer Te by default).  Lookups never mutate, so serial
  and parallel executions observe identical tables.
- **Adaptive resize.**  When occupied slots cross ``grow_at`` of capacity
  the table first purges expired entries in place; if still over, it
  doubles (``order + 1``) and rehashes every live entry exactly.  A resize
  can also be requested externally (the hybrid filter's measured-FPR
  trigger).  Keys are stored whole — 20 bytes of key material per slot —
  precisely so a resize is an exact rehash, never a lossy fingerprint move.

Everything is plain NumPy arrays, snapshot-friendly: :meth:`export_state` /
:meth:`restore_state` round-trip the table through the checksummed v2
snapshot format (see :mod:`repro.core.persistence`).
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.hashing import splitmix64, splitmix64_vec

_MASK64 = (1 << 64) - 1

#: Stamp value marking a never-used slot (never "live": -inf > cutoff is False).
_EMPTY = -np.inf

_GROW_CAUSES = ("utilization", "pressure", "fpr")


def pack_flow(proto: int, local_addr: int, local_port: int, remote_addr: int) -> Tuple[int, int]:
    """Pack a directional flow key into the (lo, hi) word pair the table stores.

    Identical packing to :func:`repro.core.hashing.pack_key` so the bitmap
    and the exact table agree on what "the same flow" means.
    """
    lo = ((local_addr & 0xFFFFFFFF) << 32) | ((local_port & 0xFFFF) << 16) | (proto & 0xFF)
    hi = remote_addr & 0xFFFFFFFF
    return lo, hi


def pack_flows_vec(
    proto: np.ndarray,
    local_addr: np.ndarray,
    local_port: np.ndarray,
    remote_addr: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`pack_flow` over field arrays."""
    lo = (
        (local_addr.astype(np.uint64) << np.uint64(32))
        | (local_port.astype(np.uint64) << np.uint64(16))
        | proto.astype(np.uint64)
    )
    hi = remote_addr.astype(np.uint64)
    return lo, hi


class CuckooFlowTable:
    """Exact set of live directional flow keys with lazy time-based expiry.

    Parameters
    ----------
    order:
        log2 of the initial bucket count.
    slots_per_bucket:
        Entries per bucket (4 supports ~95% load factors).
    lifetime:
        Seconds an entry stays live after its last insert/refresh.
    seed:
        Hash seed; independent of the bitmap's seed.
    max_order:
        Resize ceiling — past it the table overwrites the stalest candidate
        slot instead of growing (counted in ``overwrites``).
    grow_at:
        Occupied-slot fraction that triggers purge-then-grow.
    max_kick_nodes:
        BFS node budget per displaced insert.
    """

    __slots__ = (
        "_order", "_slots", "_lifetime", "_seed", "_max_order", "_grow_at",
        "_max_kick_nodes", "_mask", "_key_lo", "_key_hi", "_stamp",
        "_occupied", "inserts", "refreshes", "kicks", "grows", "overwrites",
        "lookups", "hits", "grow_causes",
    )

    def __init__(
        self,
        order: int = 8,
        slots_per_bucket: int = 4,
        lifetime: float = 20.0,
        seed: int = 0xC0C0A,
        max_order: int = 24,
        grow_at: float = 0.85,
        max_kick_nodes: int = 64,
    ):
        if not 2 <= order <= 28:
            raise ValueError(f"cuckoo order must be in [2, 28], got {order}")
        if not order <= max_order <= 28:
            raise ValueError(f"max_order must be in [order, 28], got {max_order}")
        if slots_per_bucket < 1:
            raise ValueError(f"need at least one slot per bucket, got {slots_per_bucket}")
        if not lifetime > 0:
            raise ValueError(f"lifetime must be positive, got {lifetime}")
        if not 0.0 < grow_at <= 1.0:
            raise ValueError(f"grow_at must be in (0, 1], got {grow_at}")
        self._order = order
        self._slots = slots_per_bucket
        self._lifetime = float(lifetime)
        self._seed = splitmix64(seed & _MASK64)
        self._max_order = max_order
        self._grow_at = grow_at
        self._max_kick_nodes = max_kick_nodes
        self._alloc()
        self.inserts = 0
        self.refreshes = 0
        self.kicks = 0
        self.grows = 0
        self.overwrites = 0
        self.lookups = 0
        self.hits = 0
        self.grow_causes = {cause: 0 for cause in _GROW_CAUSES}

    def _alloc(self) -> None:
        buckets = 1 << self._order
        self._mask = buckets - 1
        self._key_lo = np.zeros((buckets, self._slots), dtype=np.uint64)
        self._key_hi = np.zeros((buckets, self._slots), dtype=np.uint64)
        self._stamp = np.full((buckets, self._slots), _EMPTY, dtype=np.float64)
        self._occupied = 0

    # -- geometry ---------------------------------------------------------------

    @property
    def order(self) -> int:
        return self._order

    @property
    def num_buckets(self) -> int:
        return 1 << self._order

    @property
    def slots_per_bucket(self) -> int:
        return self._slots

    @property
    def capacity(self) -> int:
        return (1 << self._order) * self._slots

    @property
    def lifetime(self) -> float:
        return self._lifetime

    @property
    def max_order(self) -> int:
        """Growth ceiling: at this order inserts overwrite-stalest instead."""
        return self._max_order

    @property
    def grow_at(self) -> float:
        """Utilization fraction that triggers purge-then-grow."""
        return self._grow_at

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def occupancy(self) -> int:
        """Slots holding an entry (live or expired-but-not-yet-reclaimed)."""
        return self._occupied

    @property
    def utilization(self) -> float:
        return self._occupied / self.capacity

    @property
    def memory_bytes(self) -> int:
        """Bytes of key/stamp storage (8 + 8 + 8 per slot)."""
        return self._key_lo.nbytes + self._key_hi.nbytes + self._stamp.nbytes

    def live_count(self, now: float) -> int:
        """Entries still within their lifetime at ``now`` (O(capacity))."""
        return int((self._stamp > now - self._lifetime).sum())

    # -- hashing ----------------------------------------------------------------

    def _bucket_and_tag(self, lo: int, hi: int) -> Tuple[int, int]:
        h = splitmix64(lo ^ splitmix64(hi ^ self._seed))
        bucket = h & self._mask
        # The tag is derived from high hash bits and forced odd, so the
        # alternate bucket b ^ tag is always distinct and either bucket of a
        # stored key is recomputable from the key alone.
        tag = ((h >> 32) & self._mask) | 1
        return bucket, tag

    def _alt_bucket(self, bucket: int, lo: int, hi: int) -> int:
        b1, tag = self._bucket_and_tag(lo, hi)
        del b1
        return bucket ^ tag

    # -- scalar path ------------------------------------------------------------

    def contains(self, lo: int, hi: int, ts: float) -> bool:
        """Is the key live at time ``ts``?  Never mutates the table."""
        self.lookups += 1
        cutoff = ts - self._lifetime
        b1, tag = self._bucket_and_tag(lo, hi)
        klo, khi, stamp = self._key_lo, self._key_hi, self._stamp
        ulo, uhi = np.uint64(lo), np.uint64(hi)
        for b in (b1, b1 ^ tag):
            row_lo, row_hi, row_st = klo[b], khi[b], stamp[b]
            for s in range(self._slots):
                if row_st[s] > cutoff and row_lo[s] == ulo and row_hi[s] == uhi:
                    self.hits += 1
                    return True
        return False

    def insert(self, lo: int, hi: int, ts: float,
               gc_now: Optional[float] = None) -> None:
        """Insert or refresh the key with stamp ``ts``.

        ``gc_now`` bounds garbage collection: entries are only reclaimed
        (purged, dropped on grow, or treated as free slots) when expired
        relative to ``gc_now`` rather than ``ts``.  Batch replays pass the
        window start so an insert stamped late in a window can never evict
        an entry that an earlier lookup in the same window still considers
        live; the scalar path leaves it at the default (``ts``).
        """
        gc_now = ts if gc_now is None else min(gc_now, ts)
        self.inserts += 1
        self._insert(lo, hi, ts, gc_now)
        if self._occupied >= self._grow_at * self.capacity:
            self._purge_expired(gc_now)
            if self._occupied >= self._grow_at * self.capacity:
                self._grow(gc_now, cause="utilization")

    def _insert(self, lo: int, hi: int, ts: float, gc_now: float) -> None:
        cutoff = gc_now - self._lifetime
        b1, tag = self._bucket_and_tag(lo, hi)
        b2 = b1 ^ tag
        klo, khi, stamp = self._key_lo, self._key_hi, self._stamp
        ulo, uhi = np.uint64(lo), np.uint64(hi)
        # Refresh if present (live or expired — either way it's our slot now).
        for b in (b1, b2):
            row_lo, row_hi = klo[b], khi[b]
            for s in range(self._slots):
                if stamp[b, s] != _EMPTY and row_lo[s] == ulo and row_hi[s] == uhi:
                    stamp[b, s] = ts
                    self.refreshes += 1
                    return
        # Free slot: never-used or expired.
        for b in (b1, b2):
            for s in range(self._slots):
                st = stamp[b, s]
                if st == _EMPTY or st <= cutoff:
                    self._place(b, s, ulo, uhi, ts, was_empty=st == _EMPTY)
                    return
        # Both buckets full of live entries: BFS a relocation path.
        if self._bfs_insert(b1, b2, ulo, uhi, ts, cutoff):
            return
        # The relocation graph is jammed.  Grow if allowed, else overwrite
        # the stalest candidate slot (conservative: evicts the entry closest
        # to expiry).
        if self._order < self._max_order:
            self._grow(gc_now, cause="pressure")
            self._insert(lo, hi, ts, gc_now)
            return
        self.overwrites += 1
        rows = np.concatenate([stamp[b1], stamp[b2]])
        flat = int(rows.argmin())
        b, s = (b1, flat) if flat < self._slots else (b2, flat - self._slots)
        self._place(b, s, ulo, uhi, ts, was_empty=False)

    def _place(self, bucket: int, slot: int, ulo: np.uint64, uhi: np.uint64,
               ts: float, was_empty: bool) -> None:
        self._key_lo[bucket, slot] = ulo
        self._key_hi[bucket, slot] = uhi
        self._stamp[bucket, slot] = ts
        if was_empty:
            self._occupied += 1

    def _bfs_insert(self, b1: int, b2: int, ulo: np.uint64, uhi: np.uint64,
                    ts: float, cutoff: float) -> bool:
        """Find the nearest free slot reachable by relocations and shift
        entries along the path; the freed root slot takes the new key."""
        # paths[i] = (bucket, parent_index, slot_in_parent_bucket)
        paths = [(b1, -1, -1), (b2, -1, -1)]
        visited = {b1, b2}
        queue = deque((0, 1))
        stamp, klo, khi = self._stamp, self._key_lo, self._key_hi
        while queue and len(paths) < self._max_kick_nodes:
            i = queue.popleft()
            bucket = paths[i][0]
            for s in range(self._slots):
                st = stamp[bucket, s]
                if st == _EMPTY or st <= cutoff:
                    # Walk the path backwards, shifting each blocking entry
                    # into the slot just freed below it.
                    was_empty = st == _EMPTY
                    free_slot = s
                    cur = i
                    while paths[cur][1] != -1:
                        _, parent, parent_slot = paths[cur]
                        pb = paths[parent][0]
                        self._key_lo[bucket, free_slot] = klo[pb, parent_slot]
                        self._key_hi[bucket, free_slot] = khi[pb, parent_slot]
                        self._stamp[bucket, free_slot] = stamp[pb, parent_slot]
                        self.kicks += 1
                        bucket, free_slot, cur = pb, parent_slot, parent
                    self._place(bucket, free_slot, ulo, uhi, ts, was_empty=was_empty)
                    return True
            for s in range(self._slots):
                alt = self._alt_bucket(bucket, int(klo[bucket, s]), int(khi[bucket, s]))
                if alt not in visited:
                    visited.add(alt)
                    paths.append((alt, i, s))
                    queue.append(len(paths) - 1)
        return False

    # -- vectorized path --------------------------------------------------------

    def _buckets_vec(self, lo: np.ndarray, hi: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        h = splitmix64_vec(lo ^ splitmix64_vec(hi ^ np.uint64(self._seed)))
        mask = np.uint64(self._mask)
        b1 = h & mask
        tag = ((h >> np.uint64(32)) & mask) | np.uint64(1)
        return b1.astype(np.int64), (b1 ^ tag).astype(np.int64)

    def contains_batch(self, lo: np.ndarray, hi: np.ndarray, ts: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`contains`: boolean live-membership mask."""
        lo = np.ascontiguousarray(lo, dtype=np.uint64)
        hi = np.ascontiguousarray(hi, dtype=np.uint64)
        n = len(lo)
        self.lookups += n
        if n == 0:
            return np.zeros(0, dtype=bool)
        cutoff = (np.asarray(ts, dtype=np.float64) - self._lifetime)[:, None]
        found = np.zeros(n, dtype=bool)
        for buckets in self._buckets_vec(lo, hi):
            hit = (
                (self._key_lo[buckets] == lo[:, None])
                & (self._key_hi[buckets] == hi[:, None])
                & (self._stamp[buckets] > cutoff)
            )
            found |= hit.any(axis=1)
        self.hits += int(found.sum())
        return found

    def insert_batch(self, lo: np.ndarray, hi: np.ndarray, ts: np.ndarray,
                     gc_now: Optional[float] = None) -> None:
        """Insert keys in array order, bit-identical to sequential
        :meth:`insert` calls (pinned by the batch/scalar digest-parity
        test).  In serving steady state almost every outgoing packet
        refreshes a flow the table already holds, so runs of refreshes are
        applied as one vectorized stamp write; a genuinely new key falls
        back to the scalar insert (which may kick or grow), after which the
        remaining run is re-resolved against the updated layout.  Batches
        dominated by new keys (flow churn, worm outbreaks) skip straight to
        the scalar loop rather than re-resolving after every miss.

        ``gc_now`` is forwarded to every :meth:`insert` — windowed replays
        pass the window start so collection stays conservative across the
        whole batch (see :meth:`insert`)."""
        lo = np.ascontiguousarray(lo, dtype=np.uint64)
        hi = np.ascontiguousarray(hi, dtype=np.uint64)
        ts = np.ascontiguousarray(ts, dtype=np.float64)
        n = len(lo)
        start = 0
        while start < n:
            # Fixed-size chunks bound the re-resolution cost after a miss
            # to O(chunk) instead of O(remaining batch).
            end = min(start + 1024, n)
            while start < end:
                # At the growth threshold the scalar path purges/grows on
                # its next call (even a refresh); delegate one element so
                # the vectorized refreshes below stay growth-neutral.
                if self._occupied >= self._grow_at * self.capacity:
                    self.insert(int(lo[start]), int(hi[start]),
                                float(ts[start]), gc_now)
                    start += 1
                    continue
                rlo, rhi, rts = lo[start:end], hi[start:end], ts[start:end]
                # A present key (live *or* expired — same criterion as the
                # scalar refresh) occupies exactly one slot, so the two
                # bucket probes resolve it unambiguously.
                sel_b = np.full(len(rlo), -1, dtype=np.int64)
                sel_s = np.zeros(len(rlo), dtype=np.int64)
                for b in self._buckets_vec(rlo, rhi):
                    hit = (
                        (self._key_lo[b] == rlo[:, None])
                        & (self._key_hi[b] == rhi[:, None])
                        & (self._stamp[b] != _EMPTY)
                    )
                    rows = hit.any(axis=1)
                    sel_b[rows] = b[rows]
                    sel_s[rows] = hit.argmax(axis=1)[rows]
                present = sel_b >= 0
                if np.count_nonzero(present) * 2 < len(rlo):
                    for i in range(start, end):
                        self.insert(int(lo[i]), int(hi[i]), float(ts[i]),
                                    gc_now)
                    start = end
                    break
                misses = np.nonzero(~present)[0]
                run = int(misses[0]) if len(misses) else len(rlo)
                if run:
                    # Fancy assignment takes the last write per slot,
                    # matching sequential refreshes of a repeated key (ts
                    # is in batch order).
                    self._stamp[sel_b[:run], sel_s[:run]] = rts[:run]
                    self.inserts += run
                    self.refreshes += run
                    start += run
                if run < len(rlo):
                    self.insert(int(lo[start]), int(hi[start]),
                                float(ts[start]), gc_now)
                    start += 1

    # -- maintenance ------------------------------------------------------------

    def _purge_expired(self, now: float) -> None:
        dead = (self._stamp != _EMPTY) & (self._stamp <= now - self._lifetime)
        n = int(dead.sum())
        if n:
            self._stamp[dead] = _EMPTY
            self._occupied -= n

    def _grow(self, now: float, cause: str) -> None:
        if self._order >= self._max_order:
            return
        old_lo, old_hi, old_stamp = self._key_lo, self._key_hi, self._stamp
        self._order += 1
        self._alloc()
        self.grows += 1
        self.grow_causes[cause] += 1
        # Exact rehash of every live entry; expired ones are garbage-collected
        # by the move.
        live = old_stamp > now - self._lifetime
        for lo, hi, ts in zip(
            old_lo[live].tolist(), old_hi[live].tolist(), old_stamp[live].tolist()
        ):
            self._insert(lo, hi, ts, now)

    def grow_for_pressure(self, now: float, cause: str = "fpr") -> bool:
        """Externally requested doubling (e.g. measured-FPR trigger).

        Returns False once the ``max_order`` ceiling is reached.
        """
        if self._order >= self._max_order:
            return False
        self._grow(now, cause=cause)
        return True

    # -- snapshot / copy --------------------------------------------------------

    def state_digest(self) -> str:
        """SHA-256 over the raw table arrays (geometry-independent of layout)."""
        digest = hashlib.sha256()
        digest.update(np.ascontiguousarray(self._key_lo).tobytes())
        digest.update(np.ascontiguousarray(self._key_hi).tobytes())
        digest.update(np.ascontiguousarray(self._stamp).tobytes())
        return digest.hexdigest()

    def export_state(self) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
        """(arrays, metadata) for the snapshot writer."""
        arrays = {
            "cuckoo_key_lo": self._key_lo.copy(),
            "cuckoo_key_hi": self._key_hi.copy(),
            "cuckoo_stamp": self._stamp.copy(),
        }
        meta = {
            "order": self._order,
            "slots_per_bucket": self._slots,
            "lifetime": self._lifetime,
            "seed": int(self._seed),
            "max_order": self._max_order,
            "grow_at": self._grow_at,
            "max_kick_nodes": self._max_kick_nodes,
            "occupied": self._occupied,
            "sha256": self.state_digest(),
        }
        return arrays, meta

    @classmethod
    def from_state(cls, arrays: Dict[str, np.ndarray], meta: Dict[str, object]) -> "CuckooFlowTable":
        """Rebuild a table from :meth:`export_state` output."""
        table = cls.__new__(cls)
        table._order = int(meta["order"])
        table._slots = int(meta["slots_per_bucket"])
        table._lifetime = float(meta["lifetime"])
        table._seed = int(meta["seed"])
        table._max_order = int(meta["max_order"])
        table._grow_at = float(meta["grow_at"])
        table._max_kick_nodes = int(meta["max_kick_nodes"])
        table._mask = (1 << table._order) - 1
        key_lo = np.ascontiguousarray(arrays["cuckoo_key_lo"], dtype=np.uint64)
        key_hi = np.ascontiguousarray(arrays["cuckoo_key_hi"], dtype=np.uint64)
        stamp = np.ascontiguousarray(arrays["cuckoo_stamp"], dtype=np.float64)
        shape = (1 << table._order, table._slots)
        for name, arr in (("key_lo", key_lo), ("key_hi", key_hi), ("stamp", stamp)):
            if arr.shape != shape:
                raise ValueError(
                    f"cuckoo snapshot {name} shape {arr.shape} does not match "
                    f"geometry {shape}"
                )
        table._key_lo = key_lo
        table._key_hi = key_hi
        table._stamp = stamp
        table._occupied = int(meta["occupied"])
        table.inserts = table.refreshes = table.kicks = 0
        table.grows = table.overwrites = table.lookups = table.hits = 0
        table.grow_causes = {cause: 0 for cause in _GROW_CAUSES}
        return table

    def copy(self) -> "CuckooFlowTable":
        """Independent deep copy (used when materializing snapshots)."""
        arrays, meta = self.export_state()
        clone = CuckooFlowTable.from_state(arrays, meta)
        clone.inserts = self.inserts
        clone.refreshes = self.refreshes
        clone.kicks = self.kicks
        clone.grows = self.grows
        clone.overwrites = self.overwrites
        clone.lookups = self.lookups
        clone.hits = self.hits
        clone.grow_causes = dict(self.grow_causes)
        return clone

    def counters(self) -> Dict[str, int]:
        return {
            "inserts": self.inserts,
            "refreshes": self.refreshes,
            "kicks": self.kicks,
            "grows": self.grows,
            "overwrites": self.overwrites,
            "lookups": self.lookups,
            "hits": self.hits,
        }

    def __repr__(self) -> str:
        return (
            f"CuckooFlowTable(order={self._order}, slots={self._slots}, "
            f"occupied={self._occupied}/{self.capacity}, "
            f"lifetime={self._lifetime})"
        )
