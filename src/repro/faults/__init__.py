"""Fault injection for the bitmap filter: chaos testing the inline path.

An inline filter at an edge router fails in ways the paper never models —
its rotation timer stalls, its process crashes mid-trace and restores from a
stale checkpoint, cosmic rays or bad RAM flip bits in its vectors, and the
packet stream itself arrives reordered, duplicated, or with gaps.  This
package provides composable injectors for each of those faults plus a
harness that replays any labelled trace through a filter while a fault
schedule fires, so the headline metrics (attack filter rate, benign drop
rate) can be measured *under* each fault and compared against the fault-free
baseline (``python -m repro resilience``).

Modules
-------
- :mod:`repro.faults.injectors` — the fault injectors (filter-level and
  trace-level) and the :class:`FaultEvent`/:class:`FaultInjector` protocol.
- :mod:`repro.faults.harness` — :func:`run_with_faults`, the segmented batch
  runner that applies a fault schedule during a trace replay.
- :mod:`repro.faults.socket_chaos` — :class:`ChaosTcpProxy`, transport-level
  chaos (connection resets, accept-then-stall, slow/partial writes) between
  a serve client and a daemon, for the fleet failover tests.
"""

from repro.faults.harness import FaultedRunResult, run_with_faults
from repro.faults.injectors import (
    BitFlips,
    CrashRestart,
    FaultEvent,
    FaultInjector,
    Outage,
    PacketDuplication,
    PacketReorder,
    RotationStall,
    TraceGap,
    flip_random_bits,
    perturbed_stream,
)
from repro.faults.socket_chaos import CHAOS_MODES, ChaosTcpProxy

__all__ = [
    "BitFlips",
    "CHAOS_MODES",
    "ChaosTcpProxy",
    "CrashRestart",
    "FaultEvent",
    "FaultInjector",
    "FaultedRunResult",
    "Outage",
    "PacketDuplication",
    "PacketReorder",
    "RotationStall",
    "TraceGap",
    "flip_random_bits",
    "perturbed_stream",
    "run_with_faults",
]
