"""Composable fault injectors for the bitmap filter and its packet stream.

Two kinds of fault, one interface.  *Trace-level* injectors perturb the
packet stream before the run (reordering, duplication, gaps) via
``transform_trace``.  *Filter-level* injectors schedule timestamped
:class:`FaultEvent` actions against the live filter (stall the rotation
timer, crash and restore from a checkpoint, flip bits) via ``events``; the
harness in :mod:`repro.faults.harness` splits the batch replay at each
event's timestamp and applies it between segments.

Every injector is deterministic given its seed, so a chaos run is exactly
reproducible.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.core.bitmap import Bitmap
from repro.core.bitmap_filter import BitmapFilter
from repro.core.filter_api import build_filter
from repro.net.packet import Packet, PacketArray
from repro.traffic.trace import Trace


@dataclass
class FaultEvent:
    """One timestamped action against the live filter.

    ``apply`` may return a replacement :class:`BitmapFilter` (crash/restore
    swaps the instance); returning ``None`` keeps the current one.
    """

    ts: float
    label: str
    apply: Callable[[BitmapFilter, float], Optional[BitmapFilter]] = field(repr=False)


class FaultInjector:
    """Base class: a no-op fault.  Subclasses override one or both hooks."""

    name = "fault"

    def transform_trace(self, trace: Trace) -> Trace:
        """Perturb the packet stream before the run (trace-level faults)."""
        return trace

    def events(self) -> List[FaultEvent]:
        """Timestamped actions against the live filter (filter-level faults)."""
        return []


# -- filter-level faults ------------------------------------------------------


class RotationStall(FaultInjector):
    """The rotation timer wedges at ``at`` and recovers ``duration`` later.

    While stalled no vector is cleared, so utilization — and the penetration
    probability U^m — creeps up.  On recovery, ``catch_up=True`` fires every
    missed rotation immediately (the robust behavior); ``catch_up=False``
    models the naive late timer that silently stretches Te by the stall.
    """

    def __init__(self, at: float, duration: float, catch_up: bool = True):
        if duration <= 0:
            raise ValueError("stall duration must be positive")
        self.at = at
        self.duration = duration
        self.catch_up = catch_up
        self.name = f"rotation-stall[{duration:g}s{'' if catch_up else ',no-catchup'}]"

    def events(self) -> List[FaultEvent]:
        def stall(filt: BitmapFilter, now: float) -> None:
            filt.stall_rotations()

        def resume(filt: BitmapFilter, now: float) -> None:
            filt.resume_rotations(now, catch_up=self.catch_up)

        return [
            FaultEvent(self.at, f"{self.name}:stall", stall),
            FaultEvent(self.at + self.duration, f"{self.name}:resume", resume),
        ]


class Outage(FaultInjector):
    """The filter is down for ``[at, at + duration)``; state survives.

    Models a wedged process or maintenance window: verdicts during the
    outage come from the filter's ``fail_policy`` alone.  Recovery catches
    up missed rotations and (optionally) opens a warm-up grace window.
    """

    def __init__(self, at: float, duration: float,
                 warmup_grace: Optional[float] = None):
        if duration <= 0:
            raise ValueError("outage duration must be positive")
        self.at = at
        self.duration = duration
        self.warmup_grace = warmup_grace
        self.name = f"outage[{duration:g}s]"

    def events(self) -> List[FaultEvent]:
        def down(filt: BitmapFilter, now: float) -> None:
            filt.fail()

        def up(filt: BitmapFilter, now: float) -> None:
            filt.recover(now, warmup_grace=self.warmup_grace)

        return [
            FaultEvent(self.at, f"{self.name}:down", down),
            FaultEvent(self.at + self.duration, f"{self.name}:up", up),
        ]


class CrashRestart(FaultInjector):
    """The filter process dies at ``crash_at`` and restarts ``downtime`` later.

    With ``snapshot_age`` set, a checkpoint taken that many seconds before
    the crash is restored (missed rotations catch up, and the restart opens
    a warm-up grace window sized by :func:`repro.core.persistence.restore_filter`
    unless ``warmup_grace`` overrides it).  With ``snapshot_age=None`` the
    restart is *cold*: a fresh empty filter whose grace window defaults to
    Te — without it, every in-flight flow's inbound packets would drop until
    the bitmap re-learns them.
    """

    def __init__(self, crash_at: float, downtime: float,
                 snapshot_age: Optional[float] = None,
                 warmup_grace: Optional[float] = None):
        if downtime <= 0:
            raise ValueError("downtime must be positive")
        if snapshot_age is not None and not 0 <= snapshot_age <= crash_at:
            raise ValueError("snapshot must be taken at a non-negative time "
                             "at or before the crash")
        self.crash_at = crash_at
        self.downtime = downtime
        self.snapshot_age = snapshot_age
        self.warmup_grace = warmup_grace
        self._snapshot: Optional[io.BytesIO] = None
        kind = "cold" if snapshot_age is None else f"snapshot-{snapshot_age:g}s-old"
        self.name = f"crash-restart[{downtime:g}s,{kind}]"

    def events(self) -> List[FaultEvent]:
        from repro.core.persistence import restore_filter, save_filter

        events: List[FaultEvent] = []

        if self.snapshot_age is not None:
            def checkpoint(filt: BitmapFilter, now: float) -> None:
                self._snapshot = io.BytesIO()
                save_filter(filt, self._snapshot)

            events.append(FaultEvent(self.crash_at - self.snapshot_age,
                                     f"{self.name}:checkpoint", checkpoint))

        def crash(filt: BitmapFilter, now: float) -> None:
            filt.fail()

        def restart(filt: BitmapFilter, now: float) -> BitmapFilter:
            if self._snapshot is not None:
                self._snapshot.seek(0)
                restored = restore_filter(self._snapshot, now,
                                          warmup_grace=self.warmup_grace)
                restored.set_fail_policy(filt.fail_policy)
                return restored
            grace = (filt.config.expiry_timer if self.warmup_grace is None
                     else self.warmup_grace)
            # A cold restart keeps the stack shape (a hybrid comes back as a
            # hybrid) but none of the state — bitmap and flow table restart
            # empty behind the warm-up grace window.
            cold = build_filter(filt.config, filt.protected, start_time=now,
                                fail_policy=filt.fail_policy, backend="serial",
                                layers=getattr(filt, "layers", ()))
            if grace > 0:
                cold.begin_warmup(now + grace)
            return cold

        events.append(FaultEvent(self.crash_at, f"{self.name}:crash", crash))
        events.append(FaultEvent(self.crash_at + self.downtime,
                                 f"{self.name}:restart", restart))
        return events


class BitFlips(FaultInjector):
    """Random bit flips across the bitmap's vectors at time ``at``.

    ``fraction`` is the per-bit flip probability (bad RAM, cosmic rays, a
    buggy DMA peer).  0→1 flips add false marks (penetration up); 1→0 flips
    erase real marks (benign drops up) — the Retouched-Bloom-Filter
    trade-off, here as an injected fault.
    """

    def __init__(self, at: float, fraction: float, seed: int = 0xB17F11):
        if not 0 <= fraction <= 1:
            raise ValueError("flip fraction must be within [0, 1]")
        self.at = at
        self.fraction = fraction
        self.seed = seed
        self.flipped = 0
        self.name = f"bit-flips[{fraction:g}]"

    def events(self) -> List[FaultEvent]:
        def flip(filt: BitmapFilter, now: float) -> None:
            # Going through the filter's own fault surface (instead of
            # XORing filt.bitmap directly) keeps the injector working
            # against the sharded proxy, which broadcasts the flip so
            # every worker replica corrupts identically.
            self.flipped = filt.flip_bits(self.fraction, self.seed)

        return [FaultEvent(self.at, self.name, flip)]


def flip_random_bits(bitmap: Bitmap, fraction: float,
                     rng: np.random.Generator) -> int:
    """Flip each bit of every vector with probability ``fraction``.

    Returns the total number of bits flipped (binomially sampled per
    vector, XORed through the writable numpy views).  Kept for direct
    bitmap-level corruption; :meth:`BitmapFilter.flip_bits` is the
    filter-level twin the injectors use.
    """
    total = 0
    for vec in bitmap.vectors:
        count = int(rng.binomial(vec.num_bits, fraction))
        if not count:
            continue
        indices = rng.choice(vec.num_bits, size=count, replace=False)
        view = vec.as_numpy()
        byte_idx = (indices >> 3).astype(np.int64)
        masks = np.left_shift(np.uint8(1), (indices & 7).astype(np.uint8))
        np.bitwise_xor.at(view, byte_idx, masks)
        total += count
    return total


# -- trace-level faults -------------------------------------------------------


class PacketReorder(FaultInjector):
    """A fraction of packets is delayed in flight by up to ``max_delay``.

    Delivery order is what the filter sees, so delayed packets get their
    delivery timestamp and the stream is re-sorted.  Late replies whose
    marks expired in the meantime become benign drops.  (For a *raw*
    out-of-order stream — timestamps unchanged, positions shuffled — feed
    :func:`perturbed_stream` to a tolerance-mode
    :class:`~repro.sim.engine.SimulationEngine` instead.)
    """

    def __init__(self, fraction: float, max_delay: float, seed: int = 0x0DD5):
        if not 0 < fraction <= 1:
            raise ValueError("reorder fraction must be within (0, 1]")
        if max_delay <= 0:
            raise ValueError("max delay must be positive")
        self.fraction = fraction
        self.max_delay = max_delay
        self.seed = seed
        self.name = f"reorder[{fraction:g},{max_delay:g}s]"

    def transform_trace(self, trace: Trace) -> Trace:
        rng = np.random.default_rng(self.seed)
        data = trace.packets.data.copy()
        delayed = rng.random(len(data)) < self.fraction
        data["ts"][delayed] += rng.uniform(0.0, self.max_delay,
                                           size=int(delayed.sum()))
        packets = PacketArray(data).sorted_by_time()
        metadata = dict(trace.metadata)
        metadata["fault"] = self.name
        return Trace(packets, trace.protected, metadata)


class PacketDuplication(FaultInjector):
    """A fraction of packets arrives twice, the copy ``delay`` seconds later.

    Duplicated outgoing packets re-mark already-set bits (harmless);
    duplicated inbound packets are re-checked — a benign duplicate passes as
    long as its mark is alive, and a duplicate attack packet gets a second
    chance to penetrate.
    """

    def __init__(self, fraction: float, delay: float = 0.1, seed: int = 0xD0BB1E):
        if not 0 < fraction <= 1:
            raise ValueError("duplication fraction must be within (0, 1]")
        if delay < 0:
            raise ValueError("duplication delay must be non-negative")
        self.fraction = fraction
        self.delay = delay
        self.seed = seed
        self.name = f"duplicate[{fraction:g},{delay:g}s]"

    def transform_trace(self, trace: Trace) -> Trace:
        rng = np.random.default_rng(self.seed)
        data = trace.packets.data
        chosen = rng.random(len(data)) < self.fraction
        copies = data[chosen].copy()
        copies["ts"] += self.delay
        packets = PacketArray(
            np.concatenate([data, copies])).sorted_by_time()
        metadata = dict(trace.metadata)
        metadata["fault"] = self.name
        metadata["duplicated_packets"] = int(chosen.sum())
        return Trace(packets, trace.protected, metadata)


class TraceGap(FaultInjector):
    """Every packet in ``[start, start + duration)`` is lost upstream.

    Models an upstream outage or capture loss.  Outgoing requests lost in
    the gap never mark the bitmap, so their replies arrive unsolicited and
    are dropped — loss converts directly into benign drops downstream.
    """

    def __init__(self, start: float, duration: float):
        if duration <= 0:
            raise ValueError("gap duration must be positive")
        self.start = start
        self.duration = duration
        self.name = f"gap[{start:g}+{duration:g}s]"

    def transform_trace(self, trace: Trace) -> Trace:
        ts = trace.packets.ts
        keep = (ts < self.start) | (ts >= self.start + self.duration)
        metadata = dict(trace.metadata)
        metadata["fault"] = self.name
        metadata["gap_lost_packets"] = int((~keep).sum())
        return Trace(trace.packets[keep], trace.protected, metadata)


def perturbed_stream(packets: PacketArray, fraction: float,
                     max_displacement: int, seed: int = 0x0DD5) -> List[Packet]:
    """An out-of-order delivery of ``packets``: timestamps intact, positions not.

    A sampled fraction of packets is displaced up to ``max_displacement``
    positions later in the stream, producing exactly the input a strict
    :class:`~repro.sim.engine.SimulationEngine` rejects and a
    tolerance-mode engine accepts.
    """
    if max_displacement < 1:
        raise ValueError("max displacement must be at least 1")
    rng = np.random.default_rng(seed)
    order = list(range(len(packets)))
    for i in range(len(order)):
        if rng.random() < fraction:
            j = min(i + 1 + int(rng.integers(max_displacement)), len(order) - 1)
            order.insert(j, order.pop(i))
    return [packets.packet(i) for i in order]
