"""The chaos harness: replay a trace through a filter while faults fire.

:func:`run_with_faults` is the fault-injecting twin of
:func:`repro.sim.pipeline.run_filter_on_trace`: same trace in, same scored
:class:`~repro.sim.metrics.FilterRunResult` out, but with a fault schedule
applied during the replay.  Trace-level injectors transform the stream
first; filter-level injectors contribute timestamped :class:`FaultEvent`
actions, and the batch replay is split at each event's timestamp so the
action lands between exactly the right two packets.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.bitmap_filter import BitmapFilter
from repro.faults.injectors import FaultInjector
from repro.sim.metrics import FilterRunResult, score_run
from repro.telemetry.profiling import Timer
from repro.telemetry.registry import get_registry
from repro.traffic.trace import Trace


def _injection_counter(registry, fault_name: str):
    """The ``repro_faults_injected_total`` counter labelled by injector name."""
    return registry.counter(
        "repro_faults_injected_total",
        "Fault injections fired (trace transforms and timed events), "
        "by injector",
        fault=fault_name,
    )


@dataclass
class FaultedRunResult:
    """A scored filter run plus the fault schedule that ran against it."""

    run: FilterRunResult
    trace: Trace                      # the (possibly transformed) trace scored
    filter: BitmapFilter              # the surviving filter instance
    fault_log: List[Tuple[float, str]] = field(default_factory=list)
    filters_swapped: int = 0          # crash/restore instance replacements

    @property
    def confusion(self):
        return self.run.confusion

    def incoming_pass_fraction(self, start: float, end: float) -> float:
        """Fraction of inbound packets in ``[start, end)`` that passed.

        The degraded-mode probe: during a fail-closed outage this is 0.0,
        during a fail-open outage it is 1.0.
        """
        ts = self.trace.packets.ts
        window = self.run.incoming_mask & (ts >= start) & (ts < end)
        total = int(window.sum())
        if not total:
            return float("nan")
        return float(self.run.verdicts[window].sum()) / total


def run_with_faults(
    filt: BitmapFilter,
    trace: Trace,
    injectors: Sequence[FaultInjector],
    exact: bool = True,
) -> FaultedRunResult:
    """Run ``filt`` over ``trace`` while the injectors' fault schedule fires.

    Equivalent to :func:`~repro.sim.pipeline.run_filter_on_trace` when
    ``injectors`` is empty.  Events land between segments: an event at time
    t applies before any packet with timestamp >= t.  An event's action may
    replace the filter instance (crash/restore); subsequent segments run
    against the replacement.
    """
    registry = get_registry()
    tel = registry if registry.enabled else None

    with Timer("fault_transform"):
        for injector in injectors:
            transformed = injector.transform_trace(trace)
            if tel is not None and transformed is not trace:
                _injection_counter(registry, injector.name).inc()
            trace = transformed

    events = sorted(
        ((event, injector.name)
         for injector in injectors for event in injector.events()),
        key=lambda pair: pair[0].ts,
    )

    packets = trace.packets
    ts = packets.ts
    directions = packets.directions(trace.protected)
    incoming_mask = directions == 1

    fault_log: List[Tuple[float, str]] = []
    swapped = 0
    verdict_parts: List[np.ndarray] = []
    cursor = 0

    start_wall = time.perf_counter()
    with Timer("faulted_replay"):
        for event, injector_name in events:
            boundary = int(np.searchsorted(ts, event.ts, side="left"))
            if boundary > cursor:
                verdict_parts.append(
                    filt.process_batch(packets[cursor:boundary], exact=exact))
                cursor = boundary
            replacement = event.apply(filt, event.ts)
            if replacement is not None and replacement is not filt:
                filt = replacement
                swapped += 1
            fault_log.append((event.ts, event.label))
            if tel is not None:
                _injection_counter(registry, injector_name).inc()
        if cursor < len(packets):
            verdict_parts.append(filt.process_batch(packets[cursor:],
                                                    exact=exact))
    wall = time.perf_counter() - start_wall

    if verdict_parts:
        verdicts = np.concatenate(verdict_parts)
    else:
        verdicts = np.ones(0, dtype=bool)

    confusion, series = score_run(packets, verdicts, incoming_mask,
                                  trace.duration)
    run = FilterRunResult(
        verdicts=verdicts,
        incoming_mask=incoming_mask,
        confusion=confusion,
        series=series,
        filter_stats=filt.stats.as_dict(),
        wall_time=wall,
    )
    return FaultedRunResult(run=run, trace=trace, filter=filt,
                            fault_log=fault_log, filters_swapped=swapped)
