"""Socket-level chaos: inject transport failures between client and daemon.

The injectors in :mod:`repro.faults.injectors` perturb the filter and its
packet stream; these perturb the *wire*.  :class:`ChaosTcpProxy` sits
between a serve client and a daemon (or stands alone as a wedged fake
daemon) and misbehaves on demand:

- ``"pass"`` — transparent TCP forwarding (the control case).
- ``"reset"`` — accept, then immediately RST the client (SO_LINGER 0
  close): the connection-refused-after-accept failure a crashing daemon
  produces.
- ``"reset_after"`` — forward ``reset_after_bytes`` of client traffic,
  then RST both sides: the mid-stream disconnect that must surface as a
  typed :class:`~repro.serve.errors.ServeConnectionError` with frames in
  flight, never a hang.
- ``"stall"`` — accept and read, but never answer (and never contact the
  upstream): the wedged daemon that only per-request deadlines can
  detect.
- ``"slow"`` — forward responses in ``chunk_bytes`` trickles with
  ``delay`` seconds between chunks: slow/partial writes that exercise
  the client's incremental frame decoding and its patience.

Mode changes (:meth:`ChaosTcpProxy.set_mode`) apply to *new* connections,
so a test can let a healthy stream run, flip to ``reset_after``, and
watch the failover path — deterministic per connection.  Abrupt daemon
kill, the remaining chaos scenario, is process-level:
:meth:`repro.fleet.manager.FleetManager.kill`.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from typing import List, Optional, Tuple

__all__ = ["CHAOS_MODES", "ChaosTcpProxy"]

CHAOS_MODES = ("pass", "reset", "reset_after", "stall", "slow")

_RST_LINGER = struct.pack("ii", 1, 0)  # SO_LINGER on, 0s: close sends RST


class ChaosTcpProxy:
    """A misbehaving TCP hop between a client and an upstream daemon."""

    def __init__(self, upstream: Optional[Tuple[str, int]] = None, *,
                 mode: str = "pass",
                 listen_host: str = "127.0.0.1",
                 chunk_bytes: int = 64,
                 delay: float = 0.02,
                 reset_after_bytes: int = 4096):
        if mode not in CHAOS_MODES:
            raise ValueError(f"mode must be one of {CHAOS_MODES}")
        if mode not in ("reset", "stall") and upstream is None:
            raise ValueError(f"mode {mode!r} needs an upstream address")
        if chunk_bytes < 1:
            raise ValueError("chunk_bytes must be at least 1")
        if reset_after_bytes < 0:
            raise ValueError("reset_after_bytes must be non-negative")
        self.upstream = upstream
        self._mode = mode
        self.listen_host = listen_host
        self.chunk_bytes = chunk_bytes
        self.delay = delay
        self.reset_after_bytes = reset_after_bytes
        self.address: Optional[Tuple[str, int]] = None
        self.connections_accepted = 0
        self.resets_injected = 0
        self.bytes_forwarded = 0
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._open_sockets: List[socket.socket] = []
        self._lock = threading.Lock()
        self._stopping = threading.Event()

    @property
    def mode(self) -> str:
        return self._mode

    def set_mode(self, mode: str) -> None:
        """Switch behavior for connections accepted from now on."""
        if mode not in CHAOS_MODES:
            raise ValueError(f"mode must be one of {CHAOS_MODES}")
        if mode not in ("reset", "stall") and self.upstream is None:
            raise ValueError(f"mode {mode!r} needs an upstream address")
        self._mode = mode

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind an ephemeral listener; returns (host, port) to dial."""
        if self._listener is not None:
            raise RuntimeError("proxy already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.listen_host, 0))
        listener.listen(16)
        self._listener = listener
        self.address = listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-chaos-accept", daemon=True)
        self._accept_thread.start()
        return self.address

    def stop(self) -> None:
        """Close the listener and every connection the proxy still holds."""
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        with self._lock:
            sockets, self._open_sockets = self._open_sockets, []
        for sock in sockets:
            try:
                sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None

    def __enter__(self) -> "ChaosTcpProxy":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- the wire -------------------------------------------------------------

    def _track(self, sock: socket.socket) -> None:
        with self._lock:
            self._open_sockets.append(sock)

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                client, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            self.connections_accepted += 1
            mode = self._mode
            if mode == "reset":
                self._rst(client)
                continue
            self._track(client)
            if mode == "stall":
                threading.Thread(target=self._stall, args=(client,),
                                 daemon=True).start()
                continue
            threading.Thread(target=self._forward, args=(client, mode),
                             daemon=True).start()

    def _rst(self, sock: socket.socket) -> None:
        self.resets_injected += 1  # count first: the close races the peer
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER, _RST_LINGER)
            sock.close()
        except OSError:
            pass

    def _stall(self, client: socket.socket) -> None:
        """Read and discard forever: the daemon that accepts but never
        answers."""
        try:
            while not self._stopping.is_set():
                if not client.recv(1 << 16):
                    return
        except OSError:
            pass
        finally:
            try:
                client.close()
            except OSError:
                pass

    def _forward(self, client: socket.socket, mode: str) -> None:
        try:
            upstream = socket.create_connection(self.upstream, timeout=10.0)
        except OSError:
            self._rst(client)
            return
        self._track(upstream)
        reset_remaining = (self.reset_after_bytes if mode == "reset_after"
                           else None)
        state = {"remaining": reset_remaining}

        def rst_both() -> None:
            self._rst(client)
            try:
                upstream.close()
            except OSError:
                pass

        def pump_up() -> None:  # client -> upstream, counts toward the reset
            try:
                while True:
                    data = client.recv(1 << 16)
                    if not data:
                        break
                    if state["remaining"] is not None:
                        if state["remaining"] <= 0:
                            rst_both()
                            return
                        data = data[:max(state["remaining"], 0) or None]
                        state["remaining"] -= len(data)
                    upstream.sendall(data)
                    self.bytes_forwarded += len(data)
                    if (state["remaining"] is not None
                            and state["remaining"] <= 0):
                        rst_both()
                        return
            except OSError:
                pass
            finally:
                try:
                    upstream.shutdown(socket.SHUT_WR)
                except OSError:
                    pass

        def pump_down() -> None:  # upstream -> client, maybe trickled
            try:
                while True:
                    data = upstream.recv(1 << 16)
                    if not data:
                        break
                    if mode == "slow":
                        for offset in range(0, len(data), self.chunk_bytes):
                            client.sendall(
                                data[offset:offset + self.chunk_bytes])
                            time.sleep(self.delay)
                    else:
                        client.sendall(data)
                    self.bytes_forwarded += len(data)
            except OSError:
                pass
            finally:
                try:
                    client.shutdown(socket.SHUT_WR)
                except OSError:
                    pass

        up = threading.Thread(target=pump_up, daemon=True)
        down = threading.Thread(target=pump_down, daemon=True)
        up.start()
        down.start()
