"""Section 2's argument, measured: bandwidth throttling vs the bitmap filter.

Three scenarios against the same client network, each filter evaluated on
(a) how much attack traffic it removes and (b) how much legitimate traffic
it damages:

1. **Reflection flood** — a spoofed UDP flood *from* port 53 (DNS
   amplification style), rate-limited on the source-port aggregate.
   Throttling triggers, but every legitimate DNS reply shares that
   aggregate and gets rate-limited with the attack ("only rate-limiting an
   aggregate at the edge may completely shutdown all connections depending
   on the aggregate").
2. **Randomized scan** — the Fig. 5 attack with random destination ports.
   No single aggregate carries enough rate to trip the trigger ("the
   aggregate is difficult to identify").
3. **Slow attack** — the same scan at a rate below the trigger ("an
   attacker may not send a large volume of traffic ... the throttling
   mechanism would not be activated").

The bitmap filter handles all three identically, because it keys on traffic
*symmetry*, not volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.report import render_table
from repro.attacks.ddos import udp_flood
from repro.attacks.scanner import RandomScanAttack, ScanConfig
from repro.baselines.throttle import AggregateRateLimiter
from repro.core.filter_api import build_filter
from repro.experiments.config import SMALL, ExperimentScale
from repro.experiments.fig2 import generate_trace
from repro.net.protocols import PORT_DNS
from repro.sim.metrics import score_run
from repro.traffic.trace import Trace


@dataclass
class ScenarioOutcome:
    scenario: str
    defense: str
    attack_filter_rate: float
    legit_damage_rate: float   # FP on label-0 incoming packets


@dataclass
class ThrottleComparisonResult:
    outcomes: List[ScenarioOutcome]

    def get(self, scenario: str, defense: str) -> ScenarioOutcome:
        for outcome in self.outcomes:
            if outcome.scenario == scenario and outcome.defense == defense:
                return outcome
        raise KeyError((scenario, defense))

    def report(self) -> str:
        rows = [
            [o.scenario, o.defense, f"{o.attack_filter_rate * 100:.1f}%",
             f"{o.legit_damage_rate * 100:.2f}%"]
            for o in self.outcomes
        ]
        return render_table(
            ["scenario", "defense", "attack removed", "legit traffic damaged"],
            rows,
            title="Section 2 — aggregate throttling vs the bitmap filter:",
        )


def _evaluate(scale: ExperimentScale, trace: Trace, attack, scenario: str,
              outcomes: List[ScenarioOutcome], aggregate_key: str = "dport") -> None:
    mixed = trace.merged_with(Trace(attack, trace.protected,
                                    {"duration": trace.duration}))
    packets = mixed.packets
    incoming = packets.directions(trace.protected) == 1

    bitmap = build_filter(scale.bitmap_config(), trace.protected)
    bitmap_verdicts = bitmap.process_batch(packets, exact=True)
    confusion, _ = score_run(packets, bitmap_verdicts, incoming, mixed.duration)
    outcomes.append(ScenarioOutcome(
        scenario=scenario, defense="bitmap filter",
        attack_filter_rate=confusion.attack_filter_rate,
        legit_damage_rate=confusion.false_positive_rate,
    ))

    # Trigger: well above any single aggregate's legitimate rate.
    throttle = AggregateRateLimiter(
        trace.protected,
        trigger_pps=scale.normal_pps * 0.5,
        limit_pps=scale.normal_pps * 0.1,
        key=aggregate_key,
    )
    throttle_verdicts = throttle.process_batch(packets)
    confusion, _ = score_run(packets, throttle_verdicts, incoming, mixed.duration)
    outcomes.append(ScenarioOutcome(
        scenario=scenario, defense="aggregate throttling",
        attack_filter_rate=confusion.attack_filter_rate,
        legit_damage_rate=confusion.false_positive_rate,
    ))


def run_throttle_comparison(scale: ExperimentScale = SMALL) -> ThrottleComparisonResult:
    trace = generate_trace(scale)
    victim = trace.protected.networks[0].host(25)
    outcomes: List[ScenarioOutcome] = []

    # 1. Reflection flood: spoofed packets *from* port 53 — the aggregate
    # "UDP sport 53" is clean but contains all legitimate DNS replies too.
    flood = udp_flood(
        victim, rate_pps=scale.attack_pps, start=scale.attack_start,
        duration=scale.attack_duration, seed=scale.seed ^ 0x71,
    )
    flood.data["sport"][:] = PORT_DNS
    _evaluate(scale, trace, flood, "reflection flood", outcomes,
              aggregate_key="sport")

    # 2. Randomized scan: the Fig. 5 attack (random dports).
    scan = RandomScanAttack(
        ScanConfig(rate_pps=scale.attack_pps, start=scale.attack_start,
                   duration=scale.attack_duration, seed=scale.seed ^ 0x72),
        trace.protected,
    ).generate()
    _evaluate(scale, trace, scan, "randomized scan", outcomes)

    # 3. Slow attack: the same scan at 20% of the trigger rate.
    slow = RandomScanAttack(
        ScanConfig(rate_pps=scale.normal_pps * 0.1,
                   start=scale.attack_start,
                   duration=scale.attack_duration, seed=scale.seed ^ 0x73),
        trace.protected,
    ).generate()
    _evaluate(scale, trace, slow, "slow attack", outcomes)

    return ThrottleComparisonResult(outcomes=outcomes)


def run(scale=SMALL):
    """Uniform experiment entry point (see repro.experiments.registry)."""
    return run_throttle_comparison(scale)
