"""Export the regenerated figures' data series as CSV files.

``python -m repro export --out DIR`` writes one CSV per figure panel so the
plots can be reproduced with any plotting tool:

- ``fig2a_lifetime_hist.csv``   — bin_center, count (log-spaced bins)
- ``fig2b_delay_hist.csv``      — bin_center, count
- ``fig2c_delay_cdf.csv``       — delay_s, cumulative_fraction
- ``fig4_scatter.csv``          — spi_drop_rate, bitmap_drop_rate per window
- ``fig5a_series.csv``          — second, normal, attack, passed, dropped
- ``fig5b_filter_rate.csv``     — second, attack_filter_rate
- ``worm_curve.csv``            — second, infected_hosts
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Union

import numpy as np

from repro.experiments.config import SMALL, ExperimentScale
from repro.experiments.fig2 import generate_trace, run_fig2
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.worm import run_worm


def _write_csv(path: Path, header: List[str], rows) -> None:
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows(rows)


def export_figures(out_dir: Union[str, Path],
                   scale: ExperimentScale = SMALL) -> List[str]:
    """Regenerate every figure at ``scale`` and dump the plot data.

    Returns the list of files written (relative names).
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: List[str] = []

    trace = generate_trace(scale)

    fig2 = run_fig2(scale, trace)
    hist = fig2.lifetime_histogram
    _write_csv(out / "fig2a_lifetime_hist.csv", ["lifetime_s", "connections"],
               zip(hist.centers.tolist(), hist.counts.tolist()))
    written.append("fig2a_lifetime_hist.csv")

    hist = fig2.delay_histogram
    _write_csv(out / "fig2b_delay_hist.csv", ["delay_s", "packets"],
               zip(hist.centers.tolist(), hist.counts.tolist()))
    written.append("fig2b_delay_hist.csv")

    from repro.analysis.stats import Cdf

    x, y = Cdf.of(fig2.delays).series(points=400)
    _write_csv(out / "fig2c_delay_cdf.csv", ["delay_s", "cdf"],
               zip(x.tolist(), y.tolist()))
    written.append("fig2c_delay_cdf.csv")

    fig4 = run_fig4(scale, trace)
    _write_csv(out / "fig4_scatter.csv", ["spi_drop_rate", "bitmap_drop_rate"],
               fig4.window_pairs)
    written.append("fig4_scatter.csv")

    fig5 = run_fig5(scale, trace)
    series = fig5.run.series
    _write_csv(
        out / "fig5a_series.csv",
        ["second", "normal_incoming", "attack_incoming", "passed", "dropped"],
        zip(series.seconds.tolist(), series.normal_incoming.tolist(),
            series.attack_incoming.tolist(), series.passed_incoming.tolist(),
            series.dropped_incoming.tolist()),
    )
    written.append("fig5a_series.csv")

    rate = series.attack_filter_rate_series()
    mask = series.attack_incoming > 0
    _write_csv(out / "fig5b_filter_rate.csv", ["second", "filter_rate"],
               zip(series.seconds[mask].tolist(),
                   np.nan_to_num(rate[mask]).tolist()))
    written.append("fig5b_filter_rate.csv")

    worm = run_worm(scale)
    t, infected = worm.curve
    _write_csv(out / "worm_curve.csv", ["second", "infected_hosts"],
               zip(t.tolist(), infected.tolist()))
    written.append("worm_curve.csv")

    return written
