"""Timing ablation: the (k, dt, Te) trade-offs of Section 3.4.

Two sweeps over the same clean trace + attack:

1. **Granularity sweep** — fix Te = 20 s and vary (k, dt): {2 x 10s},
   {4 x 5s} (the paper's pick), {8 x 2.5s}, {16 x 1.25s}.  More vectors
   tighten the guaranteed window toward Te (fewer over-eager expiries of
   legitimate replies) at the price of k-proportional memory and more
   frequent rotations.
2. **Expiry sweep** — fix k = 4 and vary Te: 5/10/20/40 s.  Shorter Te
   drops more delayed-but-legitimate packets (Section 3.2: Te below ~3 s
   would exceed 1% false positives) while shrinking the window an insider
   or port-reuse collision can exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.report import render_table
from repro.core.bitmap_filter import BitmapFilterConfig
from repro.core.filter_api import build_filter
from repro.experiments.config import SMALL, ExperimentScale
from repro.experiments.fig2 import generate_trace
from repro.experiments.fig5 import build_attack_trace
from repro.sim.pipeline import run_filter_on_trace
from repro.traffic.trace import Trace


@dataclass
class TimingPoint:
    num_vectors: int
    rotation_interval: float
    expiry_timer: float
    guaranteed_window: float
    false_positive_rate: float
    attack_filter_rate: float
    memory_bytes: int
    rotations: int


@dataclass
class TimingResult:
    granularity: List[TimingPoint]   # Te fixed, k varies
    expiry: List[TimingPoint]        # k fixed, Te varies

    def report(self) -> str:
        def rows(points: List[TimingPoint]) -> List[list]:
            return [
                [p.num_vectors, f"{p.rotation_interval:g}", f"{p.expiry_timer:g}",
                 f"{p.guaranteed_window:g}",
                 f"{p.false_positive_rate * 100:.2f}%",
                 f"{p.attack_filter_rate * 100:.3f}%",
                 f"{p.memory_bytes // 1024} KiB", p.rotations]
                for p in points
            ]

        headers = ["k", "dt", "Te", "guaranteed", "FP rate", "attack filtered",
                   "memory", "rotations"]
        return "\n".join([
            render_table(headers, rows(self.granularity),
                         title="Granularity sweep (Te = 20 s fixed):"),
            "",
            render_table(headers, rows(self.expiry),
                         title="Expiry sweep (k = 4 fixed):"),
        ])


def _measure(
    scale: ExperimentScale, trace: Trace, num_vectors: int, rotation_interval: float
) -> TimingPoint:
    config = BitmapFilterConfig(
        order=scale.bitmap_order,
        num_vectors=num_vectors,
        num_hashes=scale.num_hashes,
        rotation_interval=rotation_interval,
        seed=scale.seed,
    )
    filt = build_filter(config, trace.protected)
    run = run_filter_on_trace(filt, trace, exact=True)
    return TimingPoint(
        num_vectors=num_vectors,
        rotation_interval=rotation_interval,
        expiry_timer=config.expiry_timer,
        guaranteed_window=config.guaranteed_window,
        false_positive_rate=run.confusion.false_positive_rate,
        attack_filter_rate=run.confusion.attack_filter_rate,
        memory_bytes=config.memory_bytes,
        rotations=filt.stats.rotations,
    )


def run_timing_ablation(
    scale: ExperimentScale = SMALL, trace: Optional[Trace] = None
) -> TimingResult:
    if trace is None:
        trace = generate_trace(scale)
    attacked = build_attack_trace(scale, trace)

    te = scale.expiry_timer  # 20 s
    granularity = [
        _measure(scale, attacked, k, te / k) for k in (2, 4, 8, 16)
    ]
    expiry = [
        _measure(scale, attacked, 4, target_te / 4)
        for target_te in (5.0, 10.0, 20.0, 40.0)
    ]
    return TimingResult(granularity=granularity, expiry=expiry)


def run(scale=SMALL):
    """Uniform experiment entry point (see repro.experiments.registry)."""
    return run_timing_ablation(scale)
