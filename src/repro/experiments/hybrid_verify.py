"""Hybrid verification experiment: the bitmap's false admits, driven to ~0.

The {k×n}-bitmap filter is probabilistic: a random attack packet penetrates
with probability ``U**m`` (Eq. 1), so under the Section 4.3 random-scan
attack a small but nonzero stream of false admits reaches the clients.  The
hybrid stack (:class:`~repro.core.hybrid.HybridVerifiedFilter`) confirms
every bitmap admit against the exact cuckoo flow table, which by
construction contains exactly the live outgoing flows — so on the verified
subset the false-admit rate collapses to ~0 while legitimate traffic is
untouched.

Four scenarios per run, bitmap vs hybrid on the same trace:

- **paper band** — the scale's own bitmap order (utilization in the
  paper's few-percent band) under the random-scan attack: penetrations
  are rare, the hybrid removes them entirely.
- **pressured (n-3)** — an eighth of the bitmap, the memory-constrained
  regime where U and therefore ``U**m`` is orders of magnitude worse: the
  hybrid buys back exactness for the price of the flow table, a
  Table-1-style state-vs-accuracy trade.
- **worm inbound** — the worm-outbreak analogue (time-varying inbound
  scan rate from :mod:`repro.attacks.worm`); scan flows are never
  outgoing, so the table confirms none of the bitmap's leaks.
- **insider-polluted** — a compromised inside host (Sec. 5.2) marks junk
  keys to inflate U while the external scan probes; the pollution is
  outgoing-only noise to the exact table, so verification still seals
  every scan penetration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.report import render_table
from repro.core.filter_api import build_filter
from repro.core.hybrid import VerifySpec
from repro.experiments.config import SMALL, ExperimentScale
from repro.experiments.fig2 import generate_trace
from repro.experiments.fig5 import build_attack_trace
from repro.sim.pipeline import run_filter_on_trace
from repro.traffic.trace import Trace


@dataclass
class HybridScenario:
    """Bitmap-alone vs hybrid stack on one bitmap geometry."""

    label: str
    order: int
    bitmap_false_admits: int
    hybrid_false_admits: int
    bitmap_penetration_rate: float
    hybrid_penetration_rate: float
    bitmap_fp_rate: float          # legitimate incoming wrongly dropped
    hybrid_fp_rate: float
    confirmed: int                 # hybrid lookups confirmed by the table
    denied: int                    # hybrid denials (caught false admits)
    bitmap_kib: float
    table_kib: float
    table_occupancy: int
    wall_ratio: float              # hybrid wall time / bitmap wall time


@dataclass
class HybridVerifyResult:
    scenarios: List[HybridScenario]

    def report(self) -> str:
        rows = [
            [s.label, s.order,
             s.bitmap_false_admits, s.hybrid_false_admits,
             f"{s.bitmap_penetration_rate:.2e}",
             f"{s.hybrid_penetration_rate:.2e}",
             f"{s.bitmap_fp_rate:.4f}", f"{s.hybrid_fp_rate:.4f}",
             f"{s.denied}/{s.confirmed + s.denied}",
             f"{s.bitmap_kib:.0f}", f"{s.table_kib:.0f}",
             f"{s.wall_ratio:.2f}x"]
            for s in self.scenarios
        ]
        header = (
            "Hybrid bitmap→cuckoo verification — false admits under the "
            "scan, worm, and insider attacks\n"
            "(state-vs-accuracy rows in the style of Table 1: the exact "
            "tier's KiB buys penetration ~0)"
        )
        return header + "\n" + render_table(
            ["scenario", "n", "FA bitmap", "FA hybrid", "pen bitmap",
             "pen hybrid", "FP bitmap", "FP hybrid", "denied/verified",
             "bitmap KiB", "table KiB", "wall"],
            rows,
        )


def _scenario(label: str, order: int, scale: ExperimentScale,
              mixed: Trace) -> HybridScenario:
    config = scale.bitmap_config(order=order)
    bitmap = build_filter(config, mixed.protected)
    bitmap_run = run_filter_on_trace(bitmap, mixed, exact=False)

    spec = VerifySpec(initial_order=10, resize_fpr=0.01)
    hybrid = build_filter(config, mixed.protected, layers=(spec,))
    hybrid_run = run_filter_on_trace(hybrid, mixed, exact=False)

    return HybridScenario(
        label=label,
        order=order,
        bitmap_false_admits=bitmap_run.confusion.attack_passed,
        hybrid_false_admits=hybrid_run.confusion.attack_passed,
        bitmap_penetration_rate=bitmap_run.confusion.penetration_rate,
        hybrid_penetration_rate=hybrid_run.confusion.penetration_rate,
        bitmap_fp_rate=bitmap_run.confusion.false_positive_rate,
        hybrid_fp_rate=hybrid_run.confusion.false_positive_rate,
        confirmed=hybrid.confirmed,
        denied=hybrid.denied,
        bitmap_kib=config.memory_bytes / 1024.0,
        table_kib=hybrid.table.memory_bytes / 1024.0,
        table_occupancy=hybrid.table.occupancy,
        wall_ratio=(hybrid_run.wall_time / bitmap_run.wall_time
                    if bitmap_run.wall_time else float("nan")),
    )


def run_hybrid_verify(
    scale: ExperimentScale = SMALL,
    trace: Optional[Trace] = None,
) -> HybridVerifyResult:
    from repro.attacks.insider import InsiderAttack
    from repro.attacks.worm import WormModel, WormParameters

    if trace is None:
        trace = generate_trace(scale)
    mixed = build_attack_trace(scale, trace)

    # Worm analogue: time-varying inbound scans (compressed outbreak, as
    # in the worm ablation) instead of the constant-rate random scan.
    worm = WormModel(WormParameters(
        vulnerable_hosts=50_000, scan_rate=4000.0, initially_infected=50))
    scans = worm.inbound_scans(
        trace.protected, duration=scale.duration, seed=scale.seed ^ 0x3042)
    worm_mixed = trace.merged_with(
        Trace(scans, trace.protected, {"duration": trace.duration}))

    # Insider-assisted (Sec. 5.2): outgoing pollution inflates U under
    # the same external scan.
    insider = InsiderAttack(
        attacker_addr=trace.protected.networks[0].host(10),
        rate_pps=scale.normal_pps * 0.5,
        start=0.0,
        duration=scale.duration,
        seed=scale.seed ^ 0x1221,
    )
    polluted = trace.merged_with(
        Trace(insider.generate(trace.protected), trace.protected,
              {"duration": trace.duration}))
    insider_mixed = build_attack_trace(scale, polluted)

    n = scale.bitmap_order
    return HybridVerifyResult(scenarios=[
        _scenario("paper band", n, scale, mixed),
        _scenario("pressured (n-3)", n - 3, scale, mixed),
        _scenario("worm inbound (n-3)", n - 3, scale, worm_mixed),
        _scenario("insider-polluted", n, scale, insider_mixed),
    ])


def run(scale=SMALL):
    """Uniform experiment entry point (see repro.experiments.registry)."""
    return run_hybrid_verify(scale)
