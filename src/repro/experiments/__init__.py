"""Experiment harnesses — one module per paper table/figure.

Each module exposes ``run_*(scale)`` returning a structured result object
plus a ``report()`` renderer.  The CLI (``python -m repro <experiment>``)
and the pytest benchmarks in ``benchmarks/`` both call into these, so the
regenerated numbers are identical regardless of entry point.

Scales (see DESIGN.md section 5): every experiment accepts an
:class:`~repro.experiments.config.ExperimentScale` that shrinks absolute
packet counts while preserving the ratios the paper's results depend on
(attack:normal rate ratio, Te, dt, k, and the utilization regime c*m/2^n).
"""

from repro.experiments.config import ExperimentScale

__all__ = ["ExperimentScale"]
