"""Section 5.3: adaptive packet dropping (APD) experiments.

Three sub-experiments:

1. **Bandwidth indicator** — unmatched packets are admitted while the
   downlink is idle and dropped with probability ~U_b as a UDP flood loads
   the link.
2. **Packet-ratio indicator** — same shape with the in/out packet ratio and
   (l, h) thresholds as the signal.
3. **Signal-policy ablation** — a SYN scan elicits SYN+ACK/RST replies from
   live victims; *without* the Section 5.3 marking policy those outgoing
   replies punch bitmap holes the scanner can immediately exploit; *with*
   the policy they do not mark and the follow-up packets are dropped.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.report import render_table
from repro.attacks.ddos import udp_flood
from repro.core.apd import (
    AdaptiveDroppingPolicy,
    BandwidthIndicator,
    PacketRatioIndicator,
)
from repro.core.bitmap_filter import Decision
from repro.core.filter_api import build_filter
from repro.experiments.config import SMALL, ExperimentScale
from repro.experiments.fig2 import generate_trace
from repro.net.packet import Packet, PacketArray, PacketLabel, TcpFlags
from repro.net.protocols import IPPROTO_TCP
from repro.traffic.trace import Trace


@dataclass
class ApdPhase:
    """Admission behaviour of bitmap-rejected packets during one phase."""

    label: str
    rejected: int
    admitted: int

    @property
    def admission_rate(self) -> float:
        total = self.rejected + self.admitted
        return self.admitted / total if total else 0.0


@dataclass
class Sec53Result:
    bandwidth_phases: List[ApdPhase]
    ratio_phases: List[ApdPhase]
    ablation: Dict[str, float]   # policy on/off -> follow-up penetration rate

    def report(self) -> str:
        lines = ["Section 5.3 — adaptive packet dropping"]
        for name, phases in (("bandwidth indicator", self.bandwidth_phases),
                             ("packet-ratio indicator", self.ratio_phases)):
            rows = [
                [p.label, p.rejected + p.admitted, f"{p.admission_rate * 100:.1f}%"]
                for p in phases
            ]
            lines.append(render_table(
                ["phase", "bitmap-rejected pkts", "admitted by APD"],
                rows, title=f"\n{name}:"))
        lines.append("\nsignal-policy ablation (SYN-scan follow-up penetration):")
        rows = [[k, f"{v * 100:.1f}%"] for k, v in self.ablation.items()]
        lines.append(render_table(["marking policy", "follow-up penetration"], rows))
        return "\n".join(lines)


def _run_apd_phases(
    scale: ExperimentScale,
    policy_factory,
    flood_start: float,
    flood_duration: float,
) -> List[ApdPhase]:
    """Clean trace + a mid-run UDP flood through an APD-enabled filter."""
    trace = generate_trace(scale)
    victim = trace.protected.networks[0].host(20)
    flood = udp_flood(
        target_addr=victim,
        rate_pps=scale.normal_pps * 12.0,
        start=flood_start,
        duration=flood_duration,
        seed=scale.seed ^ 0xF100D,
    )
    mixed = trace.merged_with(Trace(flood, trace.protected, {"duration": trace.duration}))

    apd = policy_factory()
    # APD needs global arrival order: build_filter falls back to a serial filter
    # even under backend="sharded" (see repro.parallel.backend).
    filt = build_filter(scale.bitmap_config(), trace.protected, apd=apd)

    phases = {
        "before flood": ApdPhase("before flood", 0, 0),
        "during flood": ApdPhase("during flood", 0, 0),
        "after flood": ApdPhase("after flood", 0, 0),
    }

    def phase_of(ts: float) -> ApdPhase:
        if ts < flood_start:
            return phases["before flood"]
        if ts < flood_start + flood_duration:
            return phases["during flood"]
        return phases["after flood"]

    for pkt in mixed.packets:
        before = apd.stats.admitted + apd.stats.dropped
        decision = filt.process(pkt)
        after_admitted = apd.stats.admitted + apd.stats.dropped
        if after_admitted != before:
            # This packet was bitmap-rejected and went through APD.
            phase = phase_of(pkt.ts)
            if decision is Decision.PASS:
                phase.admitted += 1
            else:
                phase.rejected += 1
    return [phases["before flood"], phases["during flood"], phases["after flood"]]


def _syn_scan_with_replies(
    trace: Trace,
    scale: ExperimentScale,
    live_fraction: float = 0.3,
    scan_count: int = 2000,
    seed: int = 77,
) -> Tuple[PacketArray, np.ndarray]:
    """A SYN scan, victim replies, and attacker follow-ups.

    Returns the packet batch (sorted) and a mask marking follow-up packets.
    """
    rng = random.Random(seed)
    rows: List[Packet] = []
    followup_flags: List[bool] = []
    networks = trace.protected.networks
    t = scale.duration * 0.2
    for _ in range(scan_count):
        t += rng.expovariate(scan_count / (scale.duration * 0.4))
        net = networks[rng.randrange(len(networks))]
        victim = net.host(rng.randint(1, net.num_addresses - 2))
        attacker = rng.randint(0x01000000, 0xDFFFFFFF)
        if trace.protected.contains_int(attacker):
            continue
        sport = rng.randint(1024, 65535)
        dport = rng.choice((80, 443, 445, 22))
        probe = Packet(t, IPPROTO_TCP, attacker, sport, victim, dport,
                       TcpFlags.SYN, 48, PacketLabel.ATTACK)
        rows.append(probe)
        followup_flags.append(False)
        if rng.random() < live_fraction:
            # The victim answers: SYN+ACK for open ports, RST otherwise.
            reply_flags = TcpFlags.SYN | TcpFlags.ACK if rng.random() < 0.3 else (
                TcpFlags.RST | TcpFlags.ACK)
            rows.append(Packet(t + 0.005, IPPROTO_TCP, victim, dport,
                               attacker, sport, reply_flags, 40, PacketLabel.NORMAL))
            followup_flags.append(False)
            # The attacker pounces on the (possibly) punched hole.
            rows.append(Packet(t + 0.050, IPPROTO_TCP, attacker, sport,
                               victim, dport, TcpFlags.ACK, 512, PacketLabel.ATTACK))
            followup_flags.append(True)
    order = np.argsort([p.ts for p in rows], kind="stable")
    packets = PacketArray.from_packets([rows[i] for i in order])
    mask = np.array([followup_flags[i] for i in order], dtype=bool)
    return packets, mask


def _ablation_penetration(
    scale: ExperimentScale, signal_policy: bool
) -> float:
    trace = generate_trace(scale)
    scan, followup_mask = _syn_scan_with_replies(trace, scale)
    apd = AdaptiveDroppingPolicy(
        # A saturated ratio indicator: every bitmap-rejected packet drops,
        # isolating the marking policy as the only variable.
        PacketRatioIndicator(low=0.0001, high=0.0002),
        seed=scale.seed,
        signal_policy=signal_policy,
    )
    # APD needs global arrival order: build_filter falls back to a serial filter
    # even under backend="sharded" (see repro.parallel.backend).
    filt = build_filter(scale.bitmap_config(), trace.protected, apd=apd)
    passed = np.zeros(len(scan), dtype=bool)
    for i, pkt in enumerate(scan):
        passed[i] = filt.process(pkt) is Decision.PASS
    followups = int(followup_mask.sum())
    if not followups:
        return 0.0
    return float(passed[followup_mask].sum()) / followups


def run_sec53(scale: ExperimentScale = SMALL) -> Sec53Result:
    flood_start = scale.duration * 0.4
    flood_duration = scale.duration * 0.3

    bandwidth_phases = _run_apd_phases(
        scale,
        lambda: AdaptiveDroppingPolicy(
            BandwidthIndicator(link_capacity_bps=scale.normal_pps * 12.0 * 1400 * 8),
            seed=scale.seed,
        ),
        flood_start,
        flood_duration,
    )
    ratio_phases = _run_apd_phases(
        scale,
        lambda: AdaptiveDroppingPolicy(
            PacketRatioIndicator(low=2.0, high=6.0), seed=scale.seed
        ),
        flood_start,
        flood_duration,
    )
    ablation = {
        "with signal policy": _ablation_penetration(scale, signal_policy=True),
        "without signal policy": _ablation_penetration(scale, signal_policy=False),
    }
    return Sec53Result(
        bandwidth_phases=bandwidth_phases,
        ratio_phases=ratio_phases,
        ablation=ablation,
    )


def run(scale=SMALL):
    """Uniform experiment entry point (see repro.experiments.registry)."""
    return run_sec53(scale)
