"""Aggregated vs per-edge filter placement — the Figure 1 deployment choice.

"The bitmap filter can be installed on an edge router directly connected to
a client network or a core router, which is an aggregate of two or more
client networks."  This experiment builds both deployments over the same
two-network topology and traffic and compares defense quality, false
positives, utilization, and memory:

- **per-edge**: one {4 x n}-bitmap per client network, at its edge router;
- **aggregated**: a single {4 x n}-bitmap at the shared core router;
- **aggregated+1**: a single {4 x (n+1)}-bitmap — the Eq. (5) answer to the
  doubled connection load (same total memory as the two edge filters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.report import render_table
from repro.attacks.scanner import RandomScanAttack, ScanConfig
from repro.experiments.config import SMALL, ExperimentScale
from repro.net.address import AddressSpace
from repro.sim.deployment import FilterDeployment, union_address_space
from repro.sim.metrics import score_run
from repro.sim.topology import IspTopology
from repro.traffic.generator import ClientNetworkWorkload, WorkloadConfig
from repro.traffic.trace import Trace


@dataclass
class DeploymentOutcome:
    label: str
    attack_filter_rate: float
    false_positive_rate: float
    utilizations: List[float]
    memory_bytes: int


@dataclass
class AggregationResult:
    outcomes: List[DeploymentOutcome]

    def by_label(self, label: str) -> DeploymentOutcome:
        for outcome in self.outcomes:
            if outcome.label == label:
                return outcome
        raise KeyError(label)

    def report(self) -> str:
        rows = [
            [o.label, f"{o.attack_filter_rate * 100:.3f}%",
             f"{o.false_positive_rate * 100:.2f}%",
             "/".join(f"{u:.3f}" for u in o.utilizations),
             f"{o.memory_bytes // 1024} KiB"]
            for o in self.outcomes
        ]
        return render_table(
            ["deployment", "attack filtered", "FP rate", "filter U", "memory"],
            rows,
            title="Figure 1 deployment comparison — per-edge vs aggregated core:",
        )


def _build_topology(space_a: AddressSpace, space_b: AddressSpace) -> IspTopology:
    topo = IspTopology()
    topo.add_core_router("core")
    topo.add_edge_router("edgeA")
    topo.add_edge_router("edgeB")
    topo.add_peer("internet")
    topo.connect("internet", "core")
    topo.connect("core", "edgeA")
    topo.connect("core", "edgeB")
    topo.add_client_network("netA", "edgeA", space_a)
    topo.add_client_network("netB", "edgeB", space_b)
    return topo


def run_aggregation(scale: ExperimentScale = SMALL) -> AggregationResult:
    # Two independent client networks with their own workloads.
    half_pps = scale.normal_pps / 2.0
    workload_a = ClientNetworkWorkload(WorkloadConfig(
        first_network="172.16.0.0", num_networks=3, duration=scale.duration,
        target_pps=half_pps, seed=scale.seed,
    ))
    workload_b = ClientNetworkWorkload(WorkloadConfig(
        first_network="172.20.0.0", num_networks=3, duration=scale.duration,
        target_pps=half_pps, seed=scale.seed + 1,
    ))
    trace_a = workload_a.generate()
    trace_b = workload_b.generate()
    combined_space = union_address_space([trace_a.protected, trace_b.protected])

    attack = RandomScanAttack(
        ScanConfig(rate_pps=scale.attack_pps, start=scale.attack_start,
                   duration=scale.attack_duration, seed=scale.seed ^ 0xA99),
        combined_space,
    ).generate()
    combined = Trace(trace_a.packets, combined_space,
                     {"duration": scale.duration}).merged_with(
        Trace(trace_b.packets, combined_space, {"duration": scale.duration}),
        Trace(attack, combined_space, {"duration": scale.duration}),
    )
    packets = combined.packets
    incoming = packets.directions(combined_space) == 1

    topo = _build_topology(trace_a.protected, trace_b.protected)
    outcomes: List[DeploymentOutcome] = []

    def evaluate(label: str, deployment: FilterDeployment) -> None:
        verdicts = deployment.process_batch(packets, exact=True)
        confusion, _series = score_run(packets, verdicts, incoming,
                                       combined.duration)
        outcomes.append(DeploymentOutcome(
            label=label,
            attack_filter_rate=confusion.attack_filter_rate,
            false_positive_rate=confusion.false_positive_rate,
            utilizations=[p.filter.peak_utilization for p in deployment.placements],
            memory_bytes=deployment.total_memory_bytes(),
        ))

    per_edge = FilterDeployment(topo)
    per_edge.install("edgeA", ["netA"], scale.bitmap_config())
    per_edge.install("edgeB", ["netB"], scale.bitmap_config())
    evaluate("per-edge (2 filters, n)", per_edge)

    aggregated = FilterDeployment(topo)
    aggregated.install("core", ["netA", "netB"], scale.bitmap_config())
    evaluate("aggregated core (1 filter, n)", aggregated)

    bigger = FilterDeployment(topo)
    bigger.install("core", ["netA", "netB"],
                   scale.bitmap_config(order=scale.bitmap_order + 1))
    evaluate("aggregated core (1 filter, n+1)", bigger)

    return AggregationResult(outcomes=outcomes)


def run(scale=SMALL):
    """Uniform experiment entry point (see repro.experiments.registry)."""
    return run_aggregation(scale)
