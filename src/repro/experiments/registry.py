"""The experiment registry: one uniform way to name and run everything.

Every experiment module under :mod:`repro.experiments` exposes a uniform
``run(scale) -> <module result>`` entry point; this module maps the CLI
names (``fig4``, ``capacity``, ``sweep``, ...) onto those entry points via
:class:`ExperimentSpec` rows, so drivers (the CLI, ``repro stats``, the
``all`` sweep, notebooks) iterate a table instead of hard-coding an
``if``/``elif`` chain per experiment.

:func:`run_experiment` executes one row and wraps the outcome in an
:class:`ExperimentResult` carrying the experiment name, the scale it ran
at, the module's own result object, and — when profiling is on — the
per-stage wall-time breakdown collected by
:func:`repro.telemetry.profiling.profile_run`.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional

from repro.experiments.config import SMALL, ExperimentScale, get_scale
from repro.telemetry.profiling import StageTimings, Timer, profile_run


@dataclass
class ExperimentResult:
    """Uniform wrapper around one experiment run."""

    name: str
    scale: Optional[ExperimentScale]
    value: object                      # the module's own result object
    timings: Optional[StageTimings] = None
    extra: str = ""                    # spec-supplied postscript (fig2b comb)

    def report(self) -> str:
        """The experiment's report, plus the stage breakdown if profiled."""
        text = self.value.report() if hasattr(self.value, "report") else str(self.value)
        if self.extra:
            text += self.extra
        if self.timings is not None and len(self.timings):
            text += "\n\n" + self.timings.report(
                title=f"{self.name} stage breakdown")
        return text


@dataclass(frozen=True)
class ExperimentSpec:
    """One row of the registry: how to run one named experiment."""

    name: str
    module: str                        # dotted module under repro.experiments
    help: str
    default_scale: str = "medium"      # CLI default for --scale
    small_only: bool = True            # clamp non-small requests to SMALL
    render: Optional[Callable[[object], str]] = field(default=None)

    def runner(self) -> Callable[..., object]:
        """The module's uniform ``run(scale)`` entry point (lazy import)."""
        return importlib.import_module(self.module).run

    def effective_scale(self, requested: str) -> ExperimentScale:
        """Apply the small-only clamp the CLI has always applied."""
        if self.small_only and requested != "small":
            return SMALL
        return get_scale(requested)


def _render_fig2b(value: object) -> str:
    from repro.experiments.fig2 import delay_comb_offsets

    offsets = delay_comb_offsets(value)
    comb = ", ".join(f"{x:.0f}s" for x in offsets) or "(none found)"
    return f"\n\nFig 2b delay-comb peaks: {comb}"


def _spec(name: str, module: str, help: str, **kwargs) -> ExperimentSpec:
    return ExperimentSpec(name=name, module=f"repro.experiments.{module}",
                          help=help, **kwargs)


#: Registration order is the order ``repro all`` runs them in.
EXPERIMENTS: Dict[str, ExperimentSpec] = {
    spec.name: spec for spec in (
        _spec("fig2a", "fig2", "normal-traffic drop rates (Fig. 2a)",
              small_only=False),
        _spec("fig2b", "fig2", "drop-delay comb (Fig. 2b)",
              small_only=False, render=_render_fig2b),
        _spec("fig2c", "fig2", "per-protocol drop rates (Fig. 2c)",
              small_only=False),
        _spec("table1", "table1", "state-cost comparison (Table 1)",
              small_only=False),
        _spec("capacity", "sec41", "bitmap capacity analysis (Sec. 4.1)",
              small_only=False),
        _spec("fig4", "fig4", "attack drop rates over time (Fig. 4)",
              small_only=False),
        _spec("fig5", "fig5", "penetration vs. utilization (Fig. 5)",
              small_only=False),
        _spec("insider", "sec52", "insider-assisted attacks (Sec. 5.2)",
              small_only=False),
        _spec("apd", "sec53", "adaptive packet dropping (Sec. 5.3)",
              default_scale="small"),
        _spec("sweep", "sweep", "parameter sweep over (k, n, m, dt)",
              small_only=False),
        _spec("worm", "worm", "worm outbreak containment",
              default_scale="small"),
        _spec("aggregate", "aggregation", "aggregate deployment effects",
              default_scale="small"),
        _spec("timing", "timing", "rotation-timing ablation",
              default_scale="small"),
        _spec("compat", "compat", "protocol compatibility matrix",
              default_scale="small"),
        _spec("robustness", "robustness", "adversarial robustness grid",
              default_scale="small"),
        _spec("resilience", "resilience", "failure-mode resilience",
              default_scale="small"),
        _spec("throttle", "throttle_cmp", "aggregate-throttling comparison",
              default_scale="small"),
        _spec("collusion", "sec54", "collusion attacks (Sec. 5.4)",
              default_scale="small"),
        _spec("hybrid", "hybrid_verify",
              "hybrid exact-verification tier vs bitmap false admits",
              default_scale="small"),
        _spec("multisite", "multisite",
              "multi-site scenario matrix (topologies x traffic mixes)",
              default_scale="small"),
    )
}


def run_experiment(
    name: str,
    scale: str = "medium",
    *,
    seed: Optional[int] = None,
    profile: bool = False,
) -> ExperimentResult:
    """Run one registered experiment and wrap its result uniformly.

    ``scale`` is the *requested* scale name; the spec's small-only clamp is
    applied exactly as the CLI always did.  ``seed`` overrides the workload
    seed of the scale actually used (ignored when the clamp discarded the
    request, matching the old CLI behavior).  ``profile=True`` collects the
    per-stage wall-time breakdown into ``result.timings``.
    """
    spec = EXPERIMENTS.get(name)
    if spec is None:
        raise KeyError(f"unknown experiment {name!r}; "
                       f"known: {', '.join(EXPERIMENTS)}")
    effective = spec.effective_scale(scale)
    clamped = spec.small_only and scale != "small"
    if seed is not None and not clamped:
        effective = replace(effective, seed=seed)
    runner = spec.runner()

    def execute() -> object:
        with Timer(f"run:{name}"):
            return runner(effective)

    if profile:
        with profile_run() as timings:
            value = execute()
    else:
        timings = None
        value = execute()

    return ExperimentResult(
        name=name, scale=effective, value=value, timings=timings,
        extra=spec.render(value) if spec.render is not None else "",
    )
