"""Section 4.1: the analytical capacity example, validated by simulation.

The paper's worked example: a {4 x 20}-bitmap with dt = 5 s (Te = 20 s) and
desired penetration of roughly 10% / 5% / 1% supports at most ~167K / 125K /
83K active connections per time unit, needs only m = 3 hash functions for
the observed 15K-connection load, and occupies 512 KB.

``run_sec41`` reproduces those numbers from Equations (1)-(5), then
*empirically* validates Eq. (1) by loading a bitmap with random connections
and measuring how many random incoming tuples penetrate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.report import render_table
from repro.core.bitmap import Bitmap
from repro.core.hashing import HashFamily
from repro.core.parameters import (
    ParameterAdvisor,
    memory_bytes,
    penetration_probability_for_load,
)

#: Paper setup of the worked example.
ORDER = 20
NUM_VECTORS = 4
ROTATION_INTERVAL = 5.0
TARGETS = (0.10, 0.05, 0.01)
PAPER_CAPACITIES = {0.10: 167_000, 0.05: 125_000, 0.01: 83_000}
TRACE_ACTIVE_CONNECTIONS = 15_000
PAPER_NUM_HASHES = 3
PAPER_MEMORY_BYTES = 512 * 1024


@dataclass
class Sec41Result:
    capacity_rows: List[Dict[str, float]]
    memory_bytes: int
    recommended_m: int
    predicted_penetration_at_15k: float
    measured_penetration: float
    measured_order: int
    measured_connections: int

    def report(self) -> str:
        rows = [
            [f"{row['target_penetration'] * 100:.0f}%",
             f"{row['max_connections'] / 1000:.0f}K",
             f"{PAPER_CAPACITIES[row['target_penetration']] / 1000:.0f}K"]
            for row in self.capacity_rows
        ]
        lines = [
            "Section 4.1 — capacity of the {4 x 20}-bitmap (Te = 20 s)",
            render_table(["target p", "max c (ours)", "max c (paper)"], rows),
            f"memory: {self.memory_bytes // 1024} KB   (paper: 512 KB)",
            f"hash functions for 15K connections: m = {self.recommended_m}   (paper: 3)",
            f"Eq.(2) penetration @15K, m=3: {self.predicted_penetration_at_15k:.3e}",
            "",
            f"Empirical Eq.(1) check at n={self.measured_order}, "
            f"c={self.measured_connections}: measured penetration "
            f"{self.measured_penetration:.4f}",
        ]
        return "\n".join(lines)


def _measure_penetration(
    order: int, connections: int, num_hashes: int, trials: int, seed: int
) -> float:
    """Load a bitmap with random connection keys; probe with random tuples."""
    rng = random.Random(seed)
    bitmap = Bitmap(NUM_VECTORS, order)
    hashes = HashFamily(num_hashes, order)
    for _ in range(connections):
        key = (6, rng.getrandbits(32), rng.getrandbits(16), rng.getrandbits(32))
        bitmap.mark(hashes.indices(key))
    hits = 0
    for _ in range(trials):
        key = (6, rng.getrandbits(32), rng.getrandbits(16), rng.getrandbits(32))
        if bitmap.test_current(hashes.indices(key)):
            hits += 1
    return hits / trials


def run_sec41(
    measure_order: int = 16,
    measure_trials: int = 250_000,
    seed: int = 13,
) -> Sec41Result:
    advisor = ParameterAdvisor(
        expiry_timer=NUM_VECTORS * ROTATION_INTERVAL,
        rotation_interval=ROTATION_INTERVAL,
    )
    capacity_rows = advisor.capacity_table(ORDER, list(TARGETS))

    # The empirical check runs at a smaller n with c scaled to the same
    # utilization (c/2**n fixed), where 50K probes give tight statistics.
    scale = (1 << measure_order) / (1 << ORDER)
    scaled_connections = int(TRACE_ACTIVE_CONNECTIONS * scale)
    measured = _measure_penetration(
        measure_order, scaled_connections, PAPER_NUM_HASHES, measure_trials, seed
    )

    return Sec41Result(
        capacity_rows=capacity_rows,
        memory_bytes=memory_bytes(NUM_VECTORS, ORDER),
        recommended_m=PAPER_NUM_HASHES,
        predicted_penetration_at_15k=penetration_probability_for_load(
            TRACE_ACTIVE_CONNECTIONS, PAPER_NUM_HASHES, ORDER
        ),
        measured_penetration=measured,
        measured_order=measure_order,
        measured_connections=scaled_connections,
    )


def run(scale=None):
    """Uniform experiment entry point (see repro.experiments.registry).

    The capacity analysis is analytic; the trace scale does not apply.
    """
    return run_sec41()
