"""Chaos experiment: the Fig. 4/Fig. 5 headline metrics under injected faults.

Reruns the attacked headline trace (clean traffic + the Section 4.3
random-scan attack) through the bitmap filter while each fault fires —
rotation-timer stall, crash + checkpoint restore, cold restart, random bit
flips, packet reordering/duplication/gaps, and a filter outage under each
fail policy — and reports the attack-filter-rate and benign-drop-rate
deltas against the fault-free baseline.  The robustness claim being tested:
the filter degrades *gracefully* — a bounded fault moves the headline
metrics by a bounded amount, and the operator-visible policy choices
(fail-open vs fail-closed, warm-up grace) behave exactly as documented in
``docs/operations.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.report import render_table
from repro.core.filter_api import build_filter
from repro.core.resilience import FailPolicy
from repro.experiments.config import SMALL, ExperimentScale
from repro.experiments.fig2 import generate_trace
from repro.experiments.fig5 import build_attack_trace
from repro.faults.harness import FaultedRunResult, run_with_faults
from repro.faults.injectors import (
    BitFlips,
    CrashRestart,
    FaultInjector,
    Outage,
    PacketDuplication,
    PacketReorder,
    RotationStall,
    TraceGap,
)

#: Per-bit flip probability for the bit-corruption scenario (0.01%).
BIT_FLIP_FRACTION = 1e-4


@dataclass
class ScenarioOutcome:
    """Headline metrics for one fault scenario."""

    name: str
    attack_filter_rate: float
    benign_drop_rate: float           # false-positive rate on normal inbound
    delta_filter_rate: float          # vs fault-free baseline
    delta_benign_rate: float
    outage_pass_fraction: Optional[float] = None  # inbound pass rate in-window
    note: str = ""

    def row(self) -> List[object]:
        outage = ("-" if self.outage_pass_fraction is None
                  else f"{self.outage_pass_fraction * 100:.0f}%")
        return [
            self.name,
            f"{self.attack_filter_rate * 100:.3f}%",
            f"{self.benign_drop_rate * 100:.2f}%",
            f"{self.delta_filter_rate * 100:+.3f}pp",
            f"{self.delta_benign_rate * 100:+.2f}pp",
            outage,
            self.note,
        ]


@dataclass
class ResilienceResult:
    baseline: ScenarioOutcome
    scenarios: List[ScenarioOutcome]

    def outcome(self, name: str) -> ScenarioOutcome:
        for scenario in self.scenarios:
            if scenario.name == name:
                return scenario
        raise KeyError(f"no scenario named {name!r}; have "
                       f"{[s.name for s in self.scenarios]}")

    def report(self) -> str:
        rows = [self.baseline.row()] + [s.row() for s in self.scenarios]
        return render_table(
            ["scenario", "attack filtered", "benign dropped",
             "Δ filter", "Δ benign", "outage pass", "note"],
            rows,
            title=("Resilience under injected faults "
                   "(baseline = fault-free attacked headline run):"),
        )


def _outcome(
    name: str,
    result: FaultedRunResult,
    baseline_filter: float,
    baseline_benign: float,
    outage_window: Optional[Sequence[float]] = None,
    note: str = "",
) -> ScenarioOutcome:
    confusion = result.confusion
    outage_pass = None
    if outage_window is not None:
        outage_pass = result.incoming_pass_fraction(*outage_window)
    return ScenarioOutcome(
        name=name,
        attack_filter_rate=confusion.attack_filter_rate,
        benign_drop_rate=confusion.false_positive_rate,
        delta_filter_rate=confusion.attack_filter_rate - baseline_filter,
        delta_benign_rate=confusion.false_positive_rate - baseline_benign,
        outage_pass_fraction=outage_pass,
        note=note,
    )


def run_resilience(scale: ExperimentScale = SMALL,
                   exact: bool = True) -> ResilienceResult:
    """Run every fault scenario against the attacked headline trace."""
    clean = generate_trace(scale)
    attacked = build_attack_trace(scale, clean)
    config = scale.bitmap_config()
    dt = scale.rotation_interval
    te = scale.expiry_timer

    def fresh(policy: FailPolicy = FailPolicy.FAIL_CLOSED):
        return build_filter(config, attacked.protected, fail_policy=policy)

    def run(injectors: Sequence[FaultInjector],
            policy: FailPolicy = FailPolicy.FAIL_CLOSED) -> FaultedRunResult:
        return run_with_faults(fresh(policy), attacked, injectors, exact=exact)

    # Fault-free baseline.
    base = run([])
    base_filter = base.confusion.attack_filter_rate
    base_benign = base.confusion.false_positive_rate
    baseline = ScenarioOutcome(
        name="baseline (no fault)",
        attack_filter_rate=base_filter,
        benign_drop_rate=base_benign,
        delta_filter_rate=0.0,
        delta_benign_rate=0.0,
        note="fault-free reference",
    )

    # Fault placement: the crash/gap land well before the attack so the
    # restart's warm-up grace closes before attack packets could ride it in;
    # the stall/flip/outage land mid-attack where they hurt the most.
    mid_attack = scale.attack_start + scale.attack_duration / 2.0
    crash_at = max(scale.attack_start - te - dt, 2 * dt)
    snapshot_age = dt

    scenarios: List[ScenarioOutcome] = []

    stall = RotationStall(at=mid_attack, duration=2 * dt, catch_up=True)
    scenarios.append(_outcome(
        "rotation stall 2Δt (catch-up)", run([stall]),
        base_filter, base_benign,
        note="missed rotations fire on resume",
    ))

    stall_naive = RotationStall(at=mid_attack, duration=2 * dt, catch_up=False)
    scenarios.append(_outcome(
        "rotation stall 2Δt (no catch-up)", run([stall_naive]),
        base_filter, base_benign,
        note="naive late timer stretches Te",
    ))

    # Snapshot restore only needs grace for the blind window (marks made
    # after the checkpoint and during the downtime are gone); a cold restart
    # needs the full Te because *every* mark is gone.
    crash = CrashRestart(crash_at=crash_at, downtime=2.0,
                         snapshot_age=snapshot_age,
                         warmup_grace=snapshot_age + 2.0)
    scenarios.append(_outcome(
        "crash+restore (snapshot)", run([crash], FailPolicy.FAIL_OPEN),
        base_filter, base_benign,
        outage_window=(crash_at, crash_at + 2.0),
        note=f"{snapshot_age:g}s-old checkpoint, fail-open outage",
    ))

    cold = CrashRestart(crash_at=crash_at, downtime=2.0, snapshot_age=None)
    scenarios.append(_outcome(
        "crash+cold restart", run([cold], FailPolicy.FAIL_OPEN),
        base_filter, base_benign,
        outage_window=(crash_at, crash_at + 2.0),
        note=f"no snapshot; Te={te:g}s warm-up grace",
    ))

    flips = BitFlips(at=mid_attack, fraction=BIT_FLIP_FRACTION)
    scenarios.append(_outcome(
        f"bit flips {BIT_FLIP_FRACTION:.2%}", run([flips]),
        base_filter, base_benign,
        note="random vector corruption mid-attack",
    ))

    scenarios.append(_outcome(
        "packet reordering", run([PacketReorder(fraction=0.02, max_delay=2.0)]),
        base_filter, base_benign,
        note="2% of packets up to 2s late",
    ))

    scenarios.append(_outcome(
        "packet duplication", run([PacketDuplication(fraction=0.01, delay=0.5)]),
        base_filter, base_benign,
        note="1% of packets delivered twice",
    ))

    scenarios.append(_outcome(
        "trace gap", run([TraceGap(start=crash_at, duration=2.0)]),
        base_filter, base_benign,
        note="2s of upstream loss",
    ))

    outage_start = mid_attack
    outage = 2 * dt
    for policy, name in ((FailPolicy.FAIL_CLOSED, "fail-closed outage"),
                         (FailPolicy.FAIL_OPEN, "fail-open outage")):
        result = run([Outage(at=outage_start, duration=outage,
                             warmup_grace=0.0)], policy)
        scenarios.append(_outcome(
            name, result, base_filter, base_benign,
            outage_window=(outage_start, outage_start + outage),
            note=f"{outage:g}s mid-attack outage, {policy.value}",
        ))

    return ResilienceResult(baseline=baseline, scenarios=scenarios)


def run(scale=SMALL):
    """Uniform experiment entry point (see repro.experiments.registry)."""
    return run_resilience(scale)
