"""Figure 2: traffic characteristics of the client network.

(a) connection lifetime histogram — 90% < 76 s, 95% under ~6 min,
    <1% above 515 s;
(b) out-in packet delay histogram — peaks interleaved at ~30/60 s
    (port-reuse / server keep-alive comb), measured with Te = 600 s;
(c) out-in packet delay CDF — 95% < 0.8 s, 99% < 2.8 s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.delay import out_in_delays
from repro.analysis.lifetime import connection_lifetimes
from repro.analysis.report import render_comparison
from repro.analysis.stats import Cdf, Histogram
from repro.experiments.config import MEDIUM, ExperimentScale
from repro.traffic.generator import ClientNetworkWorkload, WorkloadConfig
from repro.traffic.trace import Trace

#: The Te used by the paper for the delay measurement (Section 3.2).
DELAY_MEASUREMENT_TE = 600.0


@dataclass
class Fig2Result:
    trace_summary: str
    lifetimes: List[float]
    delays: List[float]
    lifetime_percentiles: Dict[float, float]
    delay_percentiles: Dict[float, float]
    lifetime_frac_over_515: float
    delay_frac_under_0_8: float
    delay_frac_under_2_8: float
    delay_histogram: Histogram
    lifetime_histogram: Histogram

    def report(self) -> str:
        paper = {
            "lifetime P90 (s)": "< 76",
            "lifetime P95 (s)": "< 360",
            "lifetime frac > 515 s": "< 1%",
            "delay frac < 0.8 s": ">= 95%",
            "delay frac < 2.8 s": ">= 99%",
        }
        measured = {
            "lifetime P90 (s)": f"{self.lifetime_percentiles[90]:.1f}",
            "lifetime P95 (s)": f"{self.lifetime_percentiles[95]:.1f}",
            "lifetime frac > 515 s": f"{self.lifetime_frac_over_515 * 100:.2f}%",
            "delay frac < 0.8 s": f"{self.delay_frac_under_0_8 * 100:.2f}%",
            "delay frac < 2.8 s": f"{self.delay_frac_under_2_8 * 100:.2f}%",
        }
        header = f"Figure 2 — traffic characteristics\ntrace: {self.trace_summary}\n"
        return header + render_comparison("paper vs measured", paper, measured)


def generate_trace(scale: ExperimentScale = MEDIUM) -> Trace:
    """The clean client-network trace used by Fig. 2 (and Fig. 4)."""
    config = WorkloadConfig(
        duration=scale.duration,
        target_pps=scale.normal_pps,
        seed=scale.seed,
    )
    return ClientNetworkWorkload(config).generate()


def run_fig2(scale: ExperimentScale = MEDIUM, trace: Trace = None) -> Fig2Result:
    if trace is None:
        trace = generate_trace(scale)
    packets = trace.packets

    lifetimes = connection_lifetimes(packets)
    delays = out_in_delays(packets, trace.protected, expiry_timer=DELAY_MEASUREMENT_TE)

    lifetime_cdf = Cdf.of(lifetimes)
    delay_cdf = Cdf.of(delays)

    return Fig2Result(
        trace_summary=trace.summary().describe(),
        lifetimes=lifetimes,
        delays=delays,
        lifetime_percentiles={q: lifetime_cdf.percentile(q) for q in (50, 90, 95, 99)},
        delay_percentiles={q: delay_cdf.percentile(q) for q in (50, 90, 95, 99)},
        lifetime_frac_over_515=1.0 - lifetime_cdf.fraction_below(515.0),
        delay_frac_under_0_8=delay_cdf.fraction_below(0.8),
        delay_frac_under_2_8=delay_cdf.fraction_below(2.8),
        delay_histogram=Histogram.of(delays, bins=120, value_range=(0.0, 150.0)),
        lifetime_histogram=Histogram.of(
            [lt for lt in lifetimes if lt > 0], bins=80, log=True
        ),
    )


def delay_comb_offsets(result: Fig2Result, lo: float = 10.0, hi: float = 140.0) -> List[float]:
    """Locations (seconds) of the Fig. 2b delay-histogram peaks above ``lo``.

    The paper observes peaks "interleaved with intervals of roughly 30 or 60
    seconds"; tests assert the returned offsets cluster near multiples of 15.
    """
    hist = result.delay_histogram
    centers = hist.centers
    mask = (centers >= lo) & (centers <= hi)
    peaks = [i for i in hist.peak_bins(min_prominence=2.0) if mask[i]]
    return [float(centers[i]) for i in peaks]


def run(scale=MEDIUM):
    """Uniform experiment entry point (see repro.experiments.registry)."""
    return run_fig2(scale)
