"""Figure 4: packet drop rates of the SPI filter vs the bitmap filter.

The paper feeds the clean 6-hour trace to both filters — an SPI filter with
the 240 s Windows TIME_WAIT idle timeout and a {4 x 20}-bitmap (Te = 20 s,
dt = 5 s) — and scatter-plots per-window drop rates against each other: the
points hug the slope-1.0 line, with averages 1.56% (SPI) vs 1.51% (bitmap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.analysis.report import render_comparison
from repro.core.filter_api import build_filter
from repro.experiments.config import MEDIUM, ExperimentScale
from repro.experiments.fig2 import generate_trace
from repro.sim.pipeline import run_filter_on_trace, windowed_drop_rates
from repro.spi.hashlist import HashListFilter
from repro.traffic.trace import Trace

#: Paper's measured averages.
PAPER_SPI_DROP_RATE = 0.0156
PAPER_BITMAP_DROP_RATE = 0.0151


@dataclass
class Fig4Result:
    spi_drop_rate: float
    bitmap_drop_rate: float
    window_pairs: List[Tuple[float, float]]  # (spi rate, bitmap rate) per window
    correlation: float
    fitted_slope: float

    def report(self) -> str:
        paper = {
            "SPI avg drop rate": f"{PAPER_SPI_DROP_RATE * 100:.2f}%",
            "bitmap avg drop rate": f"{PAPER_BITMAP_DROP_RATE * 100:.2f}%",
            "scatter slope": "~1.0",
        }
        measured = {
            "SPI avg drop rate": f"{self.spi_drop_rate * 100:.2f}%",
            "bitmap avg drop rate": f"{self.bitmap_drop_rate * 100:.2f}%",
            "scatter slope": f"{self.fitted_slope:.2f} (r={self.correlation:.2f})",
        }
        return render_comparison(
            "Figure 4 — SPI vs bitmap drop rates on the clean trace", paper, measured
        )


def run_fig4(
    scale: ExperimentScale = MEDIUM,
    trace: Trace = None,
    window: float = 10.0,
) -> Fig4Result:
    if trace is None:
        trace = generate_trace(scale)

    bitmap = build_filter(scale.bitmap_config(), trace.protected)
    bitmap_run = run_filter_on_trace(bitmap, trace, exact=True)

    spi = HashListFilter(trace.protected, idle_timeout=scale.spi_idle_timeout)
    spi_run = run_filter_on_trace(spi, trace)

    _, bitmap_rates = windowed_drop_rates(bitmap_run, window)
    _, spi_rates = windowed_drop_rates(spi_run, window)

    # Only windows with traffic in both runs contribute scatter points.
    n = min(len(bitmap_rates), len(spi_rates))
    spi_rates, bitmap_rates = spi_rates[:n], bitmap_rates[:n]
    active = (spi_rates > 0) | (bitmap_rates > 0)
    pairs = list(zip(spi_rates[active].tolist(), bitmap_rates[active].tolist()))

    if len(pairs) >= 2 and np.std(spi_rates[active]) > 0:
        correlation = float(np.corrcoef(spi_rates[active], bitmap_rates[active])[0, 1])
        # Least-squares through the origin, matching the paper's slope line.
        slope = float(
            np.dot(spi_rates[active], bitmap_rates[active])
            / np.dot(spi_rates[active], spi_rates[active])
        )
    else:
        correlation, slope = float("nan"), float("nan")

    return Fig4Result(
        spi_drop_rate=spi_run.incoming_drop_rate,
        bitmap_drop_rate=bitmap_run.incoming_drop_rate,
        window_pairs=pairs,
        correlation=correlation,
        fitted_slope=slope,
    )


def run(scale=MEDIUM):
    """Uniform experiment entry point (see repro.experiments.registry)."""
    return run_fig4(scale)
