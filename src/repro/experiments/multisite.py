"""Multi-site scenario matrix: topologies x traffic mixes, per-site tables.

The ``repro multisite`` experiment runs the scenario engine
(:mod:`repro.scenarios`) over every generated topology kind and a set of
traffic mixes, offline, and reports each scenario's per-site and aggregate
penetration / drop / false-positive table with the
:class:`~repro.core.parameters.ParameterAdvisor`'s recommended geometry
printed next to each site's measured numbers.  One scenario also carries a
roaming client, so every matrix run exercises the snapshot handoff path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

from repro.experiments.config import SMALL, ExperimentScale
from repro.scenarios.runner import ScenarioOutcome, build_scenario, run_offline
from repro.scenarios.spec import (
    AttackWave,
    FilterGeometry,
    RoamingClient,
    ScenarioSpec,
    TrafficSpec,
)

DEFAULT_TOPOLOGIES = ("fat-tree", "multi-isp", "cross-dc")
DEFAULT_MIXES = ("web-search", "data-mining")


@dataclass
class MultisiteResult:
    """Every scenario outcome of the matrix, reported in run order."""

    outcomes: List[ScenarioOutcome]

    def report(self) -> str:
        return "\n\n".join(outcome.report() for outcome in self.outcomes)


def scenario_matrix(
    scale: ExperimentScale,
    topologies: Tuple[str, ...] = DEFAULT_TOPOLOGIES,
    mixes: Tuple[str, ...] = DEFAULT_MIXES,
    num_sites: int = 3,
) -> List[ScenarioSpec]:
    """The matrix specs: paper-ratio waves at a quarter of the scale's load.

    Each site carries its own trace, so total volume is ``num_sites`` times
    the per-site rate — the quarter-scale keeps the matrix inside the
    scale's packet budget.  The first scenario adds a roaming client so the
    matrix always exercises the handoff.
    """
    duration = scale.duration / 4.0
    traffic_pps = scale.normal_pps / 4.0
    geometry = FilterGeometry(
        order=scale.bitmap_order,
        num_vectors=scale.num_vectors,
        num_hashes=scale.num_hashes,
        rotation_interval=scale.rotation_interval,
        hash_seed=scale.seed,
    )
    wave = AttackWave(
        kind="scan",
        start_fraction=scale.attack_start_fraction,
        duration_fraction=scale.attack_duration_fraction,
        rate_multiplier=scale.attack_multiplier,
        site_stagger=duration / 12.0,
    )
    specs = []
    for topology in topologies:
        for mix in mixes:
            specs.append(ScenarioSpec(
                name=f"{topology}/{mix}",
                topology=topology,
                sites=num_sites,
                duration=duration,
                seed=scale.seed,
                traffic=TrafficSpec(mix=mix, pps=traffic_pps),
                filter=geometry,
                waves=(wave,),
            ))
    if specs and num_sites >= 2:
        specs[0] = replace(
            specs[0], roamers=(RoamingClient(pps=traffic_pps / 8.0),))
    return specs


def run_multisite(
    scale: ExperimentScale = SMALL,
    topologies: Tuple[str, ...] = DEFAULT_TOPOLOGIES,
    mixes: Tuple[str, ...] = DEFAULT_MIXES,
    num_sites: int = 3,
) -> MultisiteResult:
    outcomes = []
    for spec in scenario_matrix(scale, topologies, mixes, num_sites):
        outcomes.append(run_offline(build_scenario(spec)))
    return MultisiteResult(outcomes=outcomes)


def run(scale=SMALL):
    """Uniform experiment entry point (see repro.experiments.registry)."""
    return run_multisite(scale)
