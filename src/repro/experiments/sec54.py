"""Section 5.4: colluding with attackers — sniffed-tuple replay.

The paper argues that an insider sniffer reporting live connection tuples
to an outside attacker is a poor strategy: "short connections will be
deleted quickly from a bitmap filter with a short expiry timer Te.  In such
a situation, the sniffer has to report new states to attackers frequently,
which increases the risk of ... being identified."

This experiment measures that claim.  A sniffer snapshots the client
network's active outgoing tuples every ``report_interval`` seconds; the
attacker forges incoming packets matching the reported tuples after a
``collusion latency`` L (report transport + attack turnaround).  The forged
packets' penetration rate is measured as a function of L:

- near-zero latency: most replayed tuples are still marked → penetration
  high (collusion "works", at maximal sniffer exposure);
- latency beyond Te: every replayed tuple has expired → penetration
  collapses to the random-guess floor;
- a shorter Te shifts the collapse left, shrinking the viable window
  exactly as Section 5.4 argues.

The penetration floor at large latencies is *not* a filter weakness: it is
the share of sniffed tuples belonging to connections still active at replay
time, whose refreshed marks any symmetry-based filter (including an exact
SPI filter) necessarily admits.  The paper's claim concerns the short
connections, whose replay value decays with Te.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.analysis.report import render_table
from repro.core.bitmap_filter import BitmapFilterConfig, Decision
from repro.core.filter_api import build_filter
from repro.experiments.config import SMALL, ExperimentScale
from repro.experiments.fig2 import generate_trace
from repro.net.packet import Packet, TcpFlags
from repro.traffic.trace import Trace


@dataclass
class CollusionPoint:
    latency: float        # seconds between sniffing a tuple and replaying it
    expiry_timer: float   # the filter's Te
    replayed: int
    penetrated: int

    @property
    def penetration_rate(self) -> float:
        return self.penetrated / self.replayed if self.replayed else 0.0


@dataclass
class Sec54Result:
    points: List[CollusionPoint]

    def rate_at(self, latency: float, expiry_timer: float) -> float:
        for point in self.points:
            if point.latency == latency and point.expiry_timer == expiry_timer:
                return point.penetration_rate
        raise KeyError((latency, expiry_timer))

    def report(self) -> str:
        rows = [
            [f"{p.latency:g}", f"{p.expiry_timer:g}", p.replayed,
             f"{p.penetration_rate * 100:.1f}%"]
            for p in self.points
        ]
        return render_table(
            ["collusion latency (s)", "Te (s)", "replayed pkts", "penetration"],
            rows,
            title="Section 5.4 — sniffed-tuple replay vs collusion latency:",
        )


def _run_collusion(
    scale: ExperimentScale,
    trace: Trace,
    latency: float,
    rotation_interval: float,
    report_interval: float = 2.0,
    seed: int = 0,
) -> CollusionPoint:
    """Stream the trace through a filter; replay sniffed tuples at +latency."""
    rng = random.Random(seed)
    config = BitmapFilterConfig(
        order=scale.bitmap_order, num_vectors=scale.num_vectors,
        num_hashes=scale.num_hashes, rotation_interval=rotation_interval,
        seed=scale.seed,
    )
    filt = build_filter(config, trace.protected)

    # Pass 1 bookkeeping: the sniffer's reports.  Each report at time t is
    # the set of outgoing tuples seen in the preceding report interval; the
    # attacker replays a sample of them at t + latency.
    packets = list(trace.packets)
    replay_queue: List[Packet] = []
    current_report: Set[Tuple[int, int, int, int, int]] = set()
    next_report = report_interval
    directions = trace.packets.directions(trace.protected)

    for pkt, direction in zip(packets, directions.tolist()):
        if pkt.ts >= next_report:
            sample = rng.sample(sorted(current_report),
                                min(40, len(current_report)))
            for proto, saddr, sport, daddr, dport in sample:
                replay_queue.append(Packet(
                    ts=next_report + latency, proto=proto, src=daddr,
                    sport=dport, dst=saddr, dport=sport,
                    flags=TcpFlags.PSH | TcpFlags.ACK, size=512,
                ))
            current_report.clear()
            next_report += report_interval
        if direction == 0:
            current_report.add((pkt.proto, pkt.src, pkt.sport, pkt.dst,
                                pkt.dport))

    # Pass 2: run normal traffic + replays through the filter in time order.
    merged = sorted(packets + replay_queue, key=lambda p: p.ts)
    replay_ids = {id(p) for p in replay_queue}
    replayed = penetrated = 0
    for pkt in merged:
        verdict = filt.process(pkt)
        if id(pkt) in replay_ids:
            replayed += 1
            if verdict is Decision.PASS:
                penetrated += 1
    return CollusionPoint(latency=latency, expiry_timer=config.expiry_timer,
                          replayed=replayed, penetrated=penetrated)


def run_sec54(scale: ExperimentScale = SMALL, trace: Trace = None) -> Sec54Result:
    if trace is None:
        trace = generate_trace(scale)
    points: List[CollusionPoint] = []
    # Latency sweep at the paper's Te = 20 s (dt = 5 s).
    for latency in (1.0, 8.0, 16.0, 25.0, 40.0):
        points.append(_run_collusion(scale, trace, latency,
                                     rotation_interval=5.0, seed=int(latency)))
    # The Section 5.4 mitigation: a short Te (5 s) at the same latencies.
    for latency in (1.0, 8.0, 16.0):
        points.append(_run_collusion(scale, trace, latency,
                                     rotation_interval=1.25, seed=100 + int(latency)))
    return Sec54Result(points=points)


def run(scale=SMALL):
    """Uniform experiment entry point (see repro.experiments.registry)."""
    return run_sec54(scale)
