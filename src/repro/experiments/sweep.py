"""Parameter-sensitivity ablation: Eq. (2) versus measured penetration.

Sweeps the bitmap parameters the paper tells operators to tune (Section 3.4)
— vector size n, hash count m, and connection load c — loading a bitmap with
random connection keys and measuring the random-tuple penetration rate, next
to the Eq. (2) prediction.  Also sweeps m around the Eq. (4) optimum to show
the predicted U-shape of the penetration curve.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.analysis.report import render_table
from repro.core.bitmap import Bitmap
from repro.core.hashing import HashFamily
from repro.core.parameters import (
    optimal_num_hashes,
    penetration_probability_for_load,
)


@dataclass
class SweepPoint:
    order: int
    num_hashes: int
    connections: int
    predicted: float        # Eq. (2), the paper's linear approximation
    predicted_exact: float  # exact Bloom occupancy (better at high m*c)
    measured: float


@dataclass
class SweepResult:
    points: List[SweepPoint]
    optimum_curve: List[SweepPoint]
    optimum_m: float

    def report(self) -> str:
        rows = [
            [p.order, p.num_hashes, p.connections,
             f"{p.predicted:.3e}", f"{p.predicted_exact:.3e}", f"{p.measured:.3e}"]
            for p in self.points
        ]
        lines = [render_table(
            ["n", "m", "c", "Eq.(2) p", "exact p", "measured p"],
            rows, title="Parameter sweep — prediction vs measurement:")]
        rows = [
            [p.num_hashes, f"{p.predicted:.3e}", f"{p.predicted_exact:.3e}",
             f"{p.measured:.3e}"]
            for p in self.optimum_curve
        ]
        lines.append(render_table(
            ["m", "Eq.(2) p", "exact p", "measured p"],
            rows,
            title=f"\nU-shape around the Eq.(4) optimum m* = {self.optimum_m:.1f}:"))
        return "\n".join(lines)


def measure_penetration(
    order: int,
    num_hashes: int,
    connections: int,
    trials: int,
    rng: random.Random,
) -> float:
    """Random-tuple penetration of a bitmap loaded with random keys."""
    bitmap = Bitmap(2, order)
    hashes = HashFamily(num_hashes, order, seed=rng.getrandbits(32))
    for _ in range(connections):
        bitmap.mark(hashes.indices(
            (6, rng.getrandbits(32), rng.getrandbits(16), rng.getrandbits(32))))
    hits = 0
    for _ in range(trials):
        key = (17, rng.getrandbits(32), rng.getrandbits(16), rng.getrandbits(32))
        if bitmap.test_current(hashes.indices(key)):
            hits += 1
    return hits / trials


def run_sweep(trials: int = 30_000, seed: int = 3) -> SweepResult:
    rng = random.Random(seed)
    points: List[SweepPoint] = []
    for order, num_hashes, connections in (
        (14, 2, 1_000),
        (14, 3, 1_000),
        (14, 3, 2_000),
        (15, 3, 2_000),
        (16, 3, 2_000),
        (16, 4, 4_000),
        (17, 3, 4_000),
    ):
        points.append(SweepPoint(
            order=order,
            num_hashes=num_hashes,
            connections=connections,
            predicted=penetration_probability_for_load(connections, num_hashes, order),
            predicted_exact=penetration_probability_for_load(
                connections, num_hashes, order, exact=True),
            measured=measure_penetration(order, num_hashes, connections, trials, rng),
        ))

    # The U-shape around m*: n=14, c=1500 -> m* = 2**14/(e*1500) ~ 4.
    order, connections = 14, 1_500
    m_star = optimal_num_hashes(order, connections, integral=False)
    curve = [
        SweepPoint(
            order=order,
            num_hashes=m,
            connections=connections,
            predicted=penetration_probability_for_load(connections, m, order),
            predicted_exact=penetration_probability_for_load(
                connections, m, order, exact=True),
            measured=measure_penetration(order, m, connections, trials, rng),
        )
        for m in (1, 2, 3, 4, 6, 8, 12)
    ]
    return SweepResult(points=points, optimum_curve=curve, optimum_m=m_star)


def run(scale=None):
    """Uniform experiment entry point (see repro.experiments.registry).

    The sweep is a Monte-Carlo parameter study; the trace scale does not
    apply, but its seed (when provided) drives the trials.
    """
    if scale is not None:
        return run_sweep(seed=scale.seed)
    return run_sweep()
