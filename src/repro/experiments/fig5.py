"""Figure 5: bitmap-filter performance under the random-scan attack.

Section 4.3: random attack packets at 20x the normal packet rate (500K pps
against the 24.63K pps trace) are mixed into the clean trace from the attack
start onwards.  (a) the packets that penetrate the filter track the normal
traffic line — i.e. nearly all attack traffic is removed; (b) the attack
filtering rate averages 99.983% with the 512 KB {4 x 20}-bitmap and m = 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.report import render_comparison
from repro.attacks.scanner import RandomScanAttack, ScanConfig
from repro.core.filter_api import build_filter
from repro.core.parameters import penetration_probability
from repro.experiments.config import MEDIUM, ExperimentScale
from repro.experiments.fig2 import generate_trace
from repro.sim.metrics import FilterRunResult
from repro.traffic.trace import Trace

#: Paper's headline number.
PAPER_FILTER_RATE = 0.99983


@dataclass
class Fig5Result:
    attack_filter_rate: float
    penetration_rate: float
    predicted_penetration: float   # Eq. (1) from the measured utilization
    steady_state_utilization: float
    attack_to_normal_ratio: float
    run: FilterRunResult

    def report(self) -> str:
        paper = {
            "attack filtering rate": f"{PAPER_FILTER_RATE * 100:.3f}%",
            "attack rate / normal rate": "20x",
        }
        measured = {
            "attack filtering rate": f"{self.attack_filter_rate * 100:.3f}%",
            "attack rate / normal rate": f"{self.attack_to_normal_ratio:.1f}x",
            "penetration rate": f"{self.penetration_rate:.2e}",
            "Eq.(1) prediction from measured U": f"{self.predicted_penetration:.2e}",
            "steady-state utilization U": f"{self.steady_state_utilization:.4f}",
        }
        return render_comparison(
            "Figure 5 — bitmap filter vs the random-scan attack", paper, measured
        )


def build_attack_trace(scale: ExperimentScale, trace: Trace) -> Trace:
    """Mix the Section 4.3 random-scan attack into a clean trace."""
    attack = RandomScanAttack(
        ScanConfig(
            rate_pps=scale.attack_pps,
            start=scale.attack_start,
            duration=scale.attack_duration,
            seed=scale.seed ^ 0xA77AC4,
        ),
        trace.protected,
    ).generate()
    attack_trace = Trace(attack, trace.protected, {"duration": trace.duration})
    return trace.merged_with(attack_trace)


def run_fig5(
    scale: ExperimentScale = MEDIUM,
    trace: Optional[Trace] = None,
    exact: bool = True,
) -> Fig5Result:
    if trace is None:
        trace = generate_trace(scale)
    mixed = build_attack_trace(scale, trace)

    filt = build_filter(scale.bitmap_config(), trace.protected)

    # Sample utilization mid-attack by splitting the run at the midpoint.
    midpoint = scale.attack_start + scale.attack_duration / 2.0
    packets = mixed.packets
    split = int(np.searchsorted(packets.ts, midpoint))
    first = packets[:split]
    second = packets[split:]
    verdict_first = filt.process_batch(first, exact=exact)
    utilization = filt.utilization()
    verdict_second = filt.process_batch(second, exact=exact)
    verdicts = np.concatenate([verdict_first, verdict_second])

    from repro.sim.metrics import score_run

    directions = packets.directions(mixed.protected)
    incoming_mask = directions == 1
    confusion, series = score_run(packets, verdicts, incoming_mask, mixed.duration)
    run = FilterRunResult(
        verdicts=verdicts,
        incoming_mask=incoming_mask,
        confusion=confusion,
        series=series,
        filter_stats=filt.stats.as_dict(),
    )

    return Fig5Result(
        attack_filter_rate=confusion.attack_filter_rate,
        penetration_rate=confusion.penetration_rate,
        predicted_penetration=penetration_probability(
            utilization, scale.num_hashes
        ),
        steady_state_utilization=utilization,
        attack_to_normal_ratio=scale.attack_multiplier,
        run=run,
    )


def run(scale=MEDIUM):
    """Uniform experiment entry point (see repro.experiments.registry)."""
    return run_fig5(scale)
