"""Experiment scales: paper ratios at laptop-friendly packet counts.

The paper's headline run is a 6-hour, 24.63K pps trace plus a 500K pps
attack against a {4 x 20}-bitmap.  Pure-Python packet processing cannot do
that in CI time, so each scale shrinks *absolute* rates and durations while
pinning the quantities the results actually depend on:

- the attack:normal rate ratio (20x, Section 4.3);
- the filter timing (k = 4, dt = 5 s, Te = 20 s);
- the utilization regime: the paper's current-vector utilization is
  ``U = c*m/2**n ~ 15K*3/2**20 ~ 4.3%``; each scale picks ``n`` so the scaled
  active-connection count lands in the same few-percent band (asserted by
  ``benchmarks/test_fig5_attack.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bitmap_filter import BitmapFilterConfig


@dataclass(frozen=True)
class ExperimentScale:
    """One consistent set of scaled experiment parameters."""

    name: str
    duration: float          # trace length in seconds
    normal_pps: float        # target normal packet rate
    bitmap_order: int        # n, chosen to match the paper's utilization band
    attack_multiplier: float = 20.0   # attack rate / normal rate (paper: 20x)
    attack_start_fraction: float = 1.0 / 3.0  # when the attack begins
    attack_duration_fraction: float = 0.5     # how long it lasts
    num_vectors: int = 4     # k (paper value)
    num_hashes: int = 3      # m (paper value)
    rotation_interval: float = 5.0  # dt (paper value)
    spi_idle_timeout: float = 240.0  # Windows TIME_WAIT (paper value)
    seed: int = 42

    @property
    def expiry_timer(self) -> float:
        return self.num_vectors * self.rotation_interval

    @property
    def attack_pps(self) -> float:
        return self.normal_pps * self.attack_multiplier

    @property
    def attack_start(self) -> float:
        return self.duration * self.attack_start_fraction

    @property
    def attack_duration(self) -> float:
        return self.duration * self.attack_duration_fraction

    def bitmap_config(self, order: int = None) -> BitmapFilterConfig:
        return BitmapFilterConfig(
            order=order if order is not None else self.bitmap_order,
            num_vectors=self.num_vectors,
            num_hashes=self.num_hashes,
            rotation_interval=self.rotation_interval,
            seed=self.seed,
        )


#: Fast scale for CI and the test suite (~100K normal packets).
SMALL = ExperimentScale(name="small", duration=120.0, normal_pps=400.0, bitmap_order=15)

#: Default scale for the benchmark harness and CLI (~500K normal packets).
MEDIUM = ExperimentScale(name="medium", duration=300.0, normal_pps=800.0, bitmap_order=16)

#: Heavier scale for overnight runs (~1.2M normal packets, 24M attack).
LARGE = ExperimentScale(name="large", duration=600.0, normal_pps=2000.0, bitmap_order=17)

SCALES = {scale.name: scale for scale in (SMALL, MEDIUM, LARGE)}


def get_scale(name: str) -> ExperimentScale:
    try:
        return SCALES[name]
    except KeyError:
        raise KeyError(f"unknown scale {name!r}; choose from {sorted(SCALES)}") from None
