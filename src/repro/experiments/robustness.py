"""Multi-seed robustness: are the headline results seed-stable?

Reruns the two headline experiments (Fig. 4 drop-rate parity, Fig. 5 attack
filtering) across independent workload seeds and reports mean and standard
deviation — the confidence intervals a single-trace paper cannot give.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

import numpy as np

from repro.analysis.report import render_table
from repro.experiments.config import SMALL, ExperimentScale
from repro.experiments.fig2 import generate_trace
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5


@dataclass
class SeedOutcome:
    seed: int
    spi_drop_rate: float
    bitmap_drop_rate: float
    attack_filter_rate: float


@dataclass
class RobustnessResult:
    outcomes: List[SeedOutcome]

    def _column(self, name: str) -> np.ndarray:
        return np.array([getattr(o, name) for o in self.outcomes])

    def mean(self, name: str) -> float:
        return float(self._column(name).mean())

    def std(self, name: str) -> float:
        return float(self._column(name).std())

    def report(self) -> str:
        rows = [
            [o.seed, f"{o.spi_drop_rate * 100:.2f}%",
             f"{o.bitmap_drop_rate * 100:.2f}%",
             f"{o.attack_filter_rate * 100:.3f}%"]
            for o in self.outcomes
        ]
        rows.append([
            "mean±std",
            f"{self.mean('spi_drop_rate') * 100:.2f}±{self.std('spi_drop_rate') * 100:.2f}%",
            f"{self.mean('bitmap_drop_rate') * 100:.2f}±{self.std('bitmap_drop_rate') * 100:.2f}%",
            f"{self.mean('attack_filter_rate') * 100:.3f}±{self.std('attack_filter_rate') * 100:.3f}%",
        ])
        return render_table(
            ["seed", "SPI drop", "bitmap drop", "attack filtered"],
            rows,
            title="Seed robustness (paper: SPI 1.56%, bitmap 1.51%, filter 99.983%):",
        )


def run_robustness(
    scale: ExperimentScale = SMALL, seeds: List[int] = (11, 23, 37, 51, 73)
) -> RobustnessResult:
    outcomes: List[SeedOutcome] = []
    for seed in seeds:
        seeded = replace(scale, seed=seed)
        trace = generate_trace(seeded)
        fig4 = run_fig4(seeded, trace)
        fig5 = run_fig5(seeded, trace)
        outcomes.append(SeedOutcome(
            seed=seed,
            spi_drop_rate=fig4.spi_drop_rate,
            bitmap_drop_rate=fig4.bitmap_drop_rate,
            attack_filter_rate=fig5.attack_filter_rate,
        ))
    return RobustnessResult(outcomes=outcomes)


def run(scale=SMALL):
    """Uniform experiment entry point (see repro.experiments.registry)."""
    return run_robustness(scale)
