"""Table 1: performance comparison of the bitmap filter and SPI filters.

Two halves:

1. *Analytical storage*, exactly as the paper computes it: at 2.56M
   concurrent connections an SPI filter needs ``2.56M x 30 B = 76.8 MB``
   (footnote b), while a bitmap filter sized for ~10% random penetration
   (n = 24 by Eq. 5) needs ``4 x 2**24 / 8 = 8 MB`` (footnote c).

2. *Measured operation costs* on the real data structures: per-op insert and
   lookup times and full garbage-collection sweeps at geometrically growing
   flow counts, demonstrating the complexity column (hash chains degrade
   with load, AVL grows logarithmically, bitmap stays flat).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.report import render_table
from repro.core.bitmap import Bitmap
from repro.core.hashing import HashFamily
from repro.core.parameters import memory_bytes, required_order
from repro.spi.avltree import AvlTree
from repro.spi.base import FLOW_STATE_BYTES, FlowState
from repro.spi.hashlist import FlowHashTable

#: The paper's reference point for the storage comparison.
PAPER_CONNECTIONS = 2_560_000
PAPER_PENETRATION = 0.10


def paper_storage_rows() -> List[Dict[str, object]]:
    """The analytical storage half of Table 1."""
    spi_bytes = PAPER_CONNECTIONS * FLOW_STATE_BYTES
    order = required_order(PAPER_CONNECTIONS, PAPER_PENETRATION)
    bitmap_bytes = memory_bytes(4, order)
    return [
        {
            "structure": "hash+link-list (Linux)",
            "storage_bytes": spi_bytes,
            "storage_human": f"{spi_bytes / 1e6:.1f}M bytes",
            "insert": "O(1)",
            "lookup": "O(n)",
            "gc": "O(n)",
            "hardware": "possible",
        },
        {
            "structure": "AVL-tree",
            "storage_bytes": spi_bytes,
            "storage_human": f"{spi_bytes / 1e6:.1f}M bytes",
            "insert": "O(log n)",
            "lookup": "O(log n)",
            "gc": "O(n)",
            "hardware": "difficult",
        },
        {
            "structure": f"bitmap filter (n={order})",
            "storage_bytes": bitmap_bytes,
            "storage_human": f"{bitmap_bytes / 1e6:.0f}M bytes",
            "insert": "O(1)",
            "lookup": "O(1)",
            "gc": "O(n), memset",
            "hardware": "easy",
        },
    ]


def _random_keys(count: int, rng: random.Random) -> List[Tuple[int, int, int, int, int]]:
    return [
        (
            6,
            rng.getrandbits(32),
            rng.getrandbits(16),
            rng.getrandbits(32),
            rng.getrandbits(16),
        )
        for _ in range(count)
    ]


@dataclass
class OpTiming:
    """Measured per-operation timings at one population size."""

    population: int
    insert_ns: float
    lookup_ns: float
    gc_ms: float


@dataclass
class Table1Result:
    storage_rows: List[Dict[str, object]]
    timings: Dict[str, List[OpTiming]]   # structure name -> per-size timings
    probe_count: int

    def growth_factor(self, structure: str, op: str) -> float:
        """Timing ratio between the largest and smallest population."""
        series = self.timings[structure]
        first, last = series[0], series[-1]
        return getattr(last, op) / max(getattr(first, op), 1e-9)

    def report(self) -> str:
        lines = ["Table 1 — bitmap filter vs SPI filters", "", "Analytical storage:"]
        lines.append(
            render_table(
                ["structure", "storage @2.56M conns", "insert", "lookup", "GC", "hw accel"],
                [
                    [r["structure"], r["storage_human"], r["insert"], r["lookup"],
                     r["gc"], r["hardware"]]
                    for r in self.storage_rows
                ],
            )
        )
        lines.append("")
        lines.append(f"Measured op costs ({self.probe_count} probes per point):")
        rows = []
        for structure, series in self.timings.items():
            for t in series:
                rows.append(
                    [structure, t.population, f"{t.insert_ns:.0f}", f"{t.lookup_ns:.0f}",
                     f"{t.gc_ms:.2f}"]
                )
        lines.append(
            render_table(["structure", "flows", "insert ns/op", "lookup ns/op", "GC ms"], rows)
        )
        return "\n".join(lines)


def _time_hashlist(population: int, probes: int, rng: random.Random) -> OpTiming:
    table = FlowHashTable(num_buckets=16384)
    keys = _random_keys(population, rng)
    for key in keys:
        table.insert(key, FlowState(1e18))
    new_keys = _random_keys(probes, rng)
    t0 = time.perf_counter()
    for key in new_keys:
        table.insert(key, FlowState(1e18))
    insert_ns = (time.perf_counter() - t0) / probes * 1e9
    lookup_keys = [keys[rng.randrange(population)] for _ in range(probes)]
    t0 = time.perf_counter()
    for key in lookup_keys:
        table.get(key)
    lookup_ns = (time.perf_counter() - t0) / probes * 1e9
    t0 = time.perf_counter()
    table.sweep_expired(0.0)  # nothing expires; pure traversal cost
    gc_ms = (time.perf_counter() - t0) * 1e3
    return OpTiming(population, insert_ns, lookup_ns, gc_ms)


def _time_avl(population: int, probes: int, rng: random.Random) -> OpTiming:
    tree = AvlTree()
    keys = _random_keys(population, rng)
    for key in keys:
        tree.put(key, FlowState(1e18))
    new_keys = _random_keys(probes, rng)
    t0 = time.perf_counter()
    for key in new_keys:
        tree.put(key, FlowState(1e18))
    insert_ns = (time.perf_counter() - t0) / probes * 1e9
    lookup_keys = [keys[rng.randrange(population)] for _ in range(probes)]
    t0 = time.perf_counter()
    for key in lookup_keys:
        tree.get(key)
    lookup_ns = (time.perf_counter() - t0) / probes * 1e9
    t0 = time.perf_counter()
    # Traverse everything (the GC pattern); nothing is expired.
    for _key, state in tree.items():
        if state.expires_at <= 0.0:
            pass
    gc_ms = (time.perf_counter() - t0) * 1e3
    return OpTiming(population, insert_ns, lookup_ns, gc_ms)


def _time_bitmap(population: int, probes: int, rng: random.Random, order: int = 20) -> OpTiming:
    bitmap = Bitmap(4, order)
    hashes = HashFamily(3, order)
    keys = [key[:4] for key in _random_keys(population, rng)]
    for key in keys:
        bitmap.mark(hashes.indices(key))
    new_keys = [key[:4] for key in _random_keys(probes, rng)]
    t0 = time.perf_counter()
    for key in new_keys:
        bitmap.mark(hashes.indices(key))
    insert_ns = (time.perf_counter() - t0) / probes * 1e9
    lookup_keys = [keys[rng.randrange(population)] for _ in range(probes)]
    t0 = time.perf_counter()
    for key in lookup_keys:
        bitmap.test_current(hashes.indices(key))
    lookup_ns = (time.perf_counter() - t0) / probes * 1e9
    t0 = time.perf_counter()
    bitmap.rotate()  # the bitmap's whole GC: one memset
    gc_ms = (time.perf_counter() - t0) * 1e3
    return OpTiming(population, insert_ns, lookup_ns, gc_ms)


def run_table1(
    sizes: Sequence[int] = (10_000, 40_000, 160_000),
    probes: int = 4_000,
    seed: int = 5,
) -> Table1Result:
    rng = random.Random(seed)
    timings = {
        "hash+link-list": [_time_hashlist(n, probes, rng) for n in sizes],
        "AVL-tree": [_time_avl(n, probes, rng) for n in sizes],
        "bitmap filter": [_time_bitmap(n, probes, rng) for n in sizes],
    }
    return Table1Result(
        storage_rows=paper_storage_rows(),
        timings=timings,
        probe_count=probes,
    )


def run(scale=None):
    """Uniform experiment entry point (see repro.experiments.registry).

    The state-cost comparison is parameterized by flow-count sizes, not a
    trace scale; ``small`` keeps CI-friendly sizes, anything else uses the
    full ladder.
    """
    if scale is not None and scale.name == "small":
        return run_table1(sizes=(4_000, 16_000, 64_000))
    return run_table1(sizes=(10_000, 40_000, 160_000))
