"""Section 5.2: attack from insiders — bitmap pollution and its mitigations.

An infected host inside the client network emits random outgoing tuples at
rate ``r``; each marks m bits for ~Te seconds, raising the utilization by
roughly ``m * r * Te / 2**n`` and therefore the random-packet penetration
probability ``U**m``.  The experiment measures the utilization increase
against the formula, then demonstrates both mitigations the paper proposes:
a larger bitmap (increase n) and a shorter expiry timer (reduce Te).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.analysis.report import render_table
from repro.attacks.insider import InsiderAttack
from repro.core.bitmap_filter import BitmapFilterConfig
from repro.core.filter_api import build_filter
from repro.core.parameters import insider_utilization_increase, penetration_probability
from repro.experiments.config import MEDIUM, ExperimentScale
from repro.experiments.fig2 import generate_trace
from repro.traffic.trace import Trace


@dataclass
class InsiderScenario:
    label: str
    order: int
    expiry_timer: float
    baseline_utilization: float
    attacked_utilization: float
    predicted_increase: float
    measured_increase: float
    attacked_penetration: float


@dataclass
class Sec52Result:
    attack_rate_pps: float
    scenarios: List[InsiderScenario]

    def report(self) -> str:
        rows = [
            [s.label, s.order, f"{s.expiry_timer:g}",
             f"{s.baseline_utilization:.4f}", f"{s.attacked_utilization:.4f}",
             f"{s.predicted_increase:.4f}", f"{s.measured_increase:.4f}",
             f"{s.attacked_penetration:.3e}"]
            for s in self.scenarios
        ]
        header = (
            f"Section 5.2 — insider attack at r = {self.attack_rate_pps:g} pps\n"
            "predicted increase = m*r*Te / 2^n (paper formula)"
        )
        return header + "\n" + render_table(
            ["scenario", "n", "Te", "U base", "U attacked", "dU pred", "dU meas", "p attacked"],
            rows,
        )


def _utilization_under(
    config: BitmapFilterConfig,
    trace: Trace,
    sample_time: float,
) -> float:
    """Run the trace up to ``sample_time`` and read the utilization."""
    filt = build_filter(config, trace.protected)
    packets = trace.packets
    cut = int(np.searchsorted(packets.ts, sample_time))
    filt.process_batch(packets[:cut], exact=False)
    return filt.utilization()


def run_sec52(
    scale: ExperimentScale = MEDIUM,
    insider_rate_pps: float = None,
) -> Sec52Result:
    trace = generate_trace(scale)
    if insider_rate_pps is None:
        # A single compromised host scanning at half the whole network's
        # normal packet rate — loud, but keeping the predicted utilization
        # increase in the linear (uncapped) regime of the Sec. 5.2 formula.
        insider_rate_pps = scale.normal_pps * 0.5

    attacker = trace.protected.networks[0].host(10)
    insider = InsiderAttack(
        attacker_addr=attacker,
        rate_pps=insider_rate_pps,
        start=0.0,
        duration=scale.duration,
        seed=scale.seed ^ 0x1221,
    )
    polluted = trace.merged_with(
        Trace(insider.generate(trace.protected), trace.protected,
              {"duration": trace.duration})
    )

    sample_time = scale.duration * 0.8
    scenarios: List[InsiderScenario] = []
    baseline_cfg = scale.bitmap_config()

    def add_scenario(label: str, config: BitmapFilterConfig) -> None:
        base_u = _utilization_under(config, trace, sample_time)
        attacked_u = _utilization_under(config, polluted, sample_time)
        te = config.expiry_timer
        scenarios.append(
            InsiderScenario(
                label=label,
                order=config.order,
                expiry_timer=te,
                baseline_utilization=base_u,
                attacked_utilization=attacked_u,
                predicted_increase=insider_utilization_increase(
                    insider_rate_pps, config.num_hashes, config.order, te
                ),
                measured_increase=attacked_u - base_u,
                attacked_penetration=penetration_probability(
                    attacked_u, config.num_hashes
                ),
            )
        )

    add_scenario("baseline", baseline_cfg)
    add_scenario(
        "mitigation: larger bitmap (n+2)",
        BitmapFilterConfig(
            order=baseline_cfg.order + 2,
            num_vectors=baseline_cfg.num_vectors,
            num_hashes=baseline_cfg.num_hashes,
            rotation_interval=baseline_cfg.rotation_interval,
            seed=baseline_cfg.seed,
        ),
    )
    add_scenario(
        "mitigation: shorter Te (dt=1.25s, Te=5s)",
        BitmapFilterConfig(
            order=baseline_cfg.order,
            num_vectors=baseline_cfg.num_vectors,
            num_hashes=baseline_cfg.num_hashes,
            rotation_interval=baseline_cfg.rotation_interval / 4.0,
            seed=baseline_cfg.seed,
        ),
    )

    return Sec52Result(attack_rate_pps=insider_rate_pps, scenarios=scenarios)


def run(scale=MEDIUM):
    """Uniform experiment entry point (see repro.experiments.registry)."""
    return run_sec52(scale)
