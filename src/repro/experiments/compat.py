"""Section 5.1 compatibility: active-mode protocols through the filter.

The bitmap filter is transparent to client-initiated protocols (HTTP, SMTP,
POP3/IMAP, passive FTP, telnet, SSH) but breaks protocols where the *remote*
side opens a data channel — active-mode FTP and P2P.  The fix is hole
punching: before expecting the inbound connection, the client sends one
packet from the soon-to-be-listening port toward the server.

This experiment builds a population of active-FTP-style sessions on top of
the normal workload and measures, with and without hole punching:

- the inbound data-channel admission rate (broken vs fixed),
- that client-initiated traffic is untouched either way,
- that punching stays effective only within Te (a late server connect
  still fails — the paper's security argument for expiring holes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.analysis.report import render_table
from repro.core.filter_api import build_filter
from repro.core.hole_punch import hole_punch_packet
from repro.experiments.config import SMALL, ExperimentScale
from repro.experiments.fig2 import generate_trace
from repro.net.packet import Packet, PacketArray, TcpFlags
from repro.net.protocols import IPPROTO_TCP, PORT_FTP, PORT_FTP_DATA
from repro.traffic.trace import Trace


@dataclass
class CompatResult:
    sessions: int
    data_channel_success_without_punch: float
    data_channel_success_with_punch: float
    late_connect_success_with_punch: float
    normal_fp_without_punch: float
    normal_fp_with_punch: float

    def report(self) -> str:
        rows = [
            ["inbound data channel (no punching)", f"{self.data_channel_success_without_punch * 100:.1f}%"],
            ["inbound data channel (hole punched)", f"{self.data_channel_success_with_punch * 100:.1f}%"],
            ["inbound connect > Te after punch", f"{self.late_connect_success_with_punch * 100:.1f}%"],
            ["collateral FP on normal traffic (no punching)", f"{self.normal_fp_without_punch * 100:.2f}%"],
            ["collateral FP on normal traffic (punching)", f"{self.normal_fp_with_punch * 100:.2f}%"],
        ]
        return render_table(
            ["scenario", "success/penetration"],
            rows,
            title=f"Section 5.1 compatibility — {self.sessions} active-FTP sessions:",
        )


def _active_ftp_sessions(
    protected, rng: random.Random, count: int, duration: float,
    punch: bool, expiry_timer: float, late: bool = False,
) -> Tuple[List[Packet], List[int]]:
    """Active-FTP-style sessions; returns (packets, data-SYN indices)."""
    packets: List[Packet] = []
    data_indices: List[int] = []
    clients = protected.hosts(per_network=10)
    for i in range(count):
        t0 = rng.uniform(5.0, duration * 0.6)
        client = rng.choice(clients)
        server = 0xC6336401 + i  # 198.51.100.x block, outside the client nets
        ctrl_port = 30_000 + i
        data_port = 40_000 + i
        # Control channel: client connects to server:21.
        ctrl_syn = Packet(t0, IPPROTO_TCP, client, ctrl_port, server, PORT_FTP,
                          TcpFlags.SYN, 48)
        packets.append(ctrl_syn)
        packets.append(ctrl_syn.reply(t0 + 0.03, TcpFlags.SYN | TcpFlags.ACK))
        packets.append(Packet(t0 + 0.035, IPPROTO_TCP, client, ctrl_port,
                              server, PORT_FTP, TcpFlags.ACK, 40))
        # The client announces PORT data_port; optionally punches the hole.
        if punch:
            packets.append(hole_punch_packet(t0 + 0.1, IPPROTO_TCP, client,
                                             data_port, server,
                                             random_port=50_000 + i))
        # The server's active connect from port 20, either promptly or after
        # the hole has expired (for the late-connect scenario).
        delay = expiry_timer + 8.0 if late else rng.uniform(0.2, 2.0)
        data_syn = Packet(t0 + 0.1 + delay, IPPROTO_TCP, server, PORT_FTP_DATA,
                          client, data_port, TcpFlags.SYN, 48)
        data_indices.append(len(packets))
        packets.append(data_syn)
    return packets, data_indices


def _run_scenario(
    scale: ExperimentScale, trace: Trace, punch: bool, late: bool = False,
) -> Tuple[float, float]:
    """Returns (data-channel success rate, normal-traffic FP rate)."""
    rng = random.Random(scale.seed ^ 0xF7B)
    expiry = scale.expiry_timer
    ftp_packets, data_indices = _active_ftp_sessions(
        trace.protected, rng, count=60, duration=scale.duration,
        punch=punch, expiry_timer=expiry, late=late,
    )
    ftp = PacketArray.from_packets(ftp_packets)
    mixed = trace.merged_with(Trace(ftp, trace.protected,
                                    {"duration": trace.duration}))

    # Track the data-channel SYNs through the merged ordering by key.
    data_keys = {
        (p.src, p.sport, p.dst, p.dport, round(p.ts, 6))
        for p in (ftp_packets[i] for i in data_indices)
    }
    filt = build_filter(scale.bitmap_config(), trace.protected)
    verdicts = filt.process_batch(mixed.packets, exact=True)

    packets = mixed.packets
    is_data_syn = np.zeros(len(packets), dtype=bool)
    for i in range(len(packets)):
        key = (int(packets.src[i]), int(packets.sport[i]),
               int(packets.dst[i]), int(packets.dport[i]),
               round(float(packets.ts[i]), 6))
        if key in data_keys:
            is_data_syn[i] = True
    assert int(is_data_syn.sum()) == len(data_indices)

    success = float(verdicts[is_data_syn].mean())
    normal_incoming = (
        (packets.label == 0)
        & (packets.directions(trace.protected) == 1)
        & ~is_data_syn
    )
    fp = float((~verdicts[normal_incoming]).mean())
    return success, fp


def run_compat(scale: ExperimentScale = SMALL, trace: Trace = None) -> CompatResult:
    if trace is None:
        trace = generate_trace(scale)
    broken, fp_without = _run_scenario(scale, trace, punch=False)
    fixed, fp_with = _run_scenario(scale, trace, punch=True)
    late, _ = _run_scenario(scale, trace, punch=True, late=True)
    return CompatResult(
        sessions=60,
        data_channel_success_without_punch=broken,
        data_channel_success_with_punch=fixed,
        late_connect_success_with_punch=late,
        normal_fp_without_punch=fp_without,
        normal_fp_with_punch=fp_with,
    )


def run(scale=SMALL):
    """Uniform experiment entry point (see repro.experiments.registry)."""
    return run_compat(scale)
