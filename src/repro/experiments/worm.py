"""Worm-outbreak ablation: the epidemic context of the paper's introduction.

Two parts:

1. The epidemic curve itself — a Code Red-style random-scanning worm
   sweeping its vulnerable population in hours (the motivation of Section 1,
   refs [6, 13, 21]).
2. The client-network view: the inbound worm scans a protected network
   receives over the outbreak, and the fraction a bitmap filter drops
   (the worm analogue of Fig. 5, with a *time-varying* attack rate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.analysis.report import render_comparison
from repro.attacks.worm import WormModel, WormParameters
from repro.core.filter_api import build_filter
from repro.experiments.config import SMALL, ExperimentScale
from repro.experiments.fig2 import generate_trace
from repro.sim.pipeline import run_filter_on_trace
from repro.traffic.trace import Trace


@dataclass
class WormResult:
    params: WormParameters
    time_to_half: float               # seconds for 50% infection
    final_infected: int
    inbound_scan_count: int
    scan_filter_rate: float
    curve: Tuple[np.ndarray, np.ndarray]

    def report(self) -> str:
        paper = {
            "outbreak shape": "logistic (Code Red-style)",
            "scan filtering": "90-99% (conclusion)",
        }
        measured = {
            "outbreak shape": (
                f"50% infected at t={self.time_to_half:.0f}s, "
                f"{self.final_infected} final"
            ),
            "scan filtering": f"{self.scan_filter_rate * 100:.2f}%",
            "inbound scans seen": str(self.inbound_scan_count),
        }
        return render_comparison("Worm outbreak ablation", paper, measured)


def run_worm(
    scale: ExperimentScale = SMALL,
    params: WormParameters = None,
) -> WormResult:
    if params is None:
        # Compressed outbreak so the whole epidemic fits the scaled trace:
        # a small vulnerable population scanned aggressively.
        params = WormParameters(
            vulnerable_hosts=50_000,
            scan_rate=4000.0,
            initially_infected=50,
        )
    model = WormModel(params)
    trace = generate_trace(scale)

    curve = model.infection_curve(scale.duration, step=1.0)
    time_to_half = model.time_to_fraction(0.5, step=0.25)

    scans = model.inbound_scans(
        trace.protected, duration=scale.duration, seed=scale.seed ^ 0x3042
    )
    mixed = trace.merged_with(
        Trace(scans, trace.protected, {"duration": trace.duration})
    )

    filt = build_filter(scale.bitmap_config(), trace.protected)
    run = run_filter_on_trace(filt, mixed, exact=True)

    return WormResult(
        params=params,
        time_to_half=time_to_half,
        final_infected=int(curve[1][-1]),
        inbound_scan_count=len(scans),
        scan_filter_rate=run.confusion.attack_filter_rate,
        curve=curve,
    )


def run(scale=SMALL):
    """Uniform experiment entry point (see repro.experiments.registry)."""
    return run_worm(scale)
