"""AVL-tree SPI filter (Table 1, column 2).

A self-balancing binary search tree keyed by the flow tuple gives
O(log n) insert and lookup at the price of rebalancing work and pointer-rich
nodes.  The tree below is a full from-scratch implementation (recursive
insert/delete with rotations) so the Table 1 micro-benchmarks exercise real
AVL costs; garbage collection still has to traverse all states, like the
hash+linked-list design.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.net.flow import FlowKey
from repro.spi.base import FlowState, StatefulFilter


class _AvlNode:
    __slots__ = ("key", "value", "left", "right", "height")

    def __init__(self, key: Any, value: Any):
        self.key = key
        self.value = value
        self.left: Optional["_AvlNode"] = None
        self.right: Optional["_AvlNode"] = None
        self.height = 1


def _height(node: Optional[_AvlNode]) -> int:
    return node.height if node is not None else 0


def _update_height(node: _AvlNode) -> None:
    node.height = 1 + max(_height(node.left), _height(node.right))


def _balance_factor(node: _AvlNode) -> int:
    return _height(node.left) - _height(node.right)


def _rotate_right(y: _AvlNode) -> _AvlNode:
    x = y.left
    assert x is not None
    y.left = x.right
    x.right = y
    _update_height(y)
    _update_height(x)
    return x


def _rotate_left(x: _AvlNode) -> _AvlNode:
    y = x.right
    assert y is not None
    x.right = y.left
    y.left = x
    _update_height(x)
    _update_height(y)
    return y


def _rebalance(node: _AvlNode) -> _AvlNode:
    _update_height(node)
    balance = _balance_factor(node)
    if balance > 1:
        assert node.left is not None
        if _balance_factor(node.left) < 0:  # left-right case
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if balance < -1:
        assert node.right is not None
        if _balance_factor(node.right) > 0:  # right-left case
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class AvlTree:
    """A generic AVL-balanced map with ordered keys."""

    def __init__(self):
        self._root: Optional[_AvlNode] = None
        self._size = 0

    # -- queries -----------------------------------------------------------

    def get(self, key: Any) -> Optional[Any]:
        node = self._root
        while node is not None:
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                return node.value
        return None

    def __contains__(self, key: Any) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return _height(self._root)

    def min_key(self) -> Optional[Any]:
        node = self._root
        if node is None:
            return None
        while node.left is not None:
            node = node.left
        return node.key

    def max_key(self) -> Optional[Any]:
        node = self._root
        if node is None:
            return None
        while node.right is not None:
            node = node.right
        return node.key

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """In-order (sorted by key) iteration, without recursion."""
        stack: List[_AvlNode] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def keys(self) -> Iterator[Any]:
        for key, _ in self.items():
            yield key

    # -- mutation ------------------------------------------------------------

    def put(self, key: Any, value: Any) -> bool:
        """Insert or update; returns True if the key was newly inserted."""
        self._root, inserted = self._put(self._root, key, value)
        if inserted:
            self._size += 1
        return inserted

    def _put(self, node: Optional[_AvlNode], key: Any, value: Any) -> Tuple[_AvlNode, bool]:
        if node is None:
            return _AvlNode(key, value), True
        if key < node.key:
            node.left, inserted = self._put(node.left, key, value)
        elif node.key < key:
            node.right, inserted = self._put(node.right, key, value)
        else:
            node.value = value
            return node, False
        return _rebalance(node), inserted

    def remove(self, key: Any) -> bool:
        """Delete ``key``; returns True if it was present."""
        self._root, removed = self._remove(self._root, key)
        if removed:
            self._size -= 1
        return removed

    def _remove(self, node: Optional[_AvlNode], key: Any) -> Tuple[Optional[_AvlNode], bool]:
        if node is None:
            return None, False
        if key < node.key:
            node.left, removed = self._remove(node.left, key)
        elif node.key < key:
            node.right, removed = self._remove(node.right, key)
        else:
            removed = True
            if node.left is None:
                return node.right, True
            if node.right is None:
                return node.left, True
            # Two children: replace with the in-order successor.
            successor = node.right
            while successor.left is not None:
                successor = successor.left
            node.key = successor.key
            node.value = successor.value
            node.right, _ = self._remove(node.right, successor.key)
        return _rebalance(node), removed

    # -- invariant checking (used by property tests) ---------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if AVL/BST invariants are violated."""

        def check(node: Optional[_AvlNode]) -> Tuple[int, int]:
            """Return (height, size) while validating the subtree."""
            if node is None:
                return 0, 0
            left_height, left_size = check(node.left)
            right_height, right_size = check(node.right)
            assert abs(left_height - right_height) <= 1, "balance factor out of range"
            height = 1 + max(left_height, right_height)
            assert node.height == height, "stale cached height"
            if node.left is not None:
                assert node.left.key < node.key, "BST order violated (left)"
            if node.right is not None:
                assert node.key < node.right.key, "BST order violated (right)"
            return height, 1 + left_size + right_size

        _, size = check(self._root)
        assert size == self._size, f"size bookkeeping off: {size} != {self._size}"


class AvlTreeFilter(StatefulFilter):
    """SPI filter storing flow states in an :class:`AvlTree`."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._tree = AvlTree()

    def _get(self, key: FlowKey) -> Optional[FlowState]:
        return self._tree.get(key)

    def _insert(self, key: FlowKey, state: FlowState) -> None:
        self._tree.put(key, state)

    def _gc(self, now: float) -> int:
        # Full in-order traversal to find expired states, then delete each —
        # the O(n) garbage collection Table 1 charges to tree-based SPI.
        expired = [key for key, state in self._tree.items() if state.expires_at <= now]
        for key in expired:
            self._tree.remove(key)
        return len(expired)

    @property
    def num_flows(self) -> int:
        return len(self._tree)

    @property
    def tree(self) -> AvlTree:
        return self._tree

    def __repr__(self) -> str:
        return f"AvlTreeFilter(flows={self.num_flows}, timeout={self.idle_timeout})"
