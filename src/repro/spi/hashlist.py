"""Hash-bucket + linked-list SPI filter (the Linux conntrack shape).

Table 1's first column: flow states live in singly linked lists hanging off
a fixed-size bucket array indexed by a hash of the flow tuple.  Insert is
O(1) (push at head), lookup walks the chain (O(chain length) — O(n) worst
case), and garbage collection must traverse **every** kept state.

This is a faithful from-scratch reimplementation of the structure — not a
wrapper over ``dict`` — so the Table 1 micro-benchmarks measure the real
chain-walking and full-traversal costs.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.core.hashing import splitmix64
from repro.net.flow import FlowKey
from repro.spi.base import FlowState, StatefulFilter


class _Node:
    """One flow state in a bucket chain."""

    __slots__ = ("key", "state", "next")

    def __init__(self, key: FlowKey, state: FlowState, next_node: Optional["_Node"]):
        self.key = key
        self.state = state
        self.next = next_node


def _hash_flow_key(key: FlowKey) -> int:
    """64-bit hash of a flow key (protocol, addr, port, addr, port)."""
    proto, local_addr, local_port, remote_addr, remote_port = key
    lo = (local_addr << 32) | (local_port << 16) | proto
    hi = (remote_addr << 16) | remote_port
    return splitmix64(lo ^ splitmix64(hi))


class FlowHashTable:
    """The raw hash + linked-list store (usable standalone)."""

    def __init__(self, num_buckets: int = 16384):
        if num_buckets < 1:
            raise ValueError("need at least one bucket")
        self._buckets: List[Optional[_Node]] = [None] * num_buckets
        self._mask = None
        # Power-of-two bucket counts allow mask indexing; otherwise modulo.
        if num_buckets & (num_buckets - 1) == 0:
            self._mask = num_buckets - 1
        self._num_buckets = num_buckets
        self._size = 0

    def _bucket_index(self, key: FlowKey) -> int:
        h = _hash_flow_key(key)
        if self._mask is not None:
            return h & self._mask
        return h % self._num_buckets

    def get(self, key: FlowKey) -> Optional[FlowState]:
        node = self._buckets[self._bucket_index(key)]
        while node is not None:
            if node.key == key:
                return node.state
            node = node.next
        return None

    def insert(self, key: FlowKey, state: FlowState) -> None:
        """Insert a new state at the chain head (key must be absent)."""
        index = self._bucket_index(key)
        self._buckets[index] = _Node(key, state, self._buckets[index])
        self._size += 1

    def remove(self, key: FlowKey) -> bool:
        index = self._bucket_index(key)
        node = self._buckets[index]
        prev: Optional[_Node] = None
        while node is not None:
            if node.key == key:
                if prev is None:
                    self._buckets[index] = node.next
                else:
                    prev.next = node.next
                self._size -= 1
                return True
            prev, node = node, node.next
        return False

    def sweep_expired(self, now: float) -> int:
        """Unlink every state with ``expires_at <= now`` (full traversal)."""
        removed = 0
        for index in range(self._num_buckets):
            node = self._buckets[index]
            prev: Optional[_Node] = None
            while node is not None:
                if node.state.expires_at <= now:
                    if prev is None:
                        self._buckets[index] = node.next
                    else:
                        prev.next = node.next
                    removed += 1
                    node = node.next
                else:
                    prev, node = node, node.next
        self._size -= removed
        return removed

    def items(self) -> Iterator[Tuple[FlowKey, FlowState]]:
        for head in self._buckets:
            node = head
            while node is not None:
                yield node.key, node.state
                node = node.next

    def chain_lengths(self) -> List[int]:
        """Per-bucket chain lengths (for load-distribution tests)."""
        lengths = []
        for head in self._buckets:
            length = 0
            node = head
            while node is not None:
                length += 1
                node = node.next
            lengths.append(length)
        return lengths

    def __len__(self) -> int:
        return self._size


class HashListFilter(StatefulFilter):
    """SPI filter over :class:`FlowHashTable` (Linux conntrack style)."""

    def __init__(self, *args, num_buckets: int = 16384, **kwargs):
        super().__init__(*args, **kwargs)
        self._table = FlowHashTable(num_buckets)

    def _get(self, key: FlowKey) -> Optional[FlowState]:
        return self._table.get(key)

    def _insert(self, key: FlowKey, state: FlowState) -> None:
        self._table.insert(key, state)

    def _gc(self, now: float) -> int:
        return self._table.sweep_expired(now)

    @property
    def num_flows(self) -> int:
        return len(self._table)

    @property
    def table(self) -> FlowHashTable:
        return self._table

    def __repr__(self) -> str:
        return f"HashListFilter(flows={self.num_flows}, timeout={self.idle_timeout})"
