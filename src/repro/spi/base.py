"""Shared front end for the stateful packet inspection baselines.

The SPI semantics (Sections 2 / 4.3): the filter keeps per-flow state for
every *outgoing* connection; an incoming packet passes only if it matches an
existing, unexpired flow; idle flows are deleted after ``idle_timeout``
seconds by a periodic garbage collector that must visit kept states — the
O(n) cost Table 1 charges against SPI designs.

Unlike the bitmap filter, an SPI filter also tracks TCP connection teardown:
"the SPI filter knows the exact time of closed connections and can therefore
drop packets more precisely than the bitmap filter" (Section 4.3).  Once a
FIN or RST is seen on a flow, incoming packets arriving more than a short
close-handshake grace period later are dropped even though the state has not
yet been garbage-collected.

Concrete subclasses provide only the state store (dict, hash+linked-list, or
AVL tree); the traffic semantics live here so the three baselines are
behaviourally identical and differ only in data-structure costs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.filter_api import Decision, PacketFilterMixin
from repro.net.address import AddressSpace
from repro.net.flow import FlowKey, flow_key_of_packet
from repro.net.packet import Direction, Packet, TcpFlags

if TYPE_CHECKING:
    import numpy as np

    from repro.net.packet import PacketArray

#: The paper's Table 1 footnote (b): one flow state is ~30 bytes (addresses,
#: ports, connection state, timestamp, structure pointers).
FLOW_STATE_BYTES = 30

_CLOSING_FLAGS = int(TcpFlags.FIN | TcpFlags.RST)


class FlowState:
    """Mutable per-flow record: activity expiry plus close bookkeeping."""

    __slots__ = ("expires_at", "closed_at")

    def __init__(self, expires_at: float, closed_at: Optional[float] = None):
        self.expires_at = expires_at
        self.closed_at = closed_at

    def __repr__(self) -> str:
        return f"FlowState(expires_at={self.expires_at}, closed_at={self.closed_at})"


@dataclass
class SpiStats:
    """Counters accumulated by an SPI filter."""

    outgoing: int = 0
    incoming: int = 0
    incoming_passed: int = 0
    incoming_dropped: int = 0
    dropped_after_close: int = 0
    internal: int = 0
    transit: int = 0
    inserts: int = 0
    refreshes: int = 0
    gc_runs: int = 0
    gc_removed: int = 0
    peak_flows: int = 0

    @property
    def incoming_drop_rate(self) -> float:
        if not self.incoming:
            return 0.0
        return self.incoming_dropped / self.incoming

    def as_dict(self) -> dict:
        return {
            "outgoing": self.outgoing,
            "incoming": self.incoming,
            "incoming_passed": self.incoming_passed,
            "incoming_dropped": self.incoming_dropped,
            "dropped_after_close": self.dropped_after_close,
            "internal": self.internal,
            "transit": self.transit,
            "inserts": self.inserts,
            "refreshes": self.refreshes,
            "gc_runs": self.gc_runs,
            "gc_removed": self.gc_removed,
            "peak_flows": self.peak_flows,
        }


class StatefulFilter(PacketFilterMixin, abc.ABC):
    """Common SPI behaviour over an abstract flow-state store.

    Parameters
    ----------
    protected:
        The client address space this filter defends.
    idle_timeout:
        Seconds of inactivity after which a flow is eligible for deletion
        (default 240 s, the Windows TIME_WAIT value the paper uses).
    gc_interval:
        How often the garbage collector sweeps expired flows.
    close_grace:
        Seconds after the first FIN/RST during which incoming packets are
        still accepted (covers the close handshake); later arrivals on a
        closed flow are dropped.
    """

    def __init__(
        self,
        protected: AddressSpace,
        idle_timeout: float = 240.0,
        gc_interval: float = 10.0,
        close_grace: float = 2.0,
        start_time: float = 0.0,
    ):
        if idle_timeout <= 0 or gc_interval <= 0:
            raise ValueError("timeouts must be positive")
        if close_grace < 0:
            raise ValueError("close grace cannot be negative")
        self.protected = protected
        self.idle_timeout = idle_timeout
        self.gc_interval = gc_interval
        self.close_grace = close_grace
        self.stats = SpiStats()
        self._next_gc = start_time + gc_interval

    # -- store interface (implemented by subclasses) ---------------------------

    @abc.abstractmethod
    def _get(self, key: FlowKey) -> Optional[FlowState]:
        """Return the stored state for ``key``, or None."""

    @abc.abstractmethod
    def _insert(self, key: FlowKey, state: FlowState) -> None:
        """Insert a new state for a key not currently present."""

    @abc.abstractmethod
    def _gc(self, now: float) -> int:
        """Remove every state with ``expires_at <= now``; return the count."""

    @property
    @abc.abstractmethod
    def num_flows(self) -> int:
        """Number of states currently kept."""

    # -- shared semantics ----------------------------------------------------------

    @property
    def storage_bytes(self) -> int:
        """Estimated memory footprint at 30 bytes per kept state."""
        return self.num_flows * FLOW_STATE_BYTES

    @property
    def peak_storage_bytes(self) -> int:
        """Estimated footprint at the historical flow-count peak."""
        return self.stats.peak_flows * FLOW_STATE_BYTES

    def advance_to(self, ts: float) -> int:
        """Run garbage collection sweeps due at or before ``ts``."""
        removed = 0
        while self._next_gc <= ts:
            removed += self._gc(self._next_gc)
            self.stats.gc_runs += 1
            self._next_gc += self.gc_interval
        self.stats.gc_removed += removed
        return removed

    def process(self, pkt: Packet) -> Decision:
        """Filter one packet (outgoing refresh / incoming match-or-drop)."""
        self.advance_to(pkt.ts)
        direction = pkt.direction(self.protected)
        if direction is Direction.OUTGOING:
            key = flow_key_of_packet(pkt, outgoing=True)
            self._outgoing(pkt.ts, int(pkt.flags), key)
            return Decision.PASS
        if direction is Direction.INCOMING:
            key = flow_key_of_packet(pkt, outgoing=False)
            passed = self._incoming(pkt.ts, int(pkt.flags), key)
            return Decision.PASS if passed else Decision.DROP
        if direction is Direction.INTERNAL:
            self.stats.internal += 1
        else:
            self.stats.transit += 1
        return Decision.PASS

    # -- core flow logic -----------------------------------------------------------

    def _outgoing(self, ts: float, flags: int, key: FlowKey) -> None:
        stats = self.stats
        stats.outgoing += 1
        state = self._get(key)
        if state is None:
            state = FlowState(ts + self.idle_timeout)
            self._insert(key, state)
            stats.inserts += 1
            flows = self.num_flows
            if flows > stats.peak_flows:
                stats.peak_flows = flows
        else:
            state.expires_at = ts + self.idle_timeout
            stats.refreshes += 1
        if flags & _CLOSING_FLAGS and state.closed_at is None:
            state.closed_at = ts

    def _incoming(self, ts: float, flags: int, key: FlowKey) -> bool:
        stats = self.stats
        stats.incoming += 1
        state = self._get(key)
        if state is None or state.expires_at <= ts:
            stats.incoming_dropped += 1
            return False
        if state.closed_at is not None and ts > state.closed_at + self.close_grace:
            # Precise post-close drop — the SPI advantage of Section 4.3.
            stats.incoming_dropped += 1
            stats.dropped_after_close += 1
            return False
        state.expires_at = ts + self.idle_timeout
        stats.refreshes += 1
        stats.incoming_passed += 1
        if flags & _CLOSING_FLAGS and state.closed_at is None:
            state.closed_at = ts
        return True

    # -- batch path ------------------------------------------------------------

    def process_batch(self, packets: "PacketArray",
                      exact: bool = True) -> "np.ndarray":
        """Filter a time-sorted batch; returns a boolean PASS mask.

        Semantically identical to calling :meth:`process` per packet, but
        works on plain columns to avoid per-packet object construction.
        SPI filters have no approximate path, so ``exact`` is accepted for
        :class:`~repro.core.filter_api.PacketFilter` conformance and ignored.
        """
        import numpy as np  # local import keeps base importable without numpy

        n = len(packets)
        verdict = np.ones(n, dtype=bool)
        if not n:
            return verdict
        directions = packets.directions(self.protected)
        columns = zip(
            packets.ts.tolist(),
            directions.tolist(),
            packets.flags.tolist(),
            packets.proto.tolist(),
            packets.src.tolist(),
            packets.sport.tolist(),
            packets.dst.tolist(),
            packets.dport.tolist(),
        )
        stats = self.stats
        for i, (ts, direction, flags, proto, src, sport, dst, dport) in enumerate(columns):
            while self._next_gc <= ts:
                stats.gc_removed += self._gc(self._next_gc)
                stats.gc_runs += 1
                self._next_gc += self.gc_interval
            if direction == 0:  # outgoing
                self._outgoing(ts, flags, (proto, src, sport, dst, dport))
            elif direction == 1:  # incoming
                if not self._incoming(ts, flags, (proto, dst, dport, src, sport)):
                    verdict[i] = False
            elif direction == 3:
                stats.internal += 1
            else:
                stats.transit += 1
        return verdict
