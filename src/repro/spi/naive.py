"""The "naive solution" of Section 3.3: exact tuples with per-tuple timers.

A dict mapping each outgoing flow tuple to its state.  Semantically this is
the ideal the bitmap approximates — no hash collisions, exact expiry — and
tests use it as the ground-truth oracle: every genuine reply the naive
filter passes inside the bitmap's guaranteed window must also pass the
bitmap (the bitmap may additionally pass false negatives).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.net.flow import FlowKey
from repro.spi.base import FlowState, StatefulFilter


class NaiveExactFilter(StatefulFilter):
    """Dict-backed exact-tuple stateful filter."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._table: Dict[FlowKey, FlowState] = {}

    def _get(self, key: FlowKey) -> Optional[FlowState]:
        return self._table.get(key)

    def _insert(self, key: FlowKey, state: FlowState) -> None:
        self._table[key] = state

    def _gc(self, now: float) -> int:
        expired = [key for key, state in self._table.items() if state.expires_at <= now]
        for key in expired:
            del self._table[key]
        return len(expired)

    @property
    def num_flows(self) -> int:
        return len(self._table)

    def __repr__(self) -> str:
        return f"NaiveExactFilter(flows={self.num_flows}, timeout={self.idle_timeout})"
