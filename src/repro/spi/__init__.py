"""Stateful packet inspection (SPI) baselines the paper compares against.

Three implementations of the same per-flow-state filtering semantics:

- :class:`~repro.spi.naive.NaiveExactFilter` — a dict of exact tuples with
  per-tuple timers; the "naive solution" of Section 3.3 and the semantic
  reference the bitmap filter approximates.
- :class:`~repro.spi.hashlist.HashListFilter` — hash buckets + linked lists,
  the structure used by Linux netfilter conntrack (Table 1, column 1).
- :class:`~repro.spi.avltree.AvlTreeFilter` — an AVL tree keyed by flow
  tuple (Table 1, column 2).

All share the :class:`~repro.spi.base.StatefulFilter` front end: outgoing
packets create/refresh flow state, incoming packets pass only if matching
state exists, and idle states are garbage-collected after a timeout
(default 240 s — the Windows TIME_WAIT value used in Section 4.3).
"""

from repro.spi.avltree import AvlTree, AvlTreeFilter
from repro.spi.base import FLOW_STATE_BYTES, SpiStats, StatefulFilter
from repro.spi.hashlist import HashListFilter
from repro.spi.naive import NaiveExactFilter

__all__ = [
    "AvlTree",
    "AvlTreeFilter",
    "FLOW_STATE_BYTES",
    "SpiStats",
    "StatefulFilter",
    "HashListFilter",
    "NaiveExactFilter",
]
