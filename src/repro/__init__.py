"""repro — reproduction of the DSN 2006 bitmap filter paper.

"Mitigating Active Attacks Towards Client Networks Using the Bitmap Filter"
(Chun-Ying Huang, Kuan-Ta Chen, Chin-Laung Lei).

The package is organized bottom-up:

- :mod:`repro.net` — addresses, packets, flows (shared vocabulary).
- :mod:`repro.core` — the {k x n}-bitmap filter, its analytical model,
  adaptive packet dropping, and hole punching (the paper's contribution).
- :mod:`repro.spi` — stateful packet inspection baselines (naive exact,
  Linux-style hash+linked-list, AVL tree).
- :mod:`repro.traffic` — the synthetic client-network workload calibrated to
  the paper's published trace statistics.
- :mod:`repro.attacks` — random scanners, floods, worms, insider attacks.
- :mod:`repro.sim` — the trace-driven simulation engine, routers, topology.
- :mod:`repro.analysis` — lifetime/delay extraction and reporting.

Quickstart::

    from repro import BitmapFilter, BitmapFilterConfig, AddressSpace

    protected = AddressSpace.class_c_block("192.168.0.0", 6)
    filt = BitmapFilter(BitmapFilterConfig.paper_default(), protected)
    verdict = filt.process(packet)     # Decision.PASS or Decision.DROP
"""

from repro.core import (
    AdaptiveDroppingPolicy,
    BandwidthIndicator,
    Bitmap,
    BitmapFilter,
    BitmapFilterConfig,
    BitmapParameters,
    BitVector,
    Decision,
    HashFamily,
    HolePuncher,
    PacketRatioIndicator,
    ParameterAdvisor,
)
from repro.core.close_aware import CloseAwareBitmapFilter, CloseAwareConfig
from repro.core.persistence import load_filter, save_filter
from repro.net.pcap import read_pcap, write_pcap
from repro.traffic.generator import generate_client_trace
from repro.traffic.trace import Trace
from repro.net import (
    AddressSpace,
    AddressTuple,
    Direction,
    IPv4Address,
    IPv4Network,
    Packet,
    PacketArray,
    TcpFlags,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveDroppingPolicy",
    "BandwidthIndicator",
    "Bitmap",
    "BitmapFilter",
    "BitmapFilterConfig",
    "BitmapParameters",
    "BitVector",
    "Decision",
    "HashFamily",
    "HolePuncher",
    "PacketRatioIndicator",
    "ParameterAdvisor",
    "AddressSpace",
    "AddressTuple",
    "Direction",
    "IPv4Address",
    "IPv4Network",
    "Packet",
    "PacketArray",
    "TcpFlags",
    "CloseAwareBitmapFilter",
    "CloseAwareConfig",
    "load_filter",
    "save_filter",
    "read_pcap",
    "write_pcap",
    "generate_client_trace",
    "Trace",
    "__version__",
]
