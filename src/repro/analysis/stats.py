"""Histogram, CDF, and percentile helpers shared by the figure pipelines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Histogram:
    """A binned histogram with explicit edges."""

    edges: np.ndarray   # length B+1
    counts: np.ndarray  # length B

    @classmethod
    def of(cls, values: Sequence[float], bins: int = 100, log: bool = False,
           value_range: Tuple[float, float] = None) -> "Histogram":
        """Histogram of ``values``; ``log=True`` uses log-spaced bins."""
        arr = np.asarray(values, dtype=float)
        if value_range is None:
            lo = float(arr.min()) if len(arr) else 0.0
            hi = float(arr.max()) if len(arr) else 1.0
        else:
            lo, hi = value_range
        if log:
            lo = max(lo, 1e-6)
            edges = np.logspace(np.log10(lo), np.log10(max(hi, lo * 10)), bins + 1)
        else:
            edges = np.linspace(lo, hi, bins + 1)
        counts, edges = np.histogram(arr, bins=edges)
        return cls(edges=edges, counts=counts)

    @property
    def centers(self) -> np.ndarray:
        return (self.edges[:-1] + self.edges[1:]) / 2.0

    def peak_bins(self, min_prominence: float = 2.0) -> List[int]:
        """Indices of local maxima at least ``min_prominence`` x their neighbours.

        A deliberately simple peak finder, sufficient for locating the
        Figure 2b port-reuse comb in tests.
        """
        peaks = []
        counts = self.counts.astype(float)
        for i in range(1, len(counts) - 1):
            if counts[i] <= 0:
                continue
            left, right = counts[i - 1], counts[i + 1]
            neighbour = max(left, right, 1.0)
            if counts[i] >= left and counts[i] >= right and counts[i] >= min_prominence * max(
                min(left, right), 1.0
            ):
                peaks.append(i)
        return peaks


@dataclass(frozen=True)
class Cdf:
    """An empirical CDF with percentile queries."""

    sorted_values: np.ndarray

    @classmethod
    def of(cls, values: Sequence[float]) -> "Cdf":
        arr = np.sort(np.asarray(values, dtype=float))
        if not len(arr):
            raise ValueError("cannot build a CDF of no data")
        return cls(sorted_values=arr)

    def percentile(self, q: float) -> float:
        """Value at percentile ``q`` (0-100, linear interpolation)."""
        return float(np.percentile(self.sorted_values, q))

    def fraction_below(self, threshold: float) -> float:
        """P(X <= threshold)."""
        return float(np.searchsorted(self.sorted_values, threshold, side="right")) / len(
            self.sorted_values
        )

    def series(self, points: int = 200) -> Tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) pairs for plotting/printing."""
        n = len(self.sorted_values)
        idx = np.linspace(0, n - 1, min(points, n)).astype(int)
        x = self.sorted_values[idx]
        y = (idx + 1) / n
        return x, y

    def __len__(self) -> int:
        return len(self.sorted_values)


def summarize_percentiles(
    values: Sequence[float], qs: Sequence[float] = (50, 90, 95, 99)
) -> Dict[float, float]:
    """Percentile table of a sample (q -> value)."""
    cdf = Cdf.of(values)
    return {q: cdf.percentile(q) for q in qs}


def per_second_series(ts: np.ndarray, duration: float = None) -> Tuple[np.ndarray, np.ndarray]:
    """Bucket timestamps into 1-second bins; returns (bin starts, counts)."""
    ts = np.asarray(ts, dtype=float)
    if duration is None:
        duration = float(ts.max()) + 1.0 if len(ts) else 1.0
    bins = np.arange(0.0, np.ceil(duration) + 1.0, 1.0)
    counts, edges = np.histogram(ts, bins=bins)
    return edges[:-1], counts
