"""Out-in packet delay measurement — the Section 3.2 procedure (Fig. 2b/2c).

For each *outgoing* packet the router stores (or refreshes) its address
tuple with the current timestamp.  For each *incoming* packet whose inverse
tuple is stored, the delay ``t - t0`` since the tuple's last refresh is
recorded.  Tuples idle longer than the expiry timer ``Te`` are deleted so
port reuse does not register absurd delays (the paper uses Te = 600 s for
this measurement, which leaves the 30/60-second reuse comb visible).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.net.address import AddressSpace
from repro.net.packet import Packet, PacketArray

_TupleKey = Tuple[int, int, int, int, int]


class OutInDelayExtractor:
    """Streaming out-in delay measurement with expiry timer Te."""

    def __init__(self, protected: AddressSpace, expiry_timer: float = 600.0):
        if expiry_timer <= 0:
            raise ValueError("expiry timer must be positive")
        self.protected = protected
        self.expiry_timer = expiry_timer
        self._table: Dict[_TupleKey, float] = {}
        self.delays: List[float] = []

    def observe(self, pkt: Packet) -> None:
        src_in = self.protected.contains_int(pkt.src)
        dst_in = self.protected.contains_int(pkt.dst)
        if src_in == dst_in:
            return  # internal or transit: no out-in relationship
        self._observe_fields(pkt.ts, src_in, pkt.proto, pkt.src, pkt.sport, pkt.dst, pkt.dport)

    def _observe_fields(
        self, ts: float, outgoing: bool, proto: int, src: int, sport: int, dst: int, dport: int
    ) -> None:
        if outgoing:
            # Store / refresh the outgoing tuple's timestamp.
            self._table[(proto, src, sport, dst, dport)] = ts
            return
        key = (proto, dst, dport, src, sport)  # inverse of the incoming tuple
        t0 = self._table.get(key)
        if t0 is None:
            return
        delay = ts - t0
        if delay > self.expiry_timer:
            # Expired: drop the stale tuple instead of recording the delay.
            del self._table[key]
            return
        self.delays.append(delay)

    def observe_array(self, packets: PacketArray) -> None:
        directions = packets.directions(self.protected)
        columns = zip(
            packets.ts.tolist(),
            directions.tolist(),
            packets.proto.tolist(),
            packets.src.tolist(),
            packets.sport.tolist(),
            packets.dst.tolist(),
            packets.dport.tolist(),
        )
        for ts, direction, proto, src, sport, dst, dport in columns:
            if direction == 0:       # outgoing
                self._observe_fields(ts, True, proto, src, sport, dst, dport)
            elif direction == 1:     # incoming
                self._observe_fields(ts, False, proto, src, sport, dst, dport)

    @property
    def stored_tuples(self) -> int:
        return len(self._table)


def out_in_delays(
    packets: PacketArray, protected: AddressSpace, expiry_timer: float = 600.0
) -> List[float]:
    """All out-in packet delays in a time-sorted trace (Te-limited)."""
    extractor = OutInDelayExtractor(protected, expiry_timer)
    extractor.observe_array(packets)
    return extractor.delays
