"""Trace analysis: the measurements behind Figure 2 and the result tables.

- :mod:`repro.analysis.lifetime` — TCP connection lifetimes (SYN to FIN/RST).
- :mod:`repro.analysis.delay` — out-in packet delays per the Section 3.2
  procedure (tuple table with expiry timer Te).
- :mod:`repro.analysis.stats` — histogram / CDF / percentile helpers.
- :mod:`repro.analysis.report` — ASCII renderers for paper-style tables.
"""

from repro.analysis.delay import OutInDelayExtractor, out_in_delays
from repro.analysis.lifetime import ConnectionLifetimeExtractor, connection_lifetimes
from repro.analysis.stats import Cdf, Histogram, summarize_percentiles

__all__ = [
    "OutInDelayExtractor",
    "out_in_delays",
    "ConnectionLifetimeExtractor",
    "connection_lifetimes",
    "Cdf",
    "Histogram",
    "summarize_percentiles",
]
