"""Traffic composition: break a trace down by application.

Classifies packets by transport protocol and well-known server port (the
port on whichever side is the remote/server end of the flow), yielding the
per-application packet and session shares — the view an operator uses to
sanity-check a capture before sizing a filter, and the cross-check that the
synthetic workload's mix matches its configuration.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.net.address import AddressSpace
from repro.net.packet import PacketArray
from repro.net.protocols import IPPROTO_TCP, IPPROTO_UDP, WELL_KNOWN_SERVICES

#: (protocol, port) -> application name, derived from the service registry.
_PORT_APPS: Dict[Tuple[int, int], str] = {
    (svc.protocol, svc.port): name for name, svc in WELL_KNOWN_SERVICES.items()
}
# A few common alternates used by the workload generator.
_PORT_APPS[(IPPROTO_TCP, 8080)] = "http"


@dataclass(frozen=True)
class AppShare:
    """One application's share of a trace."""

    name: str
    packets: int
    bytes: int
    fraction: float


@dataclass
class CompositionReport:
    shares: List[AppShare]
    total_packets: int

    def fraction_of(self, name: str) -> float:
        for share in self.shares:
            if share.name == name:
                return share.fraction
        return 0.0

    def top(self, n: int = 5) -> List[AppShare]:
        return self.shares[:n]

    def describe(self) -> str:
        lines = [f"{'application':<14}{'packets':>10}{'share':>9}{'bytes':>12}"]
        for share in self.shares:
            lines.append(f"{share.name:<14}{share.packets:>10}"
                         f"{share.fraction * 100:>8.2f}%{share.bytes:>12}")
        return "\n".join(lines)


def _server_ports(packets: PacketArray, protected: AddressSpace) -> np.ndarray:
    """The remote-side port of each packet (the 'service' port).

    Outgoing packets' service port is their dport; incoming packets' is
    their sport.  Transit/internal packets use dport.
    """
    directions = packets.directions(protected)
    incoming = directions == 1
    return np.where(incoming, packets.sport, packets.dport)


def composition(packets: PacketArray, protected: AddressSpace) -> CompositionReport:
    """Per-application packet/byte shares of a trace."""
    n = len(packets)
    if not n:
        return CompositionReport(shares=[], total_packets=0)
    ports = _server_ports(packets, protected)
    protos = packets.proto
    sizes = packets.size

    counts: Counter = Counter()
    byte_counts: Counter = Counter()
    for proto, port, size in zip(protos.tolist(), ports.tolist(), sizes.tolist()):
        app = _PORT_APPS.get((proto, port))
        if app is None:
            app = "other-tcp" if proto == IPPROTO_TCP else (
                "other-udp" if proto == IPPROTO_UDP else "other")
        counts[app] += 1
        byte_counts[app] += size

    shares = [
        AppShare(name=name, packets=count, bytes=byte_counts[name],
                 fraction=count / n)
        for name, count in counts.most_common()
    ]
    return CompositionReport(shares=shares, total_packets=n)
