"""ASCII renderers for paper-style tables and series.

The benchmark harness prints its results through these helpers so that every
regenerated table/figure appears in the same rows-and-columns shape the
paper uses (see EXPERIMENTS.md for side-by-side numbers).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(separator)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(name: str, pairs: Sequence[Tuple[float, float]],
                  x_label: str = "x", y_label: str = "y", max_rows: int = 25) -> str:
    """A (possibly downsampled) two-column series printout."""
    lines = [f"{name}  ({x_label} -> {y_label})"]
    step = max(1, len(pairs) // max_rows)
    for i in range(0, len(pairs), step):
        x, y = pairs[i]
        lines.append(f"  {x:>12.4f}  {y:>12.4f}")
    return "\n".join(lines)


def render_comparison(title: str, paper: Dict[str, object],
                      measured: Dict[str, object]) -> str:
    """Paper-vs-measured key/value table (the EXPERIMENTS.md shape)."""
    keys = list(paper.keys()) + [k for k in measured if k not in paper]
    rows = [(key, paper.get(key, "-"), measured.get(key, "-")) for key in keys]
    return render_table(["metric", "paper", "measured"], rows, title=title)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e6):
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)
