"""TCP connection lifetime extraction (Figure 2a).

The paper counts a connection's lifetime "from the appearance of the first
TCP-SYN packet to the appearance of a TCP-FIN or TCP-RST packet".  The
extractor below does exactly that over a trace: it records the first pure
SYN per flow (both directions collapse to one canonical key) and emits a
lifetime when the first FIN or RST of the same flow appears.
"""

from __future__ import annotations

from typing import Dict, List

from repro.net.address import AddressSpace
from repro.net.flow import FlowKey
from repro.net.packet import Packet, PacketArray, TcpFlags
from repro.net.protocols import IPPROTO_TCP

_FIN = int(TcpFlags.FIN)
_SYN = int(TcpFlags.SYN)
_RST = int(TcpFlags.RST)
_ACK = int(TcpFlags.ACK)


def _canonical_key(proto: int, a_addr: int, a_port: int, b_addr: int, b_port: int) -> FlowKey:
    """Direction-independent flow key (smaller endpoint first)."""
    if (a_addr, a_port) <= (b_addr, b_port):
        return (proto, a_addr, a_port, b_addr, b_port)
    return (proto, b_addr, b_port, a_addr, a_port)


class ConnectionLifetimeExtractor:
    """Streaming SYN-to-FIN/RST lifetime measurement."""

    def __init__(self):
        self._open: Dict[FlowKey, float] = {}
        self.lifetimes: List[float] = []

    def observe(self, pkt: Packet) -> None:
        if pkt.proto != IPPROTO_TCP:
            return
        self.observe_fields(pkt.ts, int(pkt.flags), pkt.src, pkt.sport, pkt.dst, pkt.dport)

    def observe_fields(
        self, ts: float, flags: int, src: int, sport: int, dst: int, dport: int
    ) -> None:
        """Tuple-level fast path used when iterating a PacketArray."""
        is_syn = flags & _SYN and not flags & _ACK
        closes = flags & (_FIN | _RST)
        if not (is_syn or closes):
            return
        key = _canonical_key(IPPROTO_TCP, src, sport, dst, dport)
        if is_syn:
            # Only the *first* SYN starts the clock (retransmits ignored).
            self._open.setdefault(key, ts)
        elif closes:
            start = self._open.pop(key, None)
            if start is not None:
                self.lifetimes.append(ts - start)

    def observe_array(self, packets: PacketArray) -> None:
        """Vector-extract the interesting packets, then stream them."""
        flags = packets.flags
        proto = packets.proto
        interesting = (proto == IPPROTO_TCP) & (
            ((flags & _SYN) != 0) | ((flags & (_FIN | _RST)) != 0)
        )
        sub = packets[interesting]
        columns = zip(
            sub.ts.tolist(),
            sub.flags.tolist(),
            sub.src.tolist(),
            sub.sport.tolist(),
            sub.dst.tolist(),
            sub.dport.tolist(),
        )
        for ts, f, src, sport, dst, dport in columns:
            self.observe_fields(ts, f, src, sport, dst, dport)

    @property
    def open_connections(self) -> int:
        """Connections whose close was never observed."""
        return len(self._open)


def connection_lifetimes(packets: PacketArray) -> List[float]:
    """All measurable SYN-to-FIN/RST lifetimes in a time-sorted trace."""
    extractor = ConnectionLifetimeExtractor()
    extractor.observe_array(packets)
    return extractor.lifetimes


def active_connection_counts(
    packets: PacketArray, protected: AddressSpace, window: float
) -> List[int]:
    """Distinct outgoing flow tuples per ``window``-second interval.

    This is the paper's "active connections inside a time unit Te" — the c
    of Equation (2): Section 4.1 reports ~15K for Te = 20 s on their trace.
    """
    directions = packets.directions(protected)
    outgoing = packets[directions == 0]
    counts: List[int] = []
    if not len(outgoing):
        return counts
    start = float(outgoing.ts[0])
    end = float(outgoing.ts[-1])
    t = start
    while t < end:
        chunk = outgoing.time_slice(t, t + window)
        tuples = set(
            zip(
                chunk.proto.tolist(),
                chunk.src.tolist(),
                chunk.sport.tolist(),
                chunk.dst.tolist(),
            )
        )
        counts.append(len(tuples))
        t += window
    return counts
