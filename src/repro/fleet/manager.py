"""Supervise a local fleet of ``repro serve`` daemon subprocesses.

:class:`FleetManager` spawns N daemons on ephemeral ports (waiting for
each one's machine-readable ``REPRO-SERVE READY`` line), hands their
:class:`~repro.fleet.router.NodeSpec` addresses to a router, and drives
the failure scenarios the fleet tests and the chaos harness need:

- :meth:`kill` — SIGKILL, the abrupt death a circuit breaker exists for.
- :meth:`stop` — SIGTERM graceful drain; the daemon writes its final
  snapshot before exiting.
- :meth:`restart` — relaunch a node (optionally ``--restore`` from a
  snapshot) on fresh ephemeral ports; the node keeps its *name*, so its
  ring share is unchanged — pass the new spec to
  :meth:`FleetRouter.update_node`.
- :meth:`warm_restart` — the snapshot handoff: fetch the node's live
  ``/snapshot`` over HTTP (or fall back to its final snapshot file after
  a graceful stop), stop it, and restart it restored — remapped flows
  keep their marked bits instead of cold-starting into a warm-up grace
  window.

Every daemon runs ``--clock packet`` by default so fleet verdicts are
deterministic and comparable to offline replay.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import threading
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.fleet.router import NodeSpec

__all__ = ["FleetManager", "ManagedNode"]

_READY_PREFIX = "REPRO-SERVE READY "


@dataclass
class ManagedNode:
    """One supervised daemon: its spec, process, and log tail."""

    spec: NodeSpec
    process: subprocess.Popen
    snapshot_path: Path
    log: List[str] = field(default_factory=list)
    _reader: Optional[threading.Thread] = None

    @property
    def alive(self) -> bool:
        return self.process.poll() is None


class FleetManager:
    """Spawn, kill, and warm-restart a local daemon fleet (see module
    docstring)."""

    def __init__(self, protected: str, *,
                 size: int = 3,
                 workdir: str,
                 clock: str = "packet",
                 fail_policy: str = "fail_closed",
                 order: int = 20,
                 num_vectors: int = 4,
                 num_hashes: int = 3,
                 rotation_interval: float = 5.0,
                 hash_seed: int = 0x5EED,
                 filter_kind: str = "bitmap",
                 workers: int = 0,
                 backend: Optional[str] = None,
                 ready_timeout: float = 30.0,
                 python: Optional[str] = None):
        if size < 1:
            raise ValueError("fleet size must be at least 1")
        if backend not in (None, "serial", "sharded", "shared"):
            raise ValueError(f"unknown backend {backend!r}")
        if filter_kind not in ("bitmap", "hybrid"):
            raise ValueError(f"unknown filter kind {filter_kind!r}")
        self.protected = protected
        self.size = size
        self.workdir = Path(workdir)
        self.clock = clock
        self.fail_policy = fail_policy
        self.filter_args = [
            "--order", str(order), "--k", str(num_vectors),
            "--m", str(num_hashes), "--dt", str(rotation_interval),
            "--hash-seed", str(hash_seed), "--filter", filter_kind,
        ]
        self.workers = workers
        self.backend = backend
        self.ready_timeout = ready_timeout
        self.python = python if python is not None else sys.executable
        self._nodes: Dict[str, ManagedNode] = {}

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> List[NodeSpec]:
        """Spawn the whole fleet; returns each node's spec, ready to route."""
        if self._nodes:
            raise RuntimeError("fleet already started")
        self.workdir.mkdir(parents=True, exist_ok=True)
        for index in range(self.size):
            self._spawn(f"node{index}")
        return self.specs()

    def specs(self) -> List[NodeSpec]:
        return [node.spec for node in self._nodes.values()]

    def node(self, name: str) -> ManagedNode:
        return self._nodes[name]

    def _spawn(self, name: str,
               restore_path: Optional[Path] = None) -> NodeSpec:
        snapshot_path = self.workdir / f"{name}.final.npz"
        command = [
            self.python, "-m", "repro", "serve",
            "--protected", self.protected,
            "--port", "0", "--http-port", "0",
            "--clock", self.clock,
            "--fail-policy", self.fail_policy,
            "--snapshot", str(snapshot_path),
            *self.filter_args,
        ]
        if self.workers > 1:
            command += ["--workers", str(self.workers)]
        if self.backend is not None:
            command += ["--backend", self.backend]
        if restore_path is not None:
            command += ["--restore", str(restore_path)]
        process = subprocess.Popen(
            command, text=True,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        spec = self._await_ready(name, process)
        node = ManagedNode(spec=spec, process=process,
                           snapshot_path=snapshot_path)
        node._reader = threading.Thread(
            target=self._drain_stdout, args=(node,),
            name=f"repro-fleet-log-{name}", daemon=True)
        node._reader.start()
        self._nodes[name] = node
        return spec

    def _await_ready(self, name: str,
                     process: subprocess.Popen) -> NodeSpec:
        timer = threading.Timer(self.ready_timeout, process.kill)
        timer.start()
        try:
            while True:
                line = process.stdout.readline()
                if not line:
                    raise RuntimeError(
                        f"daemon {name} exited before READY "
                        f"(rc={process.poll()})")
                if line.startswith(_READY_PREFIX):
                    info = json.loads(line[len(_READY_PREFIX):])
                    break
        finally:
            timer.cancel()
        host, port = info["data"]
        http_url = None
        if info.get("http"):
            http_host, http_port = info["http"]
            http_url = f"http://{http_host}:{http_port}"
        return NodeSpec(name=name, host=host, port=port, http_url=http_url)

    @staticmethod
    def _drain_stdout(node: ManagedNode) -> None:
        try:
            for line in node.process.stdout:
                node.log.append(line.rstrip("\n"))
        except ValueError:
            pass  # stdout closed underneath us at shutdown

    # -- failure injection ----------------------------------------------------

    def kill(self, name: str) -> None:
        """SIGKILL: the abrupt death the circuit breaker exists for."""
        node = self._nodes[name]
        node.process.kill()
        node.process.wait(timeout=30)

    def stop(self, name: str, timeout: float = 30.0) -> int:
        """SIGTERM graceful drain; the daemon writes its final snapshot."""
        node = self._nodes[name]
        if node.alive:
            node.process.send_signal(signal.SIGTERM)
        return node.process.wait(timeout=timeout)

    def restart(self, name: str,
                restore_path: Optional[Path] = None) -> NodeSpec:
        """Relaunch ``name`` on fresh ephemeral ports (same ring share).

        The previous process must already be dead (killed or stopped).
        Pass the returned spec to :meth:`FleetRouter.update_node`.
        """
        node = self._nodes[name]
        if node.alive:
            raise RuntimeError(f"node {name} still running; kill/stop first")
        del self._nodes[name]
        return self._spawn(name, restore_path=restore_path)

    # -- snapshot handoff -----------------------------------------------------

    def fetch_snapshot(self, name: str, *, timeout: float = 30.0) -> bytes:
        """The node's live checksummed snapshot over its HTTP endpoint."""
        node = self._nodes[name]
        if not node.spec.http_url:
            raise ValueError(f"node {name} has no HTTP endpoint")
        url = node.spec.http_url.rstrip("/") + "/snapshot"
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.read()

    def warm_restart(self, name: str) -> NodeSpec:
        """Snapshot → stop → restart ``--restore``: state-preserving churn.

        Fetches the live snapshot first (so the handoff works even if the
        graceful drain later fails to write one), stops the daemon, and
        relaunches it warm — its flows keep their marked bits.
        """
        handoff = self.workdir / f"{name}.handoff.npz"
        handoff.write_bytes(self.fetch_snapshot(name))
        self.stop(name)
        return self.restart(name, restore_path=handoff)

    # -- teardown -------------------------------------------------------------

    def shutdown(self, timeout: float = 30.0) -> Dict[str, int]:
        """Gracefully stop every surviving node; returns exit codes."""
        codes: Dict[str, int] = {}
        for name, node in list(self._nodes.items()):
            if node.alive:
                node.process.send_signal(signal.SIGTERM)
        for name, node in list(self._nodes.items()):
            try:
                codes[name] = node.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                node.process.kill()
                codes[name] = node.process.wait(timeout=10)
        self._nodes.clear()
        return codes

    def __enter__(self) -> "FleetManager":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
