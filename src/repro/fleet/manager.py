"""Supervise a local fleet of ``repro serve`` daemon subprocesses.

:class:`FleetManager` spawns N daemons on ephemeral ports (waiting for
each one's machine-readable ``REPRO-SERVE READY`` line), hands their
:class:`~repro.fleet.router.NodeSpec` addresses to a router, and drives
the failure scenarios the fleet tests and the chaos harness need:

- :meth:`kill` — SIGKILL, the abrupt death a circuit breaker exists for.
- :meth:`stop` — SIGTERM graceful drain; the daemon writes its final
  snapshot before exiting.
- :meth:`restart` — relaunch a node (optionally ``--restore`` from a
  snapshot) on fresh ephemeral ports; the node keeps its *name*, so its
  ring share is unchanged — pass the new spec to
  :meth:`FleetRouter.update_node`.
- :meth:`warm_restart` — the snapshot handoff: publish the node's live
  ``/snapshot`` into the shared :class:`SnapshotStore`, stop it, and
  restart it restored — remapped flows keep their marked bits instead
  of cold-starting into a warm-up grace window.

On top of those, two zero-downtime control-plane operations:

- :meth:`rolling_reconfig` — change filter geometry across the whole
  fleet with no restart and no verdict divergence.  The manager picks
  one fleet-wide rebuild boundary (a rotation-aligned future timestamp),
  writes each node's reload file with that boundary, and SIGHUPs nodes
  one at a time, confirming each node's ``/healthz`` echoes the pending
  geometry before touching the next.  Every node — and the offline
  verification twin — rebuilds at the *same* packet timestamp, which is
  what keeps fleet verdicts byte-identical to offline replay through a
  live geometry change.
- :meth:`add_node` — scale out under load without serving cold: compute
  the keyspace share the arrival steals from the ring
  (:meth:`HashRing.stolen_share`), pre-warm it from the fleet's most
  recent :class:`SnapshotStore` state, and only then flip routing.

Every daemon runs ``--clock packet`` by default so fleet verdicts are
deterministic and comparable to offline replay.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import threading
import time
import urllib.request
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, TYPE_CHECKING

import numpy as np

from repro.core.bitmap_filter import FilterConfig
from repro.fleet.router import NodeSpec
from repro.fleet.store import SnapshotRef, SnapshotStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fleet.router import FleetRouter

__all__ = ["AddNodeReport", "FleetManager", "ManagedNode", "ReconfigReport",
           "RollingReconfigError"]

_READY_PREFIX = "REPRO-SERVE READY "

# Geometry fields echoed by the daemon's /healthz (both the live filter's
# and, mid-reconfig, the pending one's) — the per-node confirmation
# rolling_reconfig waits on.
_GEOMETRY_FIELDS = ("order", "num_vectors", "num_hashes",
                    "rotation_interval", "seed", "layers")


class RollingReconfigError(RuntimeError):
    """A rolling reconfig stopped before reaching every node.

    ``node`` is the first node that could not be reconfigured (dead, or
    never echoed the pending geometry); ``completed`` lists the nodes
    already carrying the new pending config.  Nodes *after* the failed
    one were never touched — the fleet stays serviceable on its current
    geometry, and the roll can be retried after the node is repaired.
    """

    def __init__(self, message: str, *, node: str,
                 completed: List[str]):
        super().__init__(message)
        self.node = node
        self.completed = list(completed)


@dataclass(frozen=True)
class ReconfigReport:
    """What a successful rolling reconfig did."""

    rebuild_at: float          # the fleet-wide rebuild boundary (packet time)
    nodes: List[str]           # nodes reconfigured, in roll order
    config: FilterConfig       # the geometry now pending fleet-wide


@dataclass(frozen=True)
class AddNodeReport:
    """What a ring-aware scale-out did."""

    spec: NodeSpec                        # the new node, ready to route
    stolen: Dict[str, int]                # keys stolen per donor node
    restored_from: Optional[SnapshotRef]  # None = cold start (empty store)

    @property
    def warm(self) -> bool:
        return self.restored_from is not None


@dataclass
class ManagedNode:
    """One supervised daemon: its spec, process, and log tail."""

    spec: NodeSpec
    process: subprocess.Popen
    snapshot_path: Path
    log: List[str] = field(default_factory=list)
    _reader: Optional[threading.Thread] = None

    @property
    def alive(self) -> bool:
        return self.process.poll() is None


class FleetManager:
    """Spawn, kill, warm-restart, reconfigure, and scale a local daemon
    fleet (see module docstring)."""

    def __init__(self, protected: str, *,
                 size: int = 3,
                 workdir: str,
                 clock: str = "packet",
                 fail_policy: str = "fail_closed",
                 order: int = 20,
                 num_vectors: int = 4,
                 num_hashes: int = 3,
                 rotation_interval: float = 5.0,
                 hash_seed: int = 0x5EED,
                 filter_kind: str = "bitmap",
                 workers: int = 0,
                 backend: Optional[str] = None,
                 ready_timeout: float = 30.0,
                 python: Optional[str] = None,
                 store: Optional[SnapshotStore] = None,
                 restore: Optional[Path] = None):
        if size < 1:
            raise ValueError("fleet size must be at least 1")
        if backend not in (None, "serial", "sharded", "shared"):
            raise ValueError(f"unknown backend {backend!r}")
        if filter_kind not in ("bitmap", "hybrid"):
            raise ValueError(f"unknown filter kind {filter_kind!r}")
        self.protected = protected
        self.size = size
        self.workdir = Path(workdir)
        self.clock = clock
        self.fail_policy = fail_policy
        self.order = order
        self.num_vectors = num_vectors
        self.num_hashes = num_hashes
        self.rotation_interval = rotation_interval
        self.hash_seed = hash_seed
        self.filter_kind = filter_kind
        self.workers = workers
        self.backend = backend
        self.ready_timeout = ready_timeout
        self.python = python if python is not None else sys.executable
        self.store = (store if store is not None
                      else SnapshotStore(self.workdir / "store"))
        self.restore = restore
        self._nodes: Dict[str, ManagedNode] = {}

    @property
    def filter_args(self) -> List[str]:
        """The CLI geometry arguments every spawned daemon gets."""
        return [
            "--order", str(self.order), "--k", str(self.num_vectors),
            "--m", str(self.num_hashes), "--dt", str(self.rotation_interval),
            "--hash-seed", str(self.hash_seed), "--filter", self.filter_kind,
        ]

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> List[NodeSpec]:
        """Spawn the whole fleet; returns each node's spec, ready to route.

        With ``restore`` set, every node comes up warm from that snapshot
        (``--restore``) instead of cold — how a roaming client's filter
        state follows it to a new site's fleet.
        """
        if self._nodes:
            raise RuntimeError("fleet already started")
        self.workdir.mkdir(parents=True, exist_ok=True)
        for index in range(self.size):
            self._spawn(f"node{index}", restore_path=self.restore)
        return self.specs()

    def specs(self) -> List[NodeSpec]:
        return [node.spec for node in self._nodes.values()]

    def node(self, name: str) -> ManagedNode:
        return self._nodes[name]

    def reload_path(self, name: str) -> Path:
        """Where ``name``'s SIGHUP reload file lives."""
        return self.workdir / f"{name}.reload.json"

    def _spawn(self, name: str,
               restore_path: Optional[Path] = None) -> NodeSpec:
        snapshot_path = self.workdir / f"{name}.final.npz"
        command = [
            self.python, "-m", "repro", "serve",
            "--protected", self.protected,
            "--port", "0", "--http-port", "0",
            "--clock", self.clock,
            "--fail-policy", self.fail_policy,
            "--snapshot", str(snapshot_path),
            "--reload-config", str(self.reload_path(name)),
            *self.filter_args,
        ]
        if self.workers > 1:
            command += ["--workers", str(self.workers)]
        if self.backend is not None:
            command += ["--backend", self.backend]
        if restore_path is not None:
            command += ["--restore", str(restore_path)]
        process = subprocess.Popen(
            command, text=True,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        spec = self._await_ready(name, process)
        node = ManagedNode(spec=spec, process=process,
                           snapshot_path=snapshot_path)
        node._reader = threading.Thread(
            target=self._drain_stdout, args=(node,),
            name=f"repro-fleet-log-{name}", daemon=True)
        node._reader.start()
        self._nodes[name] = node
        return spec

    def _await_ready(self, name: str,
                     process: subprocess.Popen) -> NodeSpec:
        timer = threading.Timer(self.ready_timeout, process.kill)
        timer.start()
        try:
            while True:
                line = process.stdout.readline()
                if not line:
                    raise RuntimeError(
                        f"daemon {name} exited before READY "
                        f"(rc={process.poll()})")
                if line.startswith(_READY_PREFIX):
                    info = json.loads(line[len(_READY_PREFIX):])
                    break
        finally:
            timer.cancel()
        host, port = info["data"]
        http_url = None
        if info.get("http"):
            http_host, http_port = info["http"]
            http_url = f"http://{http_host}:{http_port}"
        return NodeSpec(name=name, host=host, port=port, http_url=http_url)

    @staticmethod
    def _drain_stdout(node: ManagedNode) -> None:
        try:
            for line in node.process.stdout:
                node.log.append(line.rstrip("\n"))
        except ValueError:
            pass  # stdout closed underneath us at shutdown

    # -- failure injection ----------------------------------------------------

    def kill(self, name: str) -> None:
        """SIGKILL: the abrupt death the circuit breaker exists for."""
        node = self._nodes[name]
        node.process.kill()
        node.process.wait(timeout=30)

    def stop(self, name: str, timeout: float = 30.0) -> int:
        """SIGTERM graceful drain; the daemon writes its final snapshot."""
        node = self._nodes[name]
        if node.alive:
            node.process.send_signal(signal.SIGTERM)
        return node.process.wait(timeout=timeout)

    def restart(self, name: str,
                restore_path: Optional[Path] = None) -> NodeSpec:
        """Relaunch ``name`` on fresh ephemeral ports (same ring share).

        The previous process must already be dead (killed or stopped).
        Pass the returned spec to :meth:`FleetRouter.update_node`.
        """
        node = self._nodes[name]
        if node.alive:
            raise RuntimeError(f"node {name} still running; kill/stop first")
        del self._nodes[name]
        return self._spawn(name, restore_path=restore_path)

    # -- health ---------------------------------------------------------------

    def healthz(self, name: str, *, timeout: float = 5.0) -> dict:
        """The node's live ``/healthz`` document."""
        node = self._nodes[name]
        if not node.spec.http_url:
            raise ValueError(f"node {name} has no HTTP endpoint")
        url = node.spec.http_url.rstrip("/") + "/healthz"
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return json.loads(response.read())

    # -- snapshot handoff -----------------------------------------------------

    def fetch_snapshot(self, name: str, *, timeout: float = 30.0) -> bytes:
        """The node's live checksummed snapshot over its HTTP endpoint."""
        node = self._nodes[name]
        if not node.spec.http_url:
            raise ValueError(f"node {name} has no HTTP endpoint")
        url = node.spec.http_url.rstrip("/") + "/snapshot"
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.read()

    def publish_snapshot(self, name: str) -> SnapshotRef:
        """Fetch ``name``'s live snapshot and publish it to the store."""
        return self.store.put(name, self.fetch_snapshot(name))

    def publish_snapshots(self) -> Dict[str, SnapshotRef]:
        """Publish every *alive* node's snapshot; returns refs by node.

        Nodes that die between the liveness check and the fetch are
        skipped (a scale-out should not be blocked by one sick donor).
        """
        refs: Dict[str, SnapshotRef] = {}
        for name, node in sorted(self._nodes.items()):
            if not node.alive:
                continue
            try:
                refs[name] = self.publish_snapshot(name)
            except OSError:
                continue
        return refs

    def warm_restart(self, name: str) -> NodeSpec:
        """Snapshot → stop → restart ``--restore``: state-preserving churn.

        Publishes the live snapshot into the shared store first (so the
        handoff works even if the graceful drain later fails to write
        one — and so the rest of the fleet can warm-start from it too),
        stops the daemon, and relaunches it warm from the verified store
        copy — its flows keep their marked bits.
        """
        ref = self.publish_snapshot(name)
        self.store.read(ref)  # verify before we bet the restart on it
        self.stop(name)
        return self.restart(name, restore_path=ref.path)

    # -- rolling reconfig -----------------------------------------------------

    @staticmethod
    def _geometry_of(source: dict) -> dict:
        return {key: source.get(key) for key in _GEOMETRY_FIELDS}

    def rolling_reconfig(self, new_config: FilterConfig, *,
                         margin: int = 2,
                         wait_applied: bool = False,
                         timeout: float = 30.0,
                         poll: float = 0.05) -> ReconfigReport:
        """Roll new filter geometry across the fleet, one node at a time.

        The router keeps serving throughout: each node stays on its old
        filter until the shared rebuild boundary, so there is no restart
        and no cold window.  Determinism is the point — the manager
        computes **one fleet-wide** ``rebuild_at`` (the latest upcoming
        rotation anywhere in the fleet plus ``margin`` rotation
        intervals of headroom) and every node rebuilds at exactly that
        packet timestamp, mid-batch if necessary.  An offline twin
        rebuilding at the same boundary
        (:func:`repro.sim.pipeline.run_filter_with_reconfig`) then
        reproduces the fleet's verdict stream byte for byte.

        Per node the roll is: write the reload file (new geometry +
        ``rebuild_at``), SIGHUP, and poll ``/healthz`` until the node
        echoes the new geometry as *pending* (or already applied) —
        only then is the next node touched.  A node that is dead or
        never confirms raises :class:`RollingReconfigError` with the
        roll aborted cleanly: later nodes were never signaled, and the
        fleet keeps serving on its current geometry.

        ``wait_applied=True`` additionally blocks until every node has
        *performed* the rebuild — only meaningful under a wall clock or
        with traffic flowing, since a packet-clock daemon crosses the
        boundary only when a packet does.
        """
        names = sorted(self._nodes)
        if not names:
            raise RuntimeError("fleet not started")
        target = {
            "order": new_config.order,
            "num_vectors": new_config.num_vectors,
            "num_hashes": new_config.num_hashes,
            "rotation_interval": new_config.rotation_interval,
            "seed": new_config.seed,
            "layers": new_config.layer_dicts(),
        }

        # One boundary for the whole fleet: past every node's next
        # rotation, with margin rotations of slack so every SIGHUP lands
        # before any packet can cross it.
        horizon = float("-inf")
        for name in names:
            if not self._nodes[name].alive:
                raise RollingReconfigError(
                    f"node {name} is dead; repair it before reconfiguring",
                    node=name, completed=[])
            try:
                health = self.healthz(name, timeout=timeout)
            except OSError as exc:
                raise RollingReconfigError(
                    f"node {name} unreachable during boundary collection: "
                    f"{exc}", node=name, completed=[]) from exc
            horizon = max(horizon, float(health["next_rotation"]))
        rebuild_at = horizon + margin * self.rotation_interval

        payload = dict(target)
        payload["fail_policy"] = self.fail_policy
        payload["rebuild_at"] = rebuild_at

        completed: List[str] = []
        for name in names:
            node = self._nodes[name]
            if not node.alive:
                raise RollingReconfigError(
                    f"node {name} died mid-roll "
                    f"(completed: {completed or 'none'})",
                    node=name, completed=completed)
            self.reload_path(name).write_text(json.dumps(payload))
            node.process.send_signal(signal.SIGHUP)
            if not self._await_geometry(name, target, timeout=timeout,
                                        poll=poll, pending_ok=True):
                raise RollingReconfigError(
                    f"node {name} never confirmed the new geometry "
                    f"(completed: {completed or 'none'})",
                    node=name, completed=completed)
            completed.append(name)

        if wait_applied:
            for name in names:
                if not self._await_geometry(name, target, timeout=timeout,
                                            poll=poll, pending_ok=False):
                    raise RollingReconfigError(
                        f"node {name} confirmed but never applied the "
                        "rebuild", node=name, completed=completed)

        # Future spawns and restarts come up on the new geometry.
        self.order = new_config.order
        self.num_vectors = new_config.num_vectors
        self.num_hashes = new_config.num_hashes
        self.rotation_interval = new_config.rotation_interval
        self.hash_seed = new_config.seed
        self.filter_kind = "hybrid" if new_config.layers else "bitmap"
        return ReconfigReport(rebuild_at=rebuild_at, nodes=completed,
                              config=new_config)

    def _await_geometry(self, name: str, target: dict, *,
                        timeout: float, poll: float,
                        pending_ok: bool) -> bool:
        deadline = time.monotonic() + timeout
        while True:
            if not self._nodes[name].alive:
                return False
            try:
                health = self.healthz(name, timeout=timeout)
            except OSError:
                health = None
            if health is not None:
                if self._geometry_of(health.get("filter") or {}) == target:
                    return True  # already applied
                pending = health.get("pending_geometry")
                if pending_ok and pending is not None \
                        and self._geometry_of(pending) == target:
                    return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(poll)

    # -- ring-aware scale-out -------------------------------------------------

    def add_node(self, router: "FleetRouter", *,
                 name: Optional[str] = None,
                 keys: Optional[np.ndarray] = None,
                 publish: bool = True,
                 sample_size: int = 65536) -> AddNodeReport:
        """Scale out by one node, pre-warmed, with routing flipped last.

        The sequence is warmth-first: (1) compute the keyspace share the
        arrival will steal from each current member
        (:meth:`HashRing.stolen_share` over ``keys``, or a deterministic
        uniform sample); (2) publish every live node's snapshot so the
        store holds the fleet's freshest state; (3) spawn the newcomer
        restored from :meth:`SnapshotStore.fleet_latest` — its stolen
        flows arrive already marked; (4) only once READY, flip routing
        via :meth:`FleetRouter.add_node`.  An empty store degrades to a
        cold spawn with a :class:`RuntimeWarning` — scale-out must not
        crash just because nobody published yet.
        """
        if name is None:
            index = 0
            while f"node{index}" in self._nodes:
                index += 1
            name = f"node{index}"
        elif name in self._nodes:
            raise ValueError(f"node {name!r} already in the fleet")
        if keys is None:
            rng = np.random.default_rng(self.hash_seed)
            keys = rng.integers(0, 2 ** 32, size=sample_size,
                                dtype=np.uint64)
        stolen = router.ring.stolen_share(name, keys)

        if publish:
            self.publish_snapshots()
        ref = self.store.fleet_latest()
        if ref is None:
            warnings.warn(
                f"snapshot store {self.store.root} is empty; node {name} "
                "cold-starts (its stolen flows hit warm-up grace)",
                RuntimeWarning, stacklevel=2)
            spec = self._spawn(name)
        else:
            self.store.read(ref)  # verify before betting the spawn on it
            spec = self._spawn(name, restore_path=ref.path)
        self.size = len(self._nodes)
        router.add_node(spec)
        return AddNodeReport(spec=spec, stolen=stolen, restored_from=ref)

    # -- teardown -------------------------------------------------------------

    def shutdown(self, timeout: float = 30.0) -> Dict[str, int]:
        """Gracefully stop every surviving node; returns exit codes."""
        codes: Dict[str, int] = {}
        for name, node in list(self._nodes.items()):
            if node.alive:
                node.process.send_signal(signal.SIGTERM)
        for name, node in list(self._nodes.items()):
            try:
                codes[name] = node.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                node.process.kill()
                codes[name] = node.process.wait(timeout=10)
        self._nodes.clear()
        return codes

    def __enter__(self) -> "FleetManager":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
