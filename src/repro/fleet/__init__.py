"""Fleet-scale serving: many filter daemons behind one robust surface.

One :class:`~repro.serve.daemon.FilterDaemon` is a single box — and a
single point of failure standing between the protected clients and an
active attack.  This package turns N daemons into one serving surface
with failure handling as the headline:

- :mod:`repro.fleet.ring` — :class:`HashRing`, consistent hashing of a
  flow's ``local_addr`` onto daemon nodes, so each flow's bitmap state
  lives on exactly one node and node churn remaps only the departed
  node's share (:meth:`HashRing.stolen_share` quantifies an arrival's
  remap before it happens).
- :mod:`repro.fleet.health` — per-node :class:`CircuitBreaker`
  (closed → open → half-open) and a :class:`HealthChecker` that polls
  each node's enriched ``/healthz``.
- :mod:`repro.fleet.router` — :class:`FleetRouter`, the client-side
  front end: splits each packet batch by ring owner, drives every node
  concurrently with retrying clients, and answers a dead node's flows
  from the fleet fail policy (``fail_open`` admits, ``fail_closed``
  drops inbound) — the same degraded-mode semantics a single filter
  applies during an outage, lifted to the fleet.
- :mod:`repro.fleet.store` — :class:`SnapshotStore`, the shared
  directory of checksummed snapshots any node (including a brand-new
  one) can warm-start from, replacing per-node private handoff files.
- :mod:`repro.fleet.manager` — :class:`FleetManager`, a subprocess
  supervisor for a local fleet of ``repro serve`` daemons with abrupt
  kill, graceful stop, store-backed warm restart, **zero-downtime
  rolling geometry reconfig** (one fleet-wide rebuild boundary, SIGHUP
  per node, healthz confirmation between nodes), and **ring-aware
  scale-out** (pre-warm the arrival from the store before routing
  flips).

The equivalence story mirrors the sharded backend's: against a healthy
fleet in packet-clock mode, fleet verdicts match a single-filter offline
replay (``repro replay-to --fleet --verify``) — *including through a
live rolling reconfig*, because every node rebuilds at the same shared
boundary the offline twin uses
(``tests/differential/test_fleet_equivalence.py``); under an injected
node failure, divergence is confined to the dead node's flows and
matches the configured fail policy (``tests/fleet/``,
``benchmarks/test_fleet_failover.py``).
"""

from repro.fleet.health import BreakerState, CircuitBreaker, HealthChecker
from repro.fleet.manager import (AddNodeReport, FleetManager, ReconfigReport,
                                 RollingReconfigError)
from repro.fleet.ring import HashRing
from repro.fleet.router import FleetRouter, NodeSpec, policy_verdicts
from repro.fleet.store import SnapshotIntegrityError, SnapshotRef, SnapshotStore

__all__ = [
    "AddNodeReport",
    "BreakerState",
    "CircuitBreaker",
    "FleetManager",
    "FleetRouter",
    "HashRing",
    "HealthChecker",
    "NodeSpec",
    "ReconfigReport",
    "RollingReconfigError",
    "SnapshotIntegrityError",
    "SnapshotRef",
    "SnapshotStore",
    "policy_verdicts",
]
