"""Per-node failure detection: circuit breakers and /healthz polling.

A dead daemon must cost the fleet one detection window, not one timeout
per packet frame.  Each node gets a :class:`CircuitBreaker` with the
classic three states:

- **closed** — requests flow; consecutive failures are counted.
- **open** — after ``failure_threshold`` consecutive failures, requests
  are answered from the fleet fail policy *without touching the
  network*, for ``reset_timeout`` seconds.
- **half-open** — after the timeout, exactly one probe request is let
  through; success closes the breaker, failure re-opens it (and restarts
  the timer).

The breaker is fed from two directions: the router records the outcome
of every real request, and a :class:`HealthChecker` — polling each
node's enriched ``/healthz`` JSON — records probe outcomes out of band,
so a node that died *between* packet batches is discovered before the
next batch pays a timeout, and a recovered node is re-admitted without
waiting for live traffic to probe it.

Everything takes an injectable ``clock`` (and the checker an injectable
``probe``), so state transitions are unit-tested against a fake clock
with zero real sleeping (``tests/fleet/test_health.py``).
"""

from __future__ import annotations

import enum
import json
import threading
import urllib.request
from time import monotonic
from typing import Callable, Dict, Iterable, Optional

__all__ = ["BreakerState", "CircuitBreaker", "HealthChecker", "http_probe"]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Closed → open → half-open failure gate for one node."""

    def __init__(self, *, failure_threshold: int = 3,
                 reset_timeout: float = 5.0,
                 clock: Callable[[], float] = monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._state = BreakerState.CLOSED
        self._failures = 0
        self._opened_at = float("-inf")
        self._probe_in_flight = False

    @property
    def state(self) -> BreakerState:
        """The current state (advancing open → half-open on read)."""
        if (self._state is BreakerState.OPEN
                and self._clock() - self._opened_at >= self.reset_timeout):
            self._state = BreakerState.HALF_OPEN
            self._probe_in_flight = False
        return self._state

    @property
    def failures(self) -> int:
        """Consecutive failures recorded since the last success."""
        return self._failures

    def allow(self) -> bool:
        """Whether a request may go to the node right now.

        Closed: always.  Open: never (answer from policy).  Half-open:
        exactly one probe until its outcome is recorded.
        """
        state = self.state
        if state is BreakerState.CLOSED:
            return True
        if state is BreakerState.HALF_OPEN and not self._probe_in_flight:
            self._probe_in_flight = True
            return True
        return False

    def record_success(self) -> None:
        """A request (or probe) succeeded: close and reset the count."""
        self._state = BreakerState.CLOSED
        self._failures = 0
        self._probe_in_flight = False

    def record_failure(self) -> None:
        """A request (or probe) failed: count, and maybe trip open."""
        self._failures += 1
        self._probe_in_flight = False
        if (self._state is BreakerState.HALF_OPEN
                or self._failures >= self.failure_threshold):
            self._state = BreakerState.OPEN
            self._opened_at = self._clock()

    def trip(self) -> None:
        """Force open (an unambiguous death notice, e.g. SIGKILL seen)."""
        self._failures = max(self._failures, self.failure_threshold)
        self._state = BreakerState.OPEN
        self._opened_at = self._clock()

    def __repr__(self) -> str:
        return (f"CircuitBreaker(state={self.state.value}, "
                f"failures={self._failures}/{self.failure_threshold})")


def http_probe(url: str, timeout: float = 2.0) -> dict:
    """Fetch and parse one node's ``/healthz`` JSON document.

    Raises ``OSError``/``ValueError`` on any failure — the checker
    translates exceptions into breaker failures.
    """
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


class HealthChecker:
    """Polls each node's ``/healthz`` and feeds its circuit breaker.

    ``probe`` maps a node name to its health document (default: HTTP GET
    against the URL from ``urls``); any exception, a non-``serving``
    status, or a ``degraded`` filter counts as a failure.  Use
    :meth:`check_now` for a synchronous sweep (the router calls this
    between batches; tests call it directly), or :meth:`start` for a
    background polling thread in live deployments.
    """

    def __init__(self, breakers: Dict[str, CircuitBreaker], *,
                 urls: Optional[Dict[str, str]] = None,
                 probe: Optional[Callable[[str], dict]] = None,
                 interval: float = 1.0,
                 probe_timeout: float = 2.0):
        if probe is None and urls is None:
            raise ValueError("pass urls (for the HTTP probe) or a probe")
        self.breakers = breakers
        self.interval = interval
        self._urls = dict(urls or {})
        self._probe = probe
        self._probe_timeout = probe_timeout
        self._last: Dict[str, Optional[dict]] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    def last_health(self, node: str) -> Optional[dict]:
        """The node's most recent health document (None before any probe
        succeeds, or after a failed one)."""
        return self._last.get(node)

    def check_node(self, node: str) -> bool:
        """Probe one node; record the outcome on its breaker."""
        breaker = self.breakers[node]
        try:
            if self._probe is not None:
                doc = self._probe(node)
            else:
                doc = http_probe(self._urls[node],
                                 timeout=self._probe_timeout)
            healthy = (doc.get("status") == "serving"
                       and not doc.get("degraded", False))
        except Exception:  # noqa: BLE001 - any probe failure is a failure
            doc, healthy = None, False
        self._last[node] = doc
        if healthy:
            breaker.record_success()
        else:
            breaker.record_failure()
        return healthy

    def check_now(self, nodes: Optional[Iterable[str]] = None) -> Dict[str, bool]:
        """One sweep over ``nodes`` (default: every breaker's node)."""
        return {node: self.check_node(node)
                for node in (nodes if nodes is not None else
                             list(self.breakers))}

    # -- background polling ---------------------------------------------------

    def start(self) -> None:
        """Poll every ``interval`` seconds from a daemon thread."""
        if self._thread is not None:
            raise RuntimeError("checker already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-fleet-health", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=10.0)
        self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.check_now()
            except Exception:  # noqa: BLE001 - keep polling regardless
                pass
