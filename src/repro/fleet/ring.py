"""Consistent-hash ring: flows to nodes, with minimal remap on churn.

The fleet partitions bitmap state by the flow's ``local_addr`` (the
protected-side address — the same key the sharded backend partitions
lookups by).  A modulo partition would remap almost every flow when the
fleet grows or shrinks by one node; a consistent-hash ring remaps *only*
the departed (or arriving) node's share, which is what makes warm
handoff and rolling reconfig tractable.

Each node is placed on a 64-bit circle at ``replicas`` pseudo-random
points (its *virtual nodes*, hashed from the node name — no coordination
needed); a key is owned by the first node point at or clockwise after
the key's own hash.  Key hashing is a SplitMix64 finalizer over the
address, vectorized with NumPy so a million-packet batch routes in one
``searchsorted`` — and deterministic across processes and
``PYTHONHASHSEED`` (no Python ``hash()`` anywhere).

Property tests (``tests/fleet/test_ring_properties.py``) pin the two
contracts that matter: key balance within a bound across N nodes, and
exact minimal remap — a key changes owner on node removal *iff* the
removed node owned it.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Union

import numpy as np

__all__ = ["HashRing", "splitmix64"]

_M64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def splitmix64(keys: Union[int, np.ndarray]) -> Union[int, np.ndarray]:
    """SplitMix64 finalizer: uniform uint64 from any integer key.

    Accepts a scalar or an integer ndarray; vectorized, wrap-around
    arithmetic in uint64 throughout.
    """
    x = np.asarray(keys, dtype=np.uint64)
    with np.errstate(over="ignore"):  # uint64 wrap-around is the algorithm
        x = (x + np.uint64(0x9E3779B97F4A7C15)) & _M64
        x = ((x ^ (x >> np.uint64(30)))
             * np.uint64(0xBF58476D1CE4E5B9)) & _M64
        x = ((x ^ (x >> np.uint64(27)))
             * np.uint64(0x94D049BB133111EB)) & _M64
        x = x ^ (x >> np.uint64(31))
    if np.isscalar(keys) or np.ndim(keys) == 0:
        return int(x)
    return x


def _node_points(name: str, replicas: int, seed: int) -> np.ndarray:
    """The node's virtual-node positions: one 64-bit point per replica."""
    points = np.empty(replicas, dtype=np.uint64)
    for i in range(replicas):
        digest = hashlib.blake2b(
            f"{seed}:{name}#{i}".encode(), digest_size=8).digest()
        points[i] = int.from_bytes(digest, "big")
    return points


class HashRing:
    """A consistent-hash ring over named nodes.

    ``replicas`` virtual nodes per real node smooth the share each node
    owns (higher = more even, marginally slower membership changes); the
    default 128 keeps the max/mean share imbalance comfortably below 2x
    for small fleets.  ``seed`` perturbs every placement, so two rings
    with different seeds assign independently.
    """

    def __init__(self, nodes: Iterable[str] = (), *,
                 replicas: int = 128, seed: int = 0x5EED):
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        self.replicas = replicas
        self.seed = seed
        self._nodes: List[str] = []
        self._points = np.empty(0, dtype=np.uint64)
        self._owners = np.empty(0, dtype=np.int32)
        for name in nodes:
            self.add(name)

    # -- membership -----------------------------------------------------------

    @property
    def nodes(self) -> List[str]:
        """Current member names, in insertion-independent sorted order."""
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def add(self, name: str) -> None:
        """Join ``name``; only keys landing on its points change owner."""
        if name in self._nodes:
            raise ValueError(f"node {name!r} already on the ring")
        self._nodes = sorted(self._nodes + [name])
        self._rebuild()

    def remove(self, name: str) -> None:
        """Leave ``name``; only keys it owned change owner."""
        try:
            self._nodes.remove(name)
        except ValueError:
            raise ValueError(f"node {name!r} not on the ring") from None
        self._rebuild()

    def _rebuild(self) -> None:
        if not self._nodes:
            self._points = np.empty(0, dtype=np.uint64)
            self._owners = np.empty(0, dtype=np.int32)
            return
        points = []
        owners = []
        for index, name in enumerate(self._nodes):
            node_points = _node_points(name, self.replicas, self.seed)
            points.append(node_points)
            owners.append(np.full(len(node_points), index, dtype=np.int32))
        all_points = np.concatenate(points)
        all_owners = np.concatenate(owners)
        order = np.argsort(all_points, kind="stable")
        self._points = all_points[order]
        self._owners = all_owners[order]

    # -- lookup ---------------------------------------------------------------

    def owner(self, key: int) -> str:
        """The node owning scalar ``key``."""
        if not self._nodes:
            raise ValueError("ring has no nodes")
        h = np.uint64(splitmix64(int(key)))
        index = int(np.searchsorted(self._points, h, side="left"))
        if index == len(self._points):
            index = 0  # wrap past the top of the circle
        return self._nodes[self._owners[index]]

    def owners_vec(self, keys: np.ndarray) -> np.ndarray:
        """Owner *indices* (into :attr:`nodes`) for an array of keys."""
        if not self._nodes:
            raise ValueError("ring has no nodes")
        hashes = splitmix64(np.asarray(keys).astype(np.uint64))
        indices = np.searchsorted(self._points, hashes, side="left")
        indices[indices == len(self._points)] = 0
        return self._owners[indices]

    def owners_of(self, keys: np.ndarray) -> List[str]:
        """Owner *names* for an array of keys (convenience over
        :meth:`owners_vec`)."""
        indices = self.owners_vec(keys)
        return [self._nodes[i] for i in indices]

    def shares(self, keys: np.ndarray) -> Dict[str, int]:
        """How many of ``keys`` each node owns (zero entries included)."""
        counts = np.bincount(self.owners_vec(keys), minlength=len(self._nodes))
        return {name: int(counts[i]) for i, name in enumerate(self._nodes)}

    def stolen_share(self, name: str, keys: np.ndarray) -> Dict[str, int]:
        """The keyspace share ``name`` would steal if it joined, by donor.

        Returns ``{donor: count}`` over ``keys``: how many of each
        current member's keys would move to the arrival.  The ring
        itself is not modified.  Because consistent-hash addition is
        minimal-remap (every mover lands on the arrival and nowhere
        else — a property-tested invariant), the values sum to exactly
        the arrival's share, and this is the *complete* remap a
        scale-out causes — which is what makes pre-warming the new node
        before flipping routing a bounded, predictable operation.
        """
        if name in self._nodes:
            raise ValueError(f"node {name!r} already on the ring")
        before = np.asarray(self.owners_of(keys))
        trial = HashRing(self._nodes, replicas=self.replicas, seed=self.seed)
        trial.add(name)
        moved = np.asarray(trial.owners_of(keys)) == name
        donors, counts = np.unique(before[moved], return_counts=True)
        return {str(donor): int(count)
                for donor, count in zip(donors, counts)}

    def __repr__(self) -> str:
        return (f"HashRing(nodes={self._nodes!r}, replicas={self.replicas}, "
                f"seed={self.seed:#x})")
