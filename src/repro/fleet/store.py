"""Shared snapshot store: the fleet's warm-start state, on disk.

Before this module each node handed off its own private snapshot file
(``{name}.handoff.npz``), which meant only the node that wrote a
snapshot could restart from it.  :class:`SnapshotStore` turns the
handoff into fleet-shared state: every published snapshot lands in one
directory, checksummed and immutable, with a per-node *latest pointer*
— so any node, including a brand-new one joining under load
(:meth:`FleetManager.add_node`), can warm-start from the fleet's most
recent state instead of cold-starting into a warm-up grace window.

Layout (flat directory, no subdirs, no database)::

    store/
      node0-00000001-9f8a6c21d3b44e70.npz   # immutable snapshot blobs
      node1-00000002-0c1d2e3f4a5b6c7d.npz
      node0.latest                          # per-node pointer (JSON)
      node1.latest

Durability and concurrency contracts, all enforced here and proven by
``tests/fleet/test_store.py``:

- **Snapshot blobs are immutable.**  Each :meth:`put` writes a *new*
  file (``{node}-{sequence:08d}-{digest16}.npz``) via a temp file +
  :func:`os.replace`, so a reader never observes a half-written blob.
- **Pointers are atomic and written last.**  ``{node}.latest`` is JSON
  naming the blob, its SHA-256, and its sequence number; it is replaced
  atomically only *after* the blob is durably in place, so a pointer can
  never dangle at a not-yet-written snapshot.
- **Reads verify.**  :meth:`read` recomputes the blob's SHA-256 against
  the pointer's digest and raises :class:`SnapshotIntegrityError` on any
  mismatch — a torn or bit-flipped snapshot is refused, never restored
  (the store-level digest covers the whole archive; snapshot-v2's own
  vector checksum still guards the payload inside).
- **Sequence numbers are store-global and monotonic**, so
  :meth:`fleet_latest` — "the most recent state anyone published" — is a
  max over pointers, not a filesystem-mtime guess.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = ["SnapshotIntegrityError", "SnapshotRef", "SnapshotStore"]

_BLOB_RE = re.compile(
    r"^(?P<node>.+)-(?P<seq>\d{8})-(?P<digest>[0-9a-f]{16})\.npz$")
_POINTER_SUFFIX = ".latest"


class SnapshotIntegrityError(ValueError):
    """A stored snapshot does not match its pointer's digest."""


@dataclass(frozen=True)
class SnapshotRef:
    """One published snapshot: who wrote it, when in sequence, and where."""

    node: str
    sequence: int
    path: Path
    sha256: str

    def as_dict(self) -> dict:
        return {"file": self.path.name, "sha256": self.sha256,
                "sequence": self.sequence, "node": self.node}


class SnapshotStore:
    """A directory of checksummed fleet snapshots (see module docstring).

    Thread-safe for concurrent :meth:`put`/:meth:`latest`/:meth:`read`
    within a process; across processes the atomic-rename protocol keeps
    readers consistent (they may see the previous latest, never a torn
    one).
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    # -- writing --------------------------------------------------------------

    def put(self, node: str, data: bytes) -> SnapshotRef:
        """Publish ``node``'s snapshot; returns its immutable ref.

        The blob lands first (temp file + atomic rename), the node's
        latest pointer flips second — so a crash between the two leaves
        a harmless orphan blob, never a dangling pointer.
        """
        if not node or "/" in node or node.startswith("."):
            raise ValueError(f"invalid node name {node!r}")
        digest = hashlib.sha256(data).hexdigest()
        with self._lock:
            sequence = self._next_sequence()
            blob = self.root / f"{node}-{sequence:08d}-{digest[:16]}.npz"
            self._write_atomic(blob, data)
            ref = SnapshotRef(node=node, sequence=sequence, path=blob,
                              sha256=digest)
            pointer = json.dumps(ref.as_dict(), sort_keys=True).encode()
            self._write_atomic(self._pointer_path(node), pointer)
        return ref

    def _write_atomic(self, path: Path, data: bytes) -> None:
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_bytes(data)
        os.replace(tmp, path)

    def _next_sequence(self) -> int:
        highest = 0
        for entry in self.root.iterdir():
            match = _BLOB_RE.match(entry.name)
            if match:
                highest = max(highest, int(match.group("seq")))
        return highest + 1

    def _pointer_path(self, node: str) -> Path:
        return self.root / f"{node}{_POINTER_SUFFIX}"

    # -- reading --------------------------------------------------------------

    def nodes(self) -> List[str]:
        """Every node with a published pointer, sorted."""
        return sorted(
            entry.name[:-len(_POINTER_SUFFIX)]
            for entry in self.root.iterdir()
            if entry.name.endswith(_POINTER_SUFFIX)
            and not entry.name.startswith("."))

    def latest(self, node: str) -> Optional[SnapshotRef]:
        """The node's most recent published snapshot (None if never)."""
        pointer = self._pointer_path(node)
        try:
            meta = json.loads(pointer.read_text())
        except FileNotFoundError:
            return None
        path = self.root / meta["file"]
        if not path.exists():
            raise SnapshotIntegrityError(
                f"pointer {pointer.name} names missing blob {meta['file']!r}")
        return SnapshotRef(node=node, sequence=int(meta["sequence"]),
                           path=path, sha256=meta["sha256"])

    def fleet_latest(self) -> Optional[SnapshotRef]:
        """The most recent snapshot *any* node published.

        This is what a brand-new node warm-starts from: the highest
        sequence number across every pointer (node-name tiebreak for
        determinism; sequences are unique in practice).
        """
        refs = [self.latest(node) for node in self.nodes()]
        refs = [ref for ref in refs if ref is not None]
        if not refs:
            return None
        return max(refs, key=lambda ref: (ref.sequence, ref.node))

    def read(self, ref: SnapshotRef) -> bytes:
        """The snapshot's bytes, digest-verified against the ref."""
        try:
            data = ref.path.read_bytes()
        except FileNotFoundError:
            raise SnapshotIntegrityError(
                f"snapshot blob {ref.path.name} is gone") from None
        actual = hashlib.sha256(data).hexdigest()
        if actual != ref.sha256:
            raise SnapshotIntegrityError(
                f"snapshot {ref.path.name} failed checksum verification "
                f"(stored {ref.sha256[:12]}…, computed {actual[:12]}…); "
                "the blob is torn or corrupted — restore from an older "
                "snapshot or cold-start instead of trusting this state")
        return data

    def read_latest(self, node: str) -> Optional[bytes]:
        """Convenience: the node's latest snapshot bytes (verified)."""
        ref = self.latest(node)
        return None if ref is None else self.read(ref)

    # -- housekeeping ---------------------------------------------------------

    def refs(self) -> Dict[str, List[SnapshotRef]]:
        """Every blob in the store, grouped by node, oldest first."""
        grouped: Dict[str, List[SnapshotRef]] = {}
        for entry in sorted(self.root.iterdir()):
            match = _BLOB_RE.match(entry.name)
            if not match:
                continue
            grouped.setdefault(match.group("node"), []).append(SnapshotRef(
                node=match.group("node"), sequence=int(match.group("seq")),
                path=entry, sha256=""))
        for refs in grouped.values():
            refs.sort(key=lambda ref: ref.sequence)
        return grouped

    def prune(self, keep_per_node: int = 1) -> List[Path]:
        """Delete all but each node's newest ``keep_per_node`` blobs.

        Pointer targets are never deleted (``keep_per_node`` is clamped
        to at least 1), so a concurrent reader following a pointer
        always finds its blob.
        """
        keep_per_node = max(1, keep_per_node)
        removed: List[Path] = []
        with self._lock:
            for node, refs in self.refs().items():
                pointer = self.latest(node)
                protected = {pointer.path} if pointer is not None else set()
                for ref in refs[:-keep_per_node]:
                    if ref.path in protected:
                        continue
                    try:
                        ref.path.unlink()
                        removed.append(ref.path)
                    except FileNotFoundError:
                        pass
        return removed

    def __repr__(self) -> str:
        return f"SnapshotStore(root={str(self.root)!r})"
