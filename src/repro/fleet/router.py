"""The fleet front end: consistent-hash routing with health-checked failover.

:class:`FleetRouter` makes N filter daemons look like one filter.  Each
packet's ``local_addr`` (the protected-side address — the key the
sharded backend partitions by) is consistent-hashed onto a daemon node,
so every flow's bitmap state lives on exactly one node.  A batch is
split by owner, each owned segment streams to its node over a retrying
:class:`~repro.serve.client.FilterClient` (all nodes driven
concurrently), and the verdict mask is scattered back into the caller's
packet order.

Failure handling is the point:

- Every node has a :class:`~repro.fleet.health.CircuitBreaker`.  Request
  failures (typed transient errors from the client: resets, timeouts,
  mid-stream disconnects) count against it; after the threshold the
  breaker opens and the node's flows are answered from the **fleet fail
  policy** without touching the network — ``fail_open`` admits them,
  ``fail_closed`` drops inbound — exactly the degraded-mode semantics a
  single filter applies during an outage (PR 1), lifted to the fleet.
  Both outcomes are counted in telemetry.
- Transient failures inside a stream trigger a reconnect (jittered
  exponential backoff under a deadline budget, via
  :mod:`repro.serve.retry`) and a resend of the unacknowledged frames —
  bitmap marking is idempotent, so a resend against a daemon that
  survived a dropped connection reproduces the same verdicts.
- A half-open breaker lets exactly one probe segment through; success
  re-admits the node, failure re-opens the breaker.

Time and sleeping are injectable (``clock``/``sleep``), so failover
logic is unit-tested against a fake clock — no real sleeps in
``tests/fleet/``.
"""

from __future__ import annotations

import threading
import urllib.request
from dataclasses import dataclass
from time import monotonic, sleep as _real_sleep
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.resilience import FailPolicy
from repro.fleet.health import BreakerState, CircuitBreaker, HealthChecker
from repro.fleet.ring import HashRing
from repro.net.address import AddressSpace
from repro.net.packet import DIRECTION_INCOMING, PacketArray
from repro.serve.client import FilterClient
from repro.serve.errors import is_transient
from repro.serve.retry import RetryPolicy, call_with_retry
from repro.telemetry.registry import MetricsRegistry

__all__ = ["FleetRouter", "NodeSpec", "policy_verdicts"]


@dataclass(frozen=True)
class NodeSpec:
    """One daemon's addresses, as the router sees them."""

    name: str
    host: str
    port: int
    http_url: Optional[str] = None  # e.g. "http://127.0.0.1:9100"

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"


def policy_verdicts(packets: PacketArray, protected: AddressSpace,
                    fail_policy: FailPolicy) -> np.ndarray:
    """Degraded-mode verdicts for ``packets`` when no filter is reachable.

    Mirrors the single filter's outage behavior and the daemon's shed
    path: ``fail_open`` admits everything; ``fail_closed`` admits
    outgoing but drops inbound.
    """
    verdicts = np.ones(len(packets), dtype=bool)
    if fail_policy is FailPolicy.FAIL_CLOSED:
        directions = packets.directions(protected)
        verdicts[directions == DIRECTION_INCOMING] = False
    return verdicts


class _Segment:
    """One node's slice of one input batch."""

    __slots__ = ("batch_index", "positions", "packets")

    def __init__(self, batch_index: int, positions: np.ndarray,
                 packets: PacketArray):
        self.batch_index = batch_index
        self.positions = positions
        self.packets = packets


class _Instruments:
    def __init__(self, registry: MetricsRegistry, nodes: Sequence[str]):
        self._registry = registry
        self.nodes_gauge = registry.gauge(
            "repro_fleet_nodes", "Daemon nodes currently on the ring")
        self.packets = {}
        self.failovers = {}
        self.policy_packets = {
            policy.value: registry.counter(
                "repro_fleet_policy_packets_total",
                "Packets answered from the fleet fail policy, by policy",
                policy=policy.value)
            for policy in FailPolicy
        }
        self.retries = registry.counter(
            "repro_fleet_retries_total",
            "Reconnect attempts made after transient node failures")
        for name in nodes:
            self.add_node(name)

    def add_node(self, name: str) -> None:
        if name in self.packets:
            return
        self.packets[name] = self._registry.counter(
            "repro_fleet_packets_total",
            "Packets routed to each node", node=name)
        self.failovers[name] = self._registry.counter(
            "repro_fleet_failovers_total",
            "Stream failures that triggered failover handling, by node",
            node=name)


class FleetRouter:
    """Route packet batches across a daemon fleet with failover (see
    module docstring)."""

    def __init__(self, nodes: Sequence[NodeSpec], *,
                 protected: AddressSpace,
                 fail_policy: FailPolicy = FailPolicy.FAIL_CLOSED,
                 replicas: int = 128,
                 ring_seed: int = 0x5EED,
                 retry: Optional[RetryPolicy] = None,
                 connect_timeout: float = 5.0,
                 request_timeout: float = 10.0,
                 failure_threshold: int = 3,
                 reset_timeout: float = 2.0,
                 registry: Optional[MetricsRegistry] = None,
                 clock: Callable[[], float] = monotonic,
                 sleep: Callable[[float], None] = _real_sleep,
                 connect: Optional[Callable[[NodeSpec], FilterClient]] = None):
        if not nodes:
            raise ValueError("a fleet needs at least one node")
        names = [spec.name for spec in nodes]
        if len(set(names)) != len(names):
            raise ValueError("node names must be unique")
        self.protected = protected
        self.fail_policy = fail_policy
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=3, base_delay=0.05, max_delay=1.0, deadline=10.0)
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.registry = registry if registry is not None else MetricsRegistry()
        self._clock = clock
        self._sleep = sleep
        self._connect = connect if connect is not None else self._tcp_connect
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._specs: Dict[str, NodeSpec] = {s.name: s for s in nodes}
        self._ring = HashRing(names, replicas=replicas, seed=ring_seed)
        self._breakers: Dict[str, CircuitBreaker] = {
            name: self._new_breaker() for name in names
        }
        self._clients: Dict[str, FilterClient] = {}
        self._m = _Instruments(self.registry, names)
        self._m.nodes_gauge.set(len(names))

    # -- construction helpers -------------------------------------------------

    def _tcp_connect(self, spec: NodeSpec) -> FilterClient:
        return FilterClient.connect(
            spec.host, spec.port,
            timeout=self.connect_timeout,
            request_timeout=self.request_timeout)

    def _new_breaker(self) -> CircuitBreaker:
        """A fresh breaker under this router's configured thresholds."""
        return CircuitBreaker(failure_threshold=self.failure_threshold,
                              reset_timeout=self.reset_timeout,
                              clock=self._clock)

    # -- membership -----------------------------------------------------------

    @property
    def ring(self) -> HashRing:
        return self._ring

    @property
    def nodes(self) -> List[NodeSpec]:
        return [self._specs[name] for name in self._ring.nodes]

    def breaker(self, name: str) -> CircuitBreaker:
        return self._breakers[name]

    def add_node(self, spec: NodeSpec) -> None:
        """Join a node: ring membership, a fresh breaker, telemetry."""
        if spec.name in self._specs:
            raise ValueError(f"node {spec.name!r} already in the fleet")
        self._specs[spec.name] = spec
        self._ring.add(spec.name)
        self._breakers[spec.name] = self._new_breaker()
        self._m.add_node(spec.name)
        self._m.nodes_gauge.set(len(self._ring))

    def remove_node(self, name: str) -> NodeSpec:
        """Leave a node: its share remaps to the survivors (and only it)."""
        spec = self._specs.pop(name)
        self._ring.remove(name)
        self._breakers.pop(name, None)
        self._drop_client(name)
        self._m.nodes_gauge.set(len(self._ring))
        return spec

    def update_node(self, spec: NodeSpec) -> None:
        """Replace a node's addresses in place (a restart moved its ports).

        Ring placement is by *name*, so the node keeps exactly its old
        share.  The stale connection is dropped and the node's circuit
        breaker is **reset**: a warm swap means the supervisor just
        verified a live replacement, so failures accumulated against the
        old incarnation must not leave the healthy newcomer born OPEN
        (answering its whole share from the fail policy until a
        half-open probe happened to re-admit it).
        """
        if spec.name not in self._specs:
            raise ValueError(f"node {spec.name!r} not in the fleet")
        self._specs[spec.name] = spec
        self._drop_client(spec.name)
        self._breakers[spec.name] = self._new_breaker()

    def _drop_client(self, name: str) -> None:
        client = self._clients.pop(name, None)
        if client is not None:
            client.close()

    # -- health ---------------------------------------------------------------

    def health_checker(self, *, interval: float = 1.0,
                       probe: Optional[Callable[[str], dict]] = None,
                       probe_timeout: float = 2.0) -> HealthChecker:
        """A checker over this fleet's breakers and ``/healthz`` URLs."""
        urls = {name: spec.http_url.rstrip("/") + "/healthz"
                for name, spec in self._specs.items()
                if spec.http_url}
        return HealthChecker(self._breakers, urls=urls, probe=probe,
                             interval=interval, probe_timeout=probe_timeout)

    def breaker_states(self) -> Dict[str, BreakerState]:
        return {name: breaker.state
                for name, breaker in self._breakers.items()}

    # -- routing --------------------------------------------------------------

    def owners(self, packets: PacketArray) -> np.ndarray:
        """Owner indices (into the ring's sorted node list) per packet."""
        directions = packets.directions(self.protected)
        incoming = directions == DIRECTION_INCOMING
        local_addr = np.where(incoming, packets.dst, packets.src)
        return self._ring.owners_vec(local_addr.astype(np.uint64))

    def owner_names(self, packets: PacketArray) -> List[str]:
        names = self._ring.nodes
        return [names[i] for i in self.owners(packets)]

    def filter(self, packets: PacketArray) -> np.ndarray:
        """One batch in, its PASS mask out (in the caller's packet order)."""
        return self.filter_batches([packets])[0]

    def filter_batches(self, batches: Sequence[PacketArray], *,
                       window: int = 8) -> List[np.ndarray]:
        """Stream ``batches`` through the fleet; one mask per batch.

        Per-batch split by ring owner, per-node pipelined streaming (up
        to ``window`` frames in flight per node), nodes driven
        concurrently from one thread each.  A node that fails mid-stream
        is retried per the retry policy; once its breaker opens, its
        remaining segments are answered from the fleet fail policy.
        """
        node_names = self._ring.nodes
        per_node: Dict[str, List[_Segment]] = {}
        masks: List[np.ndarray] = []
        for batch_index, batch in enumerate(batches):
            masks.append(np.zeros(len(batch), dtype=bool))
            if not len(batch):
                continue
            owners = self.owners(batch)
            for node_index in np.unique(owners):
                positions = np.flatnonzero(owners == node_index)
                name = node_names[node_index]
                per_node.setdefault(name, []).append(
                    _Segment(batch_index, positions, batch[positions]))

        def run(name: str, segments: List[_Segment]) -> List[np.ndarray]:
            return self._run_node_segments(name, segments, window=window)

        involved = list(per_node.items())
        if len(involved) <= 1:
            results = {name: run(name, segments)
                       for name, segments in involved}
        else:
            results = {}
            errors: List[BaseException] = []

            def worker(name: str, segments: List[_Segment]) -> None:
                try:
                    results[name] = run(name, segments)
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=item,
                                        name=f"repro-fleet-{item[0]}")
                       for item in involved]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            if errors:
                raise errors[0]

        for name, segments in involved:
            for segment, mask in zip(segments, results[name]):
                masks[segment.batch_index][segment.positions] = mask
        return masks

    # -- per-node streaming with failover -------------------------------------

    def _client(self, name: str) -> FilterClient:
        client = self._clients.get(name)
        if client is None:
            spec = self._specs[name]
            client = call_with_retry(
                lambda: self._connect(spec),
                policy=self.retry,
                clock=self._clock,
                sleep=self._sleep,
                on_retry=lambda i, exc: self._m.retries.inc())
            self._clients[name] = client
        return client

    def _policy_fill(self, segments: List[_Segment]) -> List[np.ndarray]:
        out = []
        for segment in segments:
            mask = policy_verdicts(segment.packets, self.protected,
                                   self.fail_policy)
            self._m.policy_packets[self.fail_policy.value].inc(
                len(segment.packets))
            out.append(mask)
        return out

    def _run_node_segments(self, name: str, segments: List[_Segment], *,
                           window: int) -> List[np.ndarray]:
        """All of one node's segments, in order, with retry + failover.

        Returns one verdict mask per segment.  Frames acknowledged before
        a failure keep their real verdicts; unacknowledged frames are
        resent after a reconnect; once the breaker opens (or retries are
        exhausted), the remainder is answered from the fail policy.
        """
        breaker = self._breakers[name]
        results: List[np.ndarray] = []
        index = 0
        while index < len(segments):
            if not breaker.allow():
                results.extend(self._policy_fill(segments[index:]))
                return results
            try:
                client = self._client(name)
            except Exception as exc:  # noqa: BLE001 - transient handled below
                if not is_transient(exc):
                    raise
                breaker.record_failure()
                self._m.failovers[name].inc()
                continue
            try:
                stream = client.filter_stream(
                    [segment.packets for segment in segments[index:]],
                    window=window)
                for mask in stream:
                    results.append(mask)
                    self._m.packets[name].inc(len(segments[index].packets))
                    index += 1
                    breaker.record_success()
            except Exception as exc:  # noqa: BLE001 - typed triage below
                self._drop_client(name)
                self._m.failovers[name].inc()
                if is_transient(exc):
                    # Reconnect (breaker- and retry-gated) and resend the
                    # unacknowledged frames; marking is idempotent.
                    breaker.record_failure()
                    continue
                # Fatal (e.g. the node answered FT_ERROR): answer this
                # segment from policy and move on — resending the same
                # frame would fail the same way.
                breaker.record_failure()
                results.extend(self._policy_fill(segments[index:index + 1]))
                index += 1
        return results

    # -- snapshots ------------------------------------------------------------

    def fetch_snapshot(self, name: str, *, timeout: float = 30.0) -> bytes:
        """The node's live checksummed snapshot, over its HTTP endpoint."""
        spec = self._specs[name]
        if not spec.http_url:
            raise ValueError(f"node {name!r} has no http_url")
        url = spec.http_url.rstrip("/") + "/snapshot"
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.read()

    # -- introspection / lifecycle --------------------------------------------

    def node_config(self, name: str) -> dict:
        """One node's FT_CONFIG self-description."""
        return self._client(name).config()

    def fleet_config(self) -> dict:
        """The fleet's common daemon config; raises on geometry skew.

        Every node must agree on filter geometry, protected networks,
        clock mode, and exactness — otherwise verdicts depend on which
        node a flow hashes to, which is a deployment error worth failing
        loudly on.
        """
        reference: Optional[dict] = None
        reference_node: Optional[str] = None
        for name in self._ring.nodes:
            info = self.node_config(name)
            comparable = {key: info[key] for key in
                          ("filter", "protected", "clock", "exact")}
            if reference is None:
                reference, reference_node = comparable, name
            elif comparable != reference:
                raise ValueError(
                    f"fleet config skew: node {name!r} disagrees with "
                    f"{reference_node!r}: {comparable} != {reference}")
        assert reference is not None
        return reference

    def close(self) -> None:
        """Best-effort orderly goodbye to every connected node."""
        for name in list(self._clients):
            client = self._clients.pop(name)
            try:
                client.goodbye(timeout=5.0)
            except Exception:  # noqa: BLE001 - closing anyway
                pass
            client.close()

    def __enter__(self) -> "FleetRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
