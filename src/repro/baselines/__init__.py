"""Non-SPI defense baselines the paper compares against conceptually.

Section 2 argues that bandwidth-throttling (aggregate rate-limiting)
mechanisms fit server networks but not client networks: aggregates are hard
to identify when attacks randomize fields, rate-limiting an aggregate
punishes the legitimate traffic inside it, and slow attacks never trip the
trigger.  :mod:`repro.baselines.throttle` implements such a mechanism so the
argument can be measured instead of asserted.
"""

from repro.baselines.throttle import (
    Aggregate,
    AggregateRateLimiter,
    TokenBucket,
)

__all__ = ["Aggregate", "AggregateRateLimiter", "TokenBucket"]
