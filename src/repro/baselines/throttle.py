"""Aggregate bandwidth throttling — the Section 2 comparison baseline.

The mechanisms of [5, 9, 11] (pushback, aggregate congestion control,
perimeter defense) work in two steps: *identify an aggregate* — a common
characteristic extracted from packets, e.g. "all UDP packets with
destination port 445" — and *rate-limit it* once its arrival rate crosses a
trigger.  This module implements that design honestly:

- :class:`TokenBucket` — the classic limiter (rate + burst).
- :class:`Aggregate` — a predicate over (protocol, destination port),
  optionally destination host, the identification granularity the paper
  discusses.
- :class:`AggregateRateLimiter` — monitors per-aggregate arrival rates,
  activates a token bucket on any aggregate exceeding the trigger rate, and
  deactivates it when the rate subsides.

The paper's three criticisms become measurable (see
``repro.experiments.throttle_cmp``):

1. randomized attacks match no narrow aggregate;
2. limiting an aggregate drops the legitimate traffic inside it;
3. attacks below the trigger are never limited at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.core.apd import SlidingWindowCounter
from repro.core.filter_api import Decision, PacketFilterMixin
from repro.net.address import AddressSpace
from repro.net.packet import Direction, Packet


class TokenBucket:
    """A token bucket: ``rate`` tokens/second, capacity ``burst``."""

    def __init__(self, rate: float, burst: float):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._last = 0.0

    def allow(self, ts: float, cost: float = 1.0) -> bool:
        """Consume ``cost`` tokens at time ``ts`` if available."""
        if ts > self._last:
            self._tokens = min(self.burst, self._tokens + (ts - self._last) * self.rate)
            self._last = ts
        if self._tokens >= cost:
            self._tokens -= cost
            return True
        return False

    @property
    def tokens(self) -> float:
        return self._tokens


@dataclass(frozen=True)
class Aggregate:
    """An identifiable traffic aggregate: protocol + destination port
    (optionally one destination host)."""

    proto: int
    dport: int
    daddr: Optional[int] = None

    def matches(self, pkt: Packet) -> bool:
        if pkt.proto != self.proto or pkt.dport != self.dport:
            return False
        return self.daddr is None or pkt.dst == self.daddr

    def __str__(self) -> str:
        host = f" to {self.daddr:#x}" if self.daddr is not None else ""
        return f"proto {self.proto} dport {self.dport}{host}"


class AggregateRateLimiter(PacketFilterMixin):
    """Trigger-based aggregate rate limiting at a client network's edge.

    Incoming packets are binned into (proto, dport) aggregates.  When an
    aggregate's arrival rate over the monitoring window exceeds
    ``trigger_pps``, a token bucket capped at ``limit_pps`` is applied to it
    until its *offered* rate drops back below the trigger.  Outgoing packets
    are never limited.
    """

    def __init__(
        self,
        protected: AddressSpace,
        trigger_pps: float,
        limit_pps: float,
        window: float = 5.0,
        burst_seconds: float = 1.0,
        key: str = "dport",
    ):
        if trigger_pps <= 0 or limit_pps <= 0:
            raise ValueError("rates must be positive")
        if key not in ("dport", "sport"):
            raise ValueError("aggregate key must be 'dport' or 'sport'")
        self.protected = protected
        self.trigger_pps = trigger_pps
        self.limit_pps = limit_pps
        self.window = window
        self.burst = limit_pps * burst_seconds
        #: Which port field identifies the aggregate.  ``dport`` groups by
        #: the targeted service; ``sport`` groups by the *origin* service —
        #: the natural choice against reflection floods (e.g. all packets
        #: from port 53), and exactly where the paper's collateral-damage
        #: criticism bites: legitimate replies share the aggregate.
        self.key = key
        self._rates: Dict[Tuple[int, int], SlidingWindowCounter] = {}
        self._buckets: Dict[Tuple[int, int], TokenBucket] = {}
        self.packets_limited = 0
        self.packets_seen = 0

    # -- introspection -------------------------------------------------------

    @property
    def active_limiters(self) -> Iterable[Tuple[int, int]]:
        return tuple(self._buckets)

    def offered_rate(self, proto: int, dport: int, now: float) -> float:
        counter = self._rates.get((proto, dport))
        return counter.rate(now) if counter else 0.0

    # -- filtering --------------------------------------------------------------

    def process(self, pkt: Packet) -> Decision:
        direction = pkt.direction(self.protected)
        if direction is not Direction.INCOMING:
            return Decision.PASS
        self.packets_seen += 1
        port = pkt.dport if self.key == "dport" else pkt.sport
        key = (pkt.proto, port)
        counter = self._rates.get(key)
        if counter is None:
            counter = SlidingWindowCounter(window=self.window)
            self._rates[key] = counter
        counter.add(pkt.ts)
        offered = counter.rate(pkt.ts)

        bucket = self._buckets.get(key)
        if bucket is None:
            if offered > self.trigger_pps:
                # Trigger: install a limiter on the hot aggregate.
                bucket = TokenBucket(self.limit_pps, self.burst)
                self._buckets[key] = bucket
            else:
                return Decision.PASS
        elif offered <= self.trigger_pps:
            # The aggregate cooled down: remove its limiter.
            del self._buckets[key]
            return Decision.PASS

        if bucket.allow(pkt.ts):
            return Decision.PASS
        self.packets_limited += 1
        return Decision.DROP

    def process_batch(self, packets, exact: bool = True) -> "object":
        """Batch wrapper mirroring the unified PacketFilter API.

        ``exact`` is accepted for conformance; the scalar loop is always
        exact.
        """
        import numpy as np

        verdicts = np.ones(len(packets), dtype=bool)
        for i, pkt in enumerate(packets):
            verdicts[i] = self.process(pkt) is Decision.PASS
        return verdicts
