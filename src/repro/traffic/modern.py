"""Modern datacenter-style workloads: CDF flow sizes, NAT, IPv6, asymmetry.

The campus generator (:mod:`repro.traffic.generator`) reproduces the paper's
2006 capture.  This module models the traffic shapes that capture predates:

- **CDF-driven flow sizes.**  :class:`FlowSizeCDF` inverse-transform-samples
  flow sizes from an empirical CDF.  :data:`WEB_SEARCH` and
  :data:`DATA_MINING` are the two canonical datacenter distributions
  (the web-search trace of DCTCP and the data-mining trace of VL2) — the
  former dominated by mice, the latter by a heavy elephant tail.
- **NAT'd source pools.**  Many internal clients multiplex a few public
  addresses; the filter observes high connection counts concentrated on a
  handful of source IPs whose ports churn fast — the worst case for
  per-address state and a natural fit for the bitmap's per-tuple keys.
- **IPv6 flow tuples.**  The packet table is 32-bit
  (:data:`repro.net.packet.PACKET_DTYPE`), so IPv6 endpoints are *folded*
  deterministically into it: client interface identifiers hash into the
  site's protected block, servers into the outside space
  (:class:`Ipv6Folding`).  The fold is a pure function of the 128-bit
  address (BLAKE2b), so it is seed- and ``PYTHONHASHSEED``-stable.
- **Asymmetric routing.**  :func:`asymmetric_route` removes the *outgoing*
  half of a deterministic fraction of flows from the filter's viewpoint —
  the hot-potato case where replies return through a path whose requests
  the filter never saw, so legitimate responses get dropped.

Everything is driven by ``random.Random(seed)`` / BLAKE2b only, producing
time-sorted :class:`~repro.traffic.trace.Trace` objects whose
:meth:`~repro.traffic.trace.Trace.digest` is reproducible across runs,
platforms, and hash-seed values.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.net.address import AddressSpace
from repro.net.packet import PACKET_DTYPE, PacketArray, TcpFlags
from repro.net.protocols import EPHEMERAL_PORT_RANGE, IPPROTO_TCP, IPPROTO_UDP
from repro.traffic.trace import Trace

__all__ = [
    "DATA_MINING",
    "FlowSizeCDF",
    "Ipv6Folding",
    "ModernWorkload",
    "ModernWorkloadConfig",
    "NatPool",
    "WEB_SEARCH",
    "asymmetric_route",
    "generate_modern_trace",
    "mix_cdf",
]

_SYN = int(TcpFlags.SYN)
_SYNACK = int(TcpFlags.SYN | TcpFlags.ACK)
_ACK = int(TcpFlags.ACK)
_PSHACK = int(TcpFlags.PSH | TcpFlags.ACK)
_FINACK = int(TcpFlags.FIN | TcpFlags.ACK)


@dataclass(frozen=True)
class FlowSizeCDF:
    """An empirical flow-size CDF sampled by inverse transform.

    ``points`` is a monotone sequence of ``(cumulative_probability,
    kilobytes)`` pairs ending at probability 1.0; a draw interpolates
    linearly between adjacent points (sizes below the first point
    interpolate down to 1 KB).
    """

    name: str
    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.points or self.points[-1][0] != 1.0:
            raise ValueError("CDF points must end at cumulative probability 1.0")
        last_p, last_kb = 0.0, 0.0
        for p, kb in self.points:
            if not 0.0 < p <= 1.0 or kb <= 0:
                raise ValueError(f"bad CDF point ({p}, {kb})")
            if p <= last_p or kb < last_kb:
                raise ValueError("CDF probabilities must strictly increase "
                                 "and sizes must be non-decreasing")
            last_p, last_kb = p, kb

    def sample_kbytes(self, rng: random.Random) -> float:
        """One flow size in kilobytes."""
        u = rng.random()
        prev_p, prev_kb = 0.0, min(1.0, self.points[0][1])
        for p, kb in self.points:
            if u <= p:
                span = p - prev_p
                frac = (u - prev_p) / span if span > 0 else 1.0
                return prev_kb + frac * (kb - prev_kb)
            prev_p, prev_kb = p, kb
        return self.points[-1][1]

    def mean_kbytes(self, samples: int = 4096, seed: int = 0) -> float:
        """Monte-Carlo mean of the distribution (calibration helper)."""
        rng = random.Random(seed)
        return sum(self.sample_kbytes(rng) for _ in range(samples)) / samples


#: The DCTCP web-search workload: >80% of flows under ~1.3 MB (mice),
#: queries and short responses dominating.
WEB_SEARCH = FlowSizeCDF("web-search", (
    (0.15, 6.0), (0.2, 13.0), (0.3, 19.0), (0.4, 33.0), (0.53, 53.0),
    (0.6, 133.0), (0.7, 667.0), (0.8, 1333.0), (0.9, 3333.0),
    (0.97, 6667.0), (1.0, 20000.0),
))

#: The VL2 data-mining workload: half the flows are single-packet, but the
#: top 5% are multi-megabyte elephants carrying most of the bytes.
DATA_MINING = FlowSizeCDF("data-mining", (
    (0.5, 1.0), (0.6, 2.0), (0.7, 3.0), (0.8, 7.0), (0.9, 267.0),
    (0.95, 2107.0), (0.99, 66667.0), (1.0, 666667.0),
))

_MIXES = {cdf.name: cdf for cdf in (WEB_SEARCH, DATA_MINING)}


def mix_cdf(name: str) -> FlowSizeCDF:
    """Look up a named flow-size mix (``web-search`` / ``data-mining``)."""
    try:
        return _MIXES[name]
    except KeyError:
        raise KeyError(
            f"unknown flow mix {name!r}; known: {sorted(_MIXES)}") from None


class NatPool:
    """A NAPT gateway: many internal clients behind few public addresses.

    Each translation draws a public address uniformly from the pool and an
    ephemeral port from that address's cycling allocator — the
    externally-visible half of a (private host, private port) binding.  The
    filter only ever sees the public side, so ``pool_size`` public IPs
    carry the site's entire outgoing connection load.
    """

    def __init__(self, space: AddressSpace, pool_size: int):
        if pool_size < 1:
            raise ValueError("NAT pool needs at least one public address")
        first = space.networks[0]
        if pool_size > first.num_addresses - 2:
            raise ValueError("NAT pool larger than the public network")
        self.addresses = [first.host(i + 1) for i in range(pool_size)]
        self._ports: Dict[int, int] = {}

    def translate(self, rng: random.Random) -> Tuple[int, int]:
        """One fresh (public address, public port) binding."""
        public = self.addresses[rng.randrange(len(self.addresses))]
        lo, hi = EPHEMERAL_PORT_RANGE
        span = hi - lo + 1
        current = self._ports.get(public)
        if current is None:
            current = lo + rng.randrange(span)
        else:
            current = lo + (current - lo + 1) % span
        self._ports[public] = current
        return public, current


class Ipv6Folding:
    """Deterministic fold of 128-bit endpoints into the 32-bit packet table.

    The trace dtype carries IPv4-sized addresses, so IPv6 flows are
    represented by folding each 128-bit address through BLAKE2b: client
    addresses land on a host inside the site's protected block (so
    direction classification still works), servers land outside it.  The
    fold is stable across processes — it depends only on the address bits.
    """

    def __init__(self, space: AddressSpace):
        self.space = space
        self._hosts = space.hosts(per_network=250)

    @staticmethod
    def _digest(value: int, salt: int = 0) -> int:
        data = value.to_bytes(16, "big") + salt.to_bytes(4, "big")
        return int.from_bytes(
            hashlib.blake2b(data, digest_size=8).digest(), "big")

    def fold_client(self, ipv6: int) -> int:
        """Map an IPv6 client onto a stable host of the protected block."""
        return self._hosts[self._digest(ipv6) % len(self._hosts)]

    def fold_server(self, ipv6: int) -> int:
        """Map an IPv6 server onto a stable address outside the block."""
        salt = 0
        while True:
            addr = 0x01000000 + self._digest(ipv6, salt) % (0xE0000000 - 0x01000000)
            if not self.space.contains_int(addr):
                return addr
            salt += 1


@dataclass(frozen=True)
class ModernWorkloadConfig:
    """Knobs of the CDF-driven modern workload."""

    mix: str = "web-search"        # flow-size CDF name
    first_network: str = "172.16.0.0"
    num_networks: int = 2
    hosts_per_network: int = 40
    duration: float = 60.0
    flow_rate: Optional[float] = None    # flows per second
    target_pps: Optional[float] = None   # alternative: calibrate packet rate
    num_servers: int = 400
    mss: int = 1460                # data-packet payload cap
    ack_every: int = 10            # outgoing ACK per N incoming data packets
    max_packets_per_flow: int = 2000  # elephant truncation (noted in metadata)
    dns_fraction: float = 0.25     # flows preceded by a UDP DNS lookup
    nat_pool: int = 0              # >0: clients NAT through this many IPs
    ipv6: bool = False             # endpoints are folded IPv6 addresses
    asymmetry: float = 0.0         # fraction of flows routed around the filter
    background_noise_fraction: float = 0.007
    seed: int = 42
    start_time: float = 0.0

    def __post_init__(self) -> None:
        mix_cdf(self.mix)  # validate the name early
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if (self.flow_rate is None) == (self.target_pps is None):
            raise ValueError("specify exactly one of flow_rate or target_pps")
        if not 0.0 <= self.asymmetry < 1.0:
            raise ValueError("asymmetry must be in [0, 1)")
        if self.num_networks < 1 or self.hosts_per_network < 1:
            raise ValueError("need at least one network and one host")
        if self.mss < 64 or self.max_packets_per_flow < 4:
            raise ValueError("mss/max_packets_per_flow too small")


class ModernWorkload:
    """Generate a CDF-driven request/response workload for one site."""

    _CALIBRATION_FLOWS = 400

    def __init__(self, config: ModernWorkloadConfig):
        self.config = config
        self.cdf = mix_cdf(config.mix)
        self.protected = AddressSpace.class_c_block(
            config.first_network, config.num_networks)
        self._rng = random.Random(config.seed)
        self._nat = (NatPool(self.protected, config.nat_pool)
                     if config.nat_pool else None)
        self._fold = Ipv6Folding(self.protected) if config.ipv6 else None
        self._clients = self._build_clients()
        self._client_ports: Dict[int, int] = {}
        self._servers = self._build_server_pool()

    # -- endpoint pools -----------------------------------------------------

    def _build_clients(self) -> List[int]:
        config = self.config
        if self._fold is not None:
            # IPv6 clients: 2001:db8::/32 interface identifiers, folded.
            base = 0x20010DB8 << 96
            return [self._fold.fold_client(base + i)
                    for i in range(config.num_networks
                                   * config.hosts_per_network)]
        return self.protected.hosts(per_network=config.hosts_per_network)

    def _build_server_pool(self) -> List[int]:
        rng = random.Random(self.config.seed ^ 0x5E17E12)
        if self._fold is not None:
            base = 0x26001F00 << 96  # a cloud provider's IPv6 block
            return [self._fold.fold_server(base + rng.getrandbits(48))
                    for _ in range(self.config.num_servers)]
        servers: List[int] = []
        while len(servers) < self.config.num_servers:
            addr = rng.randint(0x01000000, 0xDFFFFFFF)
            if not self.protected.contains_int(addr):
                servers.append(addr)
        return servers

    def _next_port(self, client: int, rng: random.Random) -> int:
        if self._nat is not None:
            raise AssertionError("NAT path allocates via the pool")
        lo, hi = EPHEMERAL_PORT_RANGE
        span = hi - lo + 1
        current = self._client_ports.get(client)
        if current is None:
            current = lo + rng.randrange(span)
        else:
            current = lo + (current - lo + 1) % span
        self._client_ports[client] = current
        return current

    # -- flow expansion -----------------------------------------------------

    def _flow_rows(self, rng: random.Random, start: float) -> List[tuple]:
        """Expand one request/response flow into packet rows.

        Row shape matches the campus generator:
        ``(ts, proto, src, sport, dst, dport, flags, size)``.
        """
        config = self.config
        if self._nat is not None:
            client, sport = self._nat.translate(rng)
        else:
            client = self._clients[rng.randrange(len(self._clients))]
            sport = self._next_port(client, rng)
        server = self._servers[rng.randrange(len(self._servers))]
        dport = 443 if rng.random() < 0.7 else 80
        rtt = rng.uniform(0.005, 0.12)
        rows: List[tuple] = []

        t = start
        if rng.random() < config.dns_fraction:
            resolver = self._servers[0]
            rows.append((t, IPPROTO_UDP, client, sport, resolver, 53, 0, 64))
            rows.append((t + rtt, IPPROTO_UDP, resolver, 53, client, sport,
                         0, 120))
            t += rtt + rng.uniform(0.0002, 0.002)

        rows.append((t, IPPROTO_TCP, client, sport, server, dport, _SYN, 48))
        t += rtt
        rows.append((t, IPPROTO_TCP, server, dport, client, sport,
                     _SYNACK, 48))
        t += rng.uniform(0.0001, 0.001)
        rows.append((t, IPPROTO_TCP, client, sport, server, dport, _ACK, 40))
        rows.append((t, IPPROTO_TCP, client, sport, server, dport,
                     _PSHACK, rng.randint(120, 700)))

        size_bytes = self.cdf.sample_kbytes(rng) * 1024.0
        n_data = max(1, int(np.ceil(size_bytes / config.mss)))
        n_data = min(n_data, config.max_packets_per_flow)
        t += rtt
        for i in range(n_data):
            t += rng.uniform(0.0002, 0.0018)
            last = i == n_data - 1
            payload = (config.mss if not last
                       else max(40, int(size_bytes) % config.mss or config.mss))
            rows.append((t, IPPROTO_TCP, server, dport, client, sport,
                         _PSHACK if last else _ACK, min(payload, 65535)))
            if (i + 1) % config.ack_every == 0 and not last:
                rows.append((t + 0.0001, IPPROTO_TCP, client, sport, server,
                             dport, _ACK, 40))

        t += rng.uniform(0.0005, 0.01)
        rows.append((t, IPPROTO_TCP, client, sport, server, dport,
                     _FINACK, 40))
        rows.append((t + rtt, IPPROTO_TCP, server, dport, client, sport,
                     _FINACK, 40))
        rows.append((t + rtt + 0.0005, IPPROTO_TCP, client, sport, server,
                     dport, _ACK, 40))
        return rows

    # -- calibration --------------------------------------------------------

    def estimate_packets_per_flow(self) -> float:
        """Mean packets per flow (dry run with a cloned RNG state)."""
        saved = random.Random()
        saved.setstate(self._rng.getstate())
        probe = ModernWorkload(self.config)
        probe._rng = saved
        total = sum(len(probe._flow_rows(saved, 0.0))
                    for _ in range(self._CALIBRATION_FLOWS))
        return total / self._CALIBRATION_FLOWS

    def resolved_flow_rate(self) -> float:
        if self.config.flow_rate is not None:
            return self.config.flow_rate
        assert self.config.target_pps is not None
        return self.config.target_pps / self.estimate_packets_per_flow()

    # -- generation ---------------------------------------------------------

    def generate(self) -> Trace:
        """The full time-sorted trace (labelled NORMAL + BACKGROUND)."""
        config = self.config
        rate = self.resolved_flow_rate()
        rng = self._rng
        rows: List[tuple] = []
        now = config.start_time
        end = config.start_time + config.duration
        flows = 0
        while True:
            now += rng.expovariate(rate)
            if now >= end:
                break
            rows.extend(self._flow_rows(rng, now))
            flows += 1

        packets = _rows_to_array(rows)
        noise = self._generate_background(len(rows) / config.duration)
        if noise is not None and len(noise):
            packets = PacketArray.concatenate([packets, noise]).sorted_by_time()
        metadata = {
            "kind": f"modern-{config.mix}",
            "duration": config.duration,
            "flows": flows,
            "flow_rate": rate,
            "seed": config.seed,
            "num_networks": config.num_networks,
            "address_family": "ipv6-folded" if config.ipv6 else "ipv4",
            "nat_pool": config.nat_pool,
            "elephant_cap_packets": config.max_packets_per_flow,
        }
        trace = Trace(packets, self.protected, metadata)
        if config.asymmetry > 0:
            trace = asymmetric_route(trace, config.asymmetry,
                                     seed=config.seed)
        return trace

    def _generate_background(self, actual_pps: float) -> Optional[PacketArray]:
        config = self.config
        if config.background_noise_fraction <= 0:
            return None
        from repro.attacks.scanner import RandomScanAttack, ScanConfig
        from repro.net.packet import PacketLabel

        noise_pps = actual_pps * config.background_noise_fraction
        if noise_pps * config.duration < 1:
            return None
        scan = RandomScanAttack(
            ScanConfig(
                rate_pps=noise_pps,
                start=config.start_time,
                duration=config.duration,
                tcp_fraction=0.8,
                syn_fraction=0.7,
                seed=config.seed ^ 0xBA5E,
                label=PacketLabel.BACKGROUND,
            ),
            self.protected,
        )
        return scan.generate()


def _rows_to_array(rows: List[tuple]) -> PacketArray:
    data = np.zeros(len(rows), dtype=PACKET_DTYPE)
    if rows:
        ts, proto, src, sport, dst, dport, flags, size = zip(*rows)
        data["ts"] = ts
        data["proto"] = proto
        data["src"] = src
        data["sport"] = sport
        data["dst"] = dst
        data["dport"] = dport
        data["flags"] = flags
        data["size"] = size
    return PacketArray(data).sorted_by_time()


def asymmetric_route(trace: Trace, fraction: float, seed: int = 0) -> Trace:
    """Remove the outgoing half of a deterministic ``fraction`` of flows.

    Models hot-potato routing where a flow's requests leave through a path
    the filter does not sit on: the filter sees only the replies, never the
    outgoing packets that would have marked the bitmap.  Flow selection
    hashes the canonical 4-tuple with BLAKE2b, so the same flows are
    asymmetric on every run regardless of ``PYTHONHASHSEED``.

    Incoming and non-client packets are untouched — only *outgoing* packets
    of selected flows disappear from the filter's viewpoint.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError("fraction must be in [0, 1)")
    packets = trace.packets
    metadata = dict(trace.metadata)
    metadata["asymmetric_fraction"] = fraction
    if fraction == 0.0 or not len(packets):
        return Trace(packets, trace.protected, metadata)

    directions = packets.directions(trace.protected)
    outgoing = directions == 0
    # Canonical (local, lport, remote, rport) key per packet.
    local = np.where(outgoing, packets.src, packets.dst).astype(np.uint64)
    lport = np.where(outgoing, packets.sport, packets.dport).astype(np.uint64)
    remote = np.where(outgoing, packets.dst, packets.src).astype(np.uint64)
    rport = np.where(outgoing, packets.dport, packets.sport).astype(np.uint64)
    k1 = (local << np.uint64(16)) | lport
    k2 = (remote << np.uint64(16)) | rport

    threshold = int(fraction * (1 << 64))
    salt = seed.to_bytes(8, "big", signed=True)
    keys = np.stack([k1, k2], axis=1)
    unique, inverse = np.unique(keys, axis=0, return_inverse=True)
    chosen = np.zeros(len(unique), dtype=bool)
    for i, (a, b) in enumerate(unique):
        digest = hashlib.blake2b(
            int(a).to_bytes(8, "big") + int(b).to_bytes(8, "big") + salt,
            digest_size=8).digest()
        chosen[i] = int.from_bytes(digest, "big") < threshold
    drop = chosen[np.asarray(inverse).reshape(-1)] & outgoing
    return Trace(PacketArray(packets.data[~drop]), trace.protected, metadata)


def generate_modern_trace(
    mix: str = "web-search",
    duration: float = 60.0,
    target_pps: float = 400.0,
    seed: int = 42,
    **fields,
) -> Trace:
    """One-call convenience wrapper (mirrors ``generate_client_trace``)."""
    config = ModernWorkloadConfig(
        mix=mix, duration=duration, target_pps=target_pps, seed=seed,
        **fields)
    return ModernWorkload(config).generate()
