"""The client-network workload generator.

Produces a :class:`~repro.traffic.trace.Trace` of purely client-initiated
traffic for N class-C networks over a configurable duration — the synthetic
stand-in for the paper's 6-hour campus capture.  Sessions arrive as a
Poisson process; each picks a client host, an application profile (by
weight), a server from a Zipf-popularity pool, and an ephemeral source port
from the client's cycling allocator, then expands through
:class:`~repro.traffic.workload.SessionFactory`.

Calibration: ``WorkloadConfig.target_pps`` runs a short dry sample to
estimate packets-per-session and sets the session rate so the trace lands on
the requested packet rate (the paper's capture averaged 24.63K pps; scaled
runs use proportionally less, see DESIGN.md section 5).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.net.address import AddressSpace
from repro.net.packet import PACKET_DTYPE, PacketArray
from repro.net.protocols import EPHEMERAL_PORT_RANGE
from repro.traffic.applications import ApplicationProfile, default_application_mix
from repro.traffic.trace import Trace
from repro.traffic.workload import SessionFactory, SessionSpec


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the synthetic client-network workload."""

    first_network: str = "172.16.0.0"
    num_networks: int = 6          # the paper aggregates six class-C networks
    hosts_per_network: int = 50
    duration: float = 600.0
    session_rate: Optional[float] = None   # sessions per second
    target_pps: Optional[float] = None     # alternative: calibrate to a packet rate
    num_servers: int = 1500
    zipf_exponent: float = 1.1
    #: Unsolicited Internet radiation mixed into the trace, as a fraction of
    #: the overall packet rate.  Real captures always contain it ("there is
    #: always active attack traffic on the Internet" — Section 1); it is what
    #: both filters drop on a *clean* trace (Fig. 4's baseline drop rates).
    background_noise_fraction: float = 0.007
    seed: int = 42
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if (self.session_rate is None) == (self.target_pps is None):
            raise ValueError("specify exactly one of session_rate or target_pps")
        if self.num_networks < 1 or self.hosts_per_network < 1:
            raise ValueError("need at least one network and one host")


def diurnal_profile(peak_factor: float = 2.0, period: float = 86_400.0,
                    peak_at: float = 0.5) -> Callable[[float], float]:
    """A smooth day/night rate multiplier in [1, peak_factor].

    ``peak_at`` is the fraction of the period where the multiplier peaks.
    The paper's capture ran 10AM-4PM (near the diurnal peak, roughly flat);
    this knob lets longer synthetic runs model the full cycle.
    """
    if peak_factor < 1.0 or period <= 0:
        raise ValueError("need peak_factor >= 1 and a positive period")

    def profile(t: float) -> float:
        phase = 2.0 * math.pi * (t / period - peak_at)
        return 1.0 + (peak_factor - 1.0) * 0.5 * (1.0 + math.cos(phase))

    return profile


def burst_profile(bursts: Sequence[tuple],
                  base: float = 1.0) -> Callable[[float], float]:
    """A piecewise rate multiplier: ``bursts`` is (start, end, factor) triples.

    Models flash crowds — the legitimate traffic surges a volume-triggered
    defense confuses with attacks (Section 2's discussion).
    """
    for start, end, factor in bursts:
        if end <= start or factor <= 0:
            raise ValueError(f"bad burst ({start}, {end}, {factor})")

    def profile(t: float) -> float:
        for start, end, factor in bursts:
            if start <= t < end:
                return base * factor
        return base

    return profile


class ClientNetworkWorkload:
    """Generates the synthetic client-network trace."""

    #: Dry-run sample size for packets-per-session calibration.  Session
    #: packet counts are heavy-tailed (one long SSH session can carry
    #: thousands of packets), so the sample must be large for the mean to
    #: stabilize.
    _CALIBRATION_SESSIONS = 1500

    def __init__(
        self,
        config: WorkloadConfig,
        mix: Optional[Sequence[ApplicationProfile]] = None,
        rate_profile: Optional[Callable[[float], float]] = None,
    ):
        self.config = config
        #: Optional session-rate multiplier over time (non-homogeneous
        #: Poisson arrivals via thinning).  None = constant rate.
        self.rate_profile = rate_profile
        self.mix = tuple(mix if mix is not None else default_application_mix())
        if not self.mix:
            raise ValueError("application mix cannot be empty")
        self.protected = AddressSpace.class_c_block(
            config.first_network, config.num_networks
        )
        self._rng = random.Random(config.seed)
        self._factory = SessionFactory(self._rng)
        self._weights = [profile.weight for profile in self.mix]
        self._clients = self.protected.hosts(per_network=config.hosts_per_network)
        self._client_ports: Dict[int, int] = {}
        self._servers, self._server_weights = self._build_server_pool()

    # -- construction helpers ----------------------------------------------------

    def _build_server_pool(self) -> tuple:
        """Random external servers with Zipf popularity weights."""
        rng = random.Random(self.config.seed ^ 0x5E17E12)
        servers: List[int] = []
        while len(servers) < self.config.num_servers:
            addr = rng.randint(0x01000000, 0xDFFFFFFF)  # 1.0.0.0 - 223.255.255.255
            if not self.protected.contains_int(addr):
                servers.append(addr)
        ranks = np.arange(1, len(servers) + 1, dtype=float)
        weights = 1.0 / ranks**self.config.zipf_exponent
        return servers, (weights / weights.sum()).tolist()

    def _next_port(self, client: int) -> int:
        """Cycling ephemeral-port allocator per client host."""
        lo, hi = EPHEMERAL_PORT_RANGE
        span = hi - lo + 1
        current = self._client_ports.get(client)
        if current is None:
            current = lo + self._rng.randrange(span)
        else:
            current = lo + (current - lo + 1) % span
        self._client_ports[client] = current
        return current

    def _draw_spec(self, start_ts: float) -> SessionSpec:
        rng = self._rng
        profile = rng.choices(self.mix, weights=self._weights, k=1)[0]
        client = rng.choice(self._clients)
        server = rng.choices(self._servers, weights=self._server_weights, k=1)[0]
        return SessionSpec(
            profile=profile,
            client_addr=client,
            client_port=self._next_port(client),
            server_addr=server,
            server_port=profile.pick_port(rng),
            start_ts=start_ts,
        )

    # -- calibration -----------------------------------------------------------------

    def estimate_packets_per_session(self) -> float:
        """Mean packets per session for the current mix (dry run, own RNG)."""
        saved_rng = random.Random()
        saved_rng.setstate(self._rng.getstate())
        factory = SessionFactory(saved_rng)
        total = 0
        for _ in range(self._CALIBRATION_SESSIONS):
            profile = saved_rng.choices(self.mix, weights=self._weights, k=1)[0]
            spec = SessionSpec(
                profile=profile,
                client_addr=self._clients[0],
                client_port=10000,
                server_addr=0x08080808,
                server_port=profile.pick_port(saved_rng),
                start_ts=0.0,
            )
            total += len(factory.build(spec))
        return total / self._CALIBRATION_SESSIONS

    def resolved_session_rate(self) -> float:
        if self.config.session_rate is not None:
            return self.config.session_rate
        per_session = self.estimate_packets_per_session()
        assert self.config.target_pps is not None
        return self.config.target_pps / per_session

    # -- generation -------------------------------------------------------------------

    def generate(self) -> Trace:
        """Build the full trace (time-sorted, labelled NORMAL)."""
        config = self.config
        rate = self.resolved_session_rate()
        rng = self._rng
        rows: List[tuple] = []
        now = config.start_time
        end = config.start_time + config.duration
        sessions = 0
        profile = self.rate_profile
        if profile is None:
            while True:
                now += rng.expovariate(rate)
                if now >= end:
                    break
                rows.extend(self._factory.build(self._draw_spec(now)))
                sessions += 1
        else:
            # Non-homogeneous Poisson by thinning: candidates at the peak
            # rate, accepted with probability profile(t)/peak.
            peak = max(profile(config.start_time + i * config.duration / 200.0)
                       for i in range(201))
            if peak <= 0:
                raise ValueError("rate profile must be positive somewhere")
            while True:
                now += rng.expovariate(rate * peak)
                if now >= end:
                    break
                if rng.random() < profile(now) / peak:
                    rows.extend(self._factory.build(self._draw_spec(now)))
                    sessions += 1

        packets = self._rows_to_array(rows)
        actual_pps = len(rows) / config.duration
        noise = self._generate_background(actual_pps)
        if noise is not None and len(noise):
            packets = PacketArray.concatenate([packets, noise]).sorted_by_time()
        metadata = {
            "kind": "client-workload",
            "duration": config.duration,
            "sessions": sessions,
            "session_rate": rate,
            "seed": config.seed,
            "num_networks": config.num_networks,
        }
        return Trace(packets, self.protected, metadata)

    def _generate_background(self, actual_pps: float) -> Optional[PacketArray]:
        """Low-rate unsolicited background radiation (label BACKGROUND).

        Sized from the packet rate actually generated, so the noise share is
        stable even when the pps calibration lands off-target.
        """
        config = self.config
        if config.background_noise_fraction <= 0:
            return None
        from repro.attacks.scanner import RandomScanAttack, ScanConfig
        from repro.net.packet import PacketLabel

        noise_pps = actual_pps * config.background_noise_fraction
        if noise_pps * config.duration < 1:
            return None
        scan = RandomScanAttack(
            ScanConfig(
                rate_pps=noise_pps,
                start=config.start_time,
                duration=config.duration,
                tcp_fraction=0.8,
                syn_fraction=0.7,
                seed=config.seed ^ 0xBA5E,
                label=PacketLabel.BACKGROUND,
            ),
            self.protected,
        )
        return scan.generate()

    @staticmethod
    def _rows_to_array(rows: List[tuple]) -> PacketArray:
        data = np.zeros(len(rows), dtype=PACKET_DTYPE)
        if rows:
            ts, proto, src, sport, dst, dport, flags, size = zip(*rows)
            data["ts"] = ts
            data["proto"] = proto
            data["src"] = src
            data["sport"] = sport
            data["dst"] = dst
            data["dport"] = dport
            data["flags"] = flags
            data["size"] = size
        return PacketArray(data).sorted_by_time()


def generate_client_trace(
    duration: float = 600.0,
    target_pps: float = 1000.0,
    seed: int = 42,
    num_networks: int = 6,
    hosts_per_network: int = 50,
) -> Trace:
    """One-call convenience wrapper used by examples and benchmarks."""
    config = WorkloadConfig(
        duration=duration,
        target_pps=target_pps,
        seed=seed,
        num_networks=num_networks,
        hosts_per_network=hosts_per_network,
    )
    return ClientNetworkWorkload(config).generate()
