"""Trace containers: a packet stream plus the client networks it belongs to.

A :class:`Trace` bundles a time-sorted :class:`~repro.net.packet.PacketArray`
with the protected :class:`~repro.net.address.AddressSpace` and metadata.
It supports merging (e.g. normal + attack traffic), slicing, persistence to
``.npz``/CSV, and a :class:`TraceSummary` mirroring the fields the paper
reports for its capture (packet rate, TCP/UDP shares, mean size, bandwidth).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.net.address import AddressSpace, IPv4Network
from repro.net.packet import PACKET_DTYPE, PacketArray
from repro.net.protocols import IPPROTO_TCP, IPPROTO_UDP


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate statistics in the shape of the paper's Section 3.2 summary."""

    num_packets: int
    duration: float
    packets_per_second: float
    tcp_fraction: float
    udp_fraction: float
    mean_packet_size: float
    bandwidth_mbps: float
    attack_fraction: float

    def describe(self) -> str:
        return (
            f"{self.num_packets} packets over {self.duration:.1f}s "
            f"({self.packets_per_second / 1000.0:.2f}K pps), "
            f"{self.tcp_fraction * 100:.2f}% TCP / {self.udp_fraction * 100:.2f}% UDP, "
            f"mean size {self.mean_packet_size:.0f}B, "
            f"{self.bandwidth_mbps:.2f} Mbps, "
            f"{self.attack_fraction * 100:.2f}% attack"
        )


class Trace:
    """A packet trace bound to the client address space it was captured at."""

    def __init__(
        self,
        packets: PacketArray,
        protected: AddressSpace,
        metadata: Optional[Dict[str, object]] = None,
    ):
        self.packets = packets
        self.protected = protected
        self.metadata: Dict[str, object] = dict(metadata or {})

    # -- basic accessors ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.packets)

    @property
    def duration(self) -> float:
        """Configured duration if present in metadata, else the packet span."""
        configured = self.metadata.get("duration")
        if isinstance(configured, (int, float)) and configured > 0:
            return float(configured)
        if not len(self.packets):
            return 0.0
        return float(self.packets.ts.max() - self.packets.ts.min())

    def digest(self) -> str:
        """SHA-256 over the raw packet table, as a hex string.

        Two traces digest equal iff every field of every packet is
        byte-for-byte identical, which makes this the seed-stability
        fingerprint: the same workload seed must reproduce the same digest
        across runs, platforms, and ``PYTHONHASHSEED`` values.
        """
        import hashlib

        data = np.ascontiguousarray(self.packets.data)
        return hashlib.sha256(data.tobytes()).hexdigest()

    def summary(self) -> TraceSummary:
        pkts = self.packets
        n = len(pkts)
        duration = self.duration or 1.0
        if not n:
            return TraceSummary(0, duration, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        tcp = int((pkts.proto == IPPROTO_TCP).sum())
        udp = int((pkts.proto == IPPROTO_UDP).sum())
        mean_size = float(pkts.size.mean())
        total_bytes = float(pkts.size.sum(dtype=np.int64))
        return TraceSummary(
            num_packets=n,
            duration=duration,
            packets_per_second=n / duration,
            tcp_fraction=tcp / n,
            udp_fraction=udp / n,
            mean_packet_size=mean_size,
            bandwidth_mbps=total_bytes * 8.0 / duration / 1e6,
            attack_fraction=float((pkts.label == 1).mean()),
        )

    # -- combination ----------------------------------------------------------

    def merged_with(self, *others: "Trace") -> "Trace":
        """Time-sorted union of this trace with others (same address space)."""
        arrays = [self.packets] + [other.packets for other in others]
        merged = PacketArray.concatenate(arrays).sorted_by_time()
        metadata = dict(self.metadata)
        metadata["merged_from"] = 1 + len(others)
        durations = [self.duration] + [other.duration for other in others]
        metadata["duration"] = max(durations)
        return Trace(merged, self.protected, metadata)

    def time_slice(self, start: float, end: float) -> "Trace":
        sliced = self.packets.time_slice(start, end)
        metadata = dict(self.metadata)
        metadata["duration"] = end - start
        return Trace(sliced, self.protected, metadata)

    # -- persistence -------------------------------------------------------------

    def save_npz(self, path: Union[str, Path]) -> None:
        """Binary persistence: packet table + JSON-encoded metadata."""
        path = Path(path)
        meta = dict(self.metadata)
        meta["protected_networks"] = [str(net) for net in self.protected.networks]
        np.savez_compressed(path, packets=self.packets.data, metadata=json.dumps(meta))

    @classmethod
    def load_npz(cls, path: Union[str, Path]) -> "Trace":
        with np.load(Path(path), allow_pickle=False) as archive:
            data = archive["packets"]
            meta = json.loads(str(archive["metadata"]))
        if data.dtype != PACKET_DTYPE:
            raise ValueError(f"unexpected packet dtype in {path}: {data.dtype}")
        networks = [IPv4Network.parse(text) for text in meta.pop("protected_networks")]
        return cls(PacketArray(data.copy()), AddressSpace(networks), meta)

    def save_csv(self, path: Union[str, Path]) -> None:
        """Human-inspectable CSV dump (ts, proto, src, sport, dst, dport, flags, size, label)."""
        pkts = self.packets
        header = "ts,proto,src,sport,dst,dport,flags,size,label"
        columns = np.column_stack(
            [
                pkts.ts,
                pkts.proto,
                pkts.src,
                pkts.sport,
                pkts.dst,
                pkts.dport,
                pkts.flags,
                pkts.size,
                pkts.label,
            ]
        )
        np.savetxt(
            Path(path),
            columns,
            delimiter=",",
            header=header,
            comments="",
            fmt=["%.6f"] + ["%d"] * 8,
        )

    @classmethod
    def load_csv(cls, path: Union[str, Path], protected: AddressSpace) -> "Trace":
        raw = np.loadtxt(Path(path), delimiter=",", skiprows=1, ndmin=2)
        packets = PacketArray.from_fields(
            ts=raw[:, 0],
            proto=raw[:, 1].astype(np.uint8),
            src=raw[:, 2].astype(np.uint32),
            sport=raw[:, 3].astype(np.uint16),
            dst=raw[:, 4].astype(np.uint32),
            dport=raw[:, 5].astype(np.uint16),
            flags=raw[:, 6].astype(np.uint8),
            size=raw[:, 7].astype(np.uint16),
            label=raw[:, 8].astype(np.uint8),
        )
        return cls(packets, protected)

    def __repr__(self) -> str:
        return f"Trace(n={len(self)}, duration={self.duration:.1f}s)"
