"""Application profiles composing the client-network traffic mix.

A client network's traffic is a blend of client-initiated applications.
Each :class:`ApplicationProfile` describes one application's shape: transport
protocol, server port(s), request/response exchange pacing, packets per
exchange, and — crucial for reproducing Figure 2b — the *server idle-close*
behaviour: HTTP-era servers tear down idle persistent connections after a
keep-alive timeout that is almost always a multiple of 15/30/60 seconds,
which is exactly what produces the paper's out-in delay peaks "interleaved
with intervals of roughly 30 or 60 seconds".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.net.protocols import (
    IPPROTO_TCP,
    IPPROTO_UDP,
    PORT_DNS,
    PORT_FTP,
    PORT_HTTP,
    PORT_HTTPS,
    PORT_IMAP,
    PORT_NTP,
    PORT_POP3,
    PORT_SMTP,
    PORT_SSH,
    PORT_TELNET,
)


@dataclass(frozen=True)
class ApplicationProfile:
    """Statistical shape of one application's sessions.

    Attributes
    ----------
    name:
        Human-readable label.
    protocol:
        IPPROTO_TCP or IPPROTO_UDP.
    server_ports:
        Candidate destination ports (one is drawn per session).
    weight:
        Relative share of *sessions* (not packets) in the mix.
    mean_think_time:
        Mean seconds between request/response exchanges inside a session.
    request_packets / response_packets:
        (lo, hi) packets per exchange in each direction.
    server_close_probability:
        Chance the *server* ends the session by an idle-timeout FIN instead
        of the client closing actively.
    server_idle_close_choices:
        Candidate keep-alive timeouts for a server-initiated close (seconds;
        multiples of 15/30/60 in the wild).
    lifetime_scale:
        Multiplier applied to the sampled base lifetime — lets SSH sessions
        run long and DNS exchanges stay short without separate samplers.
    inbound_channels:
        (lo, hi) count of *server-initiated* data channels per session —
        active-mode FTP and P2P behaviour (Section 5.1).  Zero for ordinary
        client-initiated applications.
    hole_punch_probability:
        Chance the client punches a hole (sends the Section 5.1 marking
        packet) before each inbound channel.  1.0 models a filter-aware
        client; 0.0 models a legacy client whose inbound channels a bitmap
        filter will break.
    """

    name: str
    protocol: int
    server_ports: Tuple[int, ...]
    weight: float
    mean_think_time: float = 5.0
    request_packets: Tuple[int, int] = (1, 2)
    response_packets: Tuple[int, int] = (1, 4)
    server_close_probability: float = 0.0
    server_idle_close_choices: Tuple[float, ...] = ()
    lifetime_scale: float = 1.0
    inbound_channels: Tuple[int, int] = (0, 0)
    hole_punch_probability: float = 1.0

    def __post_init__(self) -> None:
        if self.protocol not in (IPPROTO_TCP, IPPROTO_UDP):
            raise ValueError(f"unsupported protocol {self.protocol} for {self.name}")
        if self.weight < 0:
            raise ValueError("profile weight cannot be negative")
        if self.server_close_probability and not self.server_idle_close_choices:
            raise ValueError(
                f"{self.name}: server_close_probability needs idle-close choices"
            )

    @property
    def is_tcp(self) -> bool:
        return self.protocol == IPPROTO_TCP

    def pick_port(self, rng: random.Random) -> int:
        return rng.choice(self.server_ports)

    def pick_idle_close(self, rng: random.Random) -> float:
        """One server keep-alive timeout, with +-10% jitter."""
        base = rng.choice(self.server_idle_close_choices)
        return base * rng.uniform(0.92, 1.08)


def default_application_mix() -> Sequence[ApplicationProfile]:
    """The calibrated default mix.

    Weights are *session* shares chosen so the generated *packet* mix lands
    near the paper's 96.25% TCP / 3.75% UDP (UDP sessions carry only a
    handful of packets each, so they need a much larger session share than
    packet share).
    """
    return (
        ApplicationProfile(
            name="http",
            protocol=IPPROTO_TCP,
            server_ports=(PORT_HTTP, 8080),
            weight=0.34,
            mean_think_time=4.0,
            request_packets=(1, 2),
            response_packets=(2, 6),
            server_close_probability=0.20,
            server_idle_close_choices=(15.0, 30.0, 60.0),
        ),
        ApplicationProfile(
            name="https",
            protocol=IPPROTO_TCP,
            server_ports=(PORT_HTTPS,),
            weight=0.17,
            mean_think_time=4.0,
            request_packets=(1, 2),
            response_packets=(2, 6),
            server_close_probability=0.20,
            server_idle_close_choices=(30.0, 60.0, 120.0),
        ),
        ApplicationProfile(
            name="smtp",
            protocol=IPPROTO_TCP,
            server_ports=(PORT_SMTP,),
            weight=0.03,
            mean_think_time=2.0,
            response_packets=(1, 2),
        ),
        ApplicationProfile(
            name="pop3",
            protocol=IPPROTO_TCP,
            server_ports=(PORT_POP3,),
            weight=0.03,
            mean_think_time=2.0,
            response_packets=(1, 3),
        ),
        ApplicationProfile(
            name="imap",
            protocol=IPPROTO_TCP,
            server_ports=(PORT_IMAP,),
            weight=0.02,
            mean_think_time=8.0,
            response_packets=(1, 3),
            server_close_probability=0.30,
            server_idle_close_choices=(60.0, 120.0, 240.0),
        ),
        ApplicationProfile(
            name="ssh",
            protocol=IPPROTO_TCP,
            server_ports=(PORT_SSH,),
            weight=0.03,
            mean_think_time=12.0,
            request_packets=(1, 1),
            response_packets=(1, 2),
            lifetime_scale=4.0,
        ),
        ApplicationProfile(
            name="telnet",
            protocol=IPPROTO_TCP,
            server_ports=(PORT_TELNET,),
            weight=0.01,
            mean_think_time=10.0,
            request_packets=(1, 1),
            response_packets=(1, 1),
            lifetime_scale=3.0,
        ),
        ApplicationProfile(
            name="ftp",
            protocol=IPPROTO_TCP,
            server_ports=(PORT_FTP,),
            weight=0.02,
            mean_think_time=6.0,
            response_packets=(2, 8),
        ),
        ApplicationProfile(
            name="dns",
            protocol=IPPROTO_UDP,
            server_ports=(PORT_DNS,),
            weight=0.33,
            mean_think_time=0.5,
            request_packets=(1, 1),
            response_packets=(1, 1),
        ),
        ApplicationProfile(
            name="ntp",
            protocol=IPPROTO_UDP,
            server_ports=(PORT_NTP,),
            weight=0.07,
            mean_think_time=1.0,
            request_packets=(1, 1),
            response_packets=(1, 1),
        ),
    )


def p2p_profile(weight: float = 0.05, hole_punch_probability: float = 1.0) -> ApplicationProfile:
    """A peer-to-peer profile with server-initiated data channels.

    Not part of :func:`default_application_mix` (the paper's campus trace
    predates heavy P2P symmetry); add it explicitly to study the Section 5.1
    compatibility question inside the full workload.
    """
    return ApplicationProfile(
        name="p2p",
        protocol=IPPROTO_TCP,
        server_ports=(6881, 6889, 4662),
        weight=weight,
        mean_think_time=8.0,
        request_packets=(1, 2),
        response_packets=(1, 4),
        lifetime_scale=2.0,
        inbound_channels=(1, 3),
        hole_punch_probability=hole_punch_probability,
    )


def active_ftp_profile(weight: float = 0.02,
                       hole_punch_probability: float = 1.0) -> ApplicationProfile:
    """Active-mode FTP: one server-initiated data channel per session."""
    return ApplicationProfile(
        name="ftp-active",
        protocol=IPPROTO_TCP,
        server_ports=(PORT_FTP,),
        weight=weight,
        mean_think_time=6.0,
        response_packets=(1, 3),
        inbound_channels=(1, 1),
        hole_punch_probability=hole_punch_probability,
    )


def profile_by_name(
    name: str, mix: Optional[Sequence[ApplicationProfile]] = None
) -> ApplicationProfile:
    """Look up a profile in a mix (default mix if none given)."""
    for profile in mix or default_application_mix():
        if profile.name == name:
            return profile
    raise KeyError(f"no application profile named {name!r}")
