"""Synthetic client-network traffic calibrated to the paper's trace statistics.

The paper's evaluation uses a 6-hour packet trace of six class-C campus
networks (Section 3.2): 96.25% TCP / 3.75% UDP, ~24.63K pps average, 720-byte
average packets, connection lifetimes with 90% < 76 s / 95% < 6 min /
<1% > 515 s, and out-in packet delays with 95% < 0.8 s / 99% < 2.8 s plus
port-reuse echo peaks at multiples of ~30/60 s.  That trace is not public, so
this package generates a synthetic equivalent whose *measured* statistics
match those published numbers — which are the only properties of the trace
the filter's behaviour depends on.
"""

from repro.traffic.applications import ApplicationProfile, default_application_mix
from repro.traffic.distributions import (
    LifetimeDistribution,
    PacketSizeDistribution,
    ReplyDelayDistribution,
)
from repro.traffic.generator import ClientNetworkWorkload, WorkloadConfig
from repro.traffic.modern import (
    DATA_MINING,
    WEB_SEARCH,
    FlowSizeCDF,
    Ipv6Folding,
    ModernWorkload,
    ModernWorkloadConfig,
    NatPool,
    asymmetric_route,
    generate_modern_trace,
    mix_cdf,
)
from repro.traffic.trace import Trace, TraceSummary

__all__ = [
    "ApplicationProfile",
    "default_application_mix",
    "LifetimeDistribution",
    "PacketSizeDistribution",
    "ReplyDelayDistribution",
    "ClientNetworkWorkload",
    "WorkloadConfig",
    "DATA_MINING",
    "WEB_SEARCH",
    "FlowSizeCDF",
    "Ipv6Folding",
    "ModernWorkload",
    "ModernWorkloadConfig",
    "NatPool",
    "asymmetric_route",
    "generate_modern_trace",
    "mix_cdf",
    "Trace",
    "TraceSummary",
]
