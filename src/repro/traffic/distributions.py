"""Samplers calibrated to the paper's Figure 2 statistics.

Each distribution is a small mixture whose parameters were tuned so that the
*sampled* percentiles land on the numbers Section 3.2 reports; the
calibration is asserted by ``tests/traffic/test_distributions.py``.

- :class:`LifetimeDistribution` — TCP connection lifetime (Fig. 2a):
  90% < 76 s, 95% under ~6 min, <1% above 515 s, max ~6 h.
- :class:`ReplyDelayDistribution` — out-in packet delay for genuine replies
  (Fig. 2c): 95% < 0.8 s, 99% < 2.8 s; mass concentrated below 100 ms.
  (The 30/60 s peaks of Fig. 2b come from server idle-close behaviour in the
  session model, not from this sampler.)
- :class:`PacketSizeDistribution` — bimodal sizes (ACK-sized vs MTU-sized)
  averaging ~720 bytes, the trace's mean packet size.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class _LogNormalComponent:
    weight: float
    median: float   # exp(mu)
    sigma: float


class _LogNormalMixture:
    """Weighted mixture of lognormal components with an upper cap."""

    def __init__(self, components: Sequence[_LogNormalComponent], cap: float):
        total = sum(component.weight for component in components)
        if not math.isclose(total, 1.0, rel_tol=1e-6):
            raise ValueError(f"component weights must sum to 1, got {total}")
        self._components = tuple(components)
        self._weights = tuple(component.weight for component in components)
        self._cap = cap

    def sample(self, rng: random.Random) -> float:
        component = rng.choices(self._components, weights=self._weights, k=1)[0]
        value = rng.lognormvariate(math.log(component.median), component.sigma)
        return min(value, self._cap)

    def sample_many(self, rng: random.Random, count: int) -> List[float]:
        return [self.sample(rng) for _ in range(count)]


class LifetimeDistribution:
    """TCP connection lifetime sampler (Fig. 2a calibration).

    Mixture intuition: the bulk are short web-style connections (seconds),
    a quarter are interactive/medium transfers (tens of seconds), and a thin
    tail are long-lived sessions (SSH, streaming) up to the 6-hour trace
    horizon.
    """

    #: Calibrated components: (weight, median seconds, sigma).
    COMPONENTS = (
        _LogNormalComponent(0.62, 3.0, 1.20),
        _LogNormalComponent(0.30, 16.0, 0.80),
        _LogNormalComponent(0.075, 115.0, 0.55),
        _LogNormalComponent(0.005, 1500.0, 1.00),
    )

    #: Trace horizon — the paper's capture was six hours.
    MAX_LIFETIME = 6 * 3600.0

    def __init__(self):
        self._mixture = _LogNormalMixture(self.COMPONENTS, self.MAX_LIFETIME)

    def sample(self, rng: random.Random) -> float:
        return self._mixture.sample(rng)

    def sample_many(self, rng: random.Random, count: int) -> List[float]:
        return self._mixture.sample_many(rng, count)


class ReplyDelayDistribution:
    """Out-in reply delay sampler (Fig. 2c calibration).

    Three regimes: LAN/regional RTTs (tens of ms), delayed-ACK and
    long-haul responses (~100-400 ms), and slow servers / retransmissions
    (seconds).  95% of samples fall under 0.8 s and 99% under 2.8 s.
    """

    COMPONENTS = (
        _LogNormalComponent(0.80, 0.035, 0.90),
        _LogNormalComponent(0.17, 0.250, 0.60),
        _LogNormalComponent(0.03, 1.000, 0.50),
    )

    #: Replies slower than this would be dropped by any reasonable expiry
    #: timer anyway; cap keeps the session timeline sane.
    MAX_DELAY = 8.0

    def __init__(self):
        self._mixture = _LogNormalMixture(self.COMPONENTS, self.MAX_DELAY)

    def sample(self, rng: random.Random) -> float:
        return self._mixture.sample(rng)

    def sample_many(self, rng: random.Random, count: int) -> List[float]:
        return self._mixture.sample_many(rng, count)


class PacketSizeDistribution:
    """Bimodal packet sizes averaging ~720 bytes (the trace mean).

    Internet packet sizes are famously bimodal: ~40-64 B control/ACK
    packets and ~1400-1500 B MTU-limited data packets.  The mode split is
    tuned so the *trace-wide* mean (data plus control packets) lands on the
    paper's 720 B.
    """

    SMALL_RANGE: Tuple[int, int] = (40, 120)
    LARGE_RANGE: Tuple[int, int] = (1200, 1500)
    SMALL_WEIGHT = 0.27

    def sample_data(self, rng: random.Random) -> int:
        """Size of a data-bearing packet."""
        if rng.random() < self.SMALL_WEIGHT:
            return rng.randint(*self.SMALL_RANGE)
        return rng.randint(*self.LARGE_RANGE)

    def sample_control(self, rng: random.Random) -> int:
        """Size of a control packet (SYN/ACK/FIN)."""
        return rng.randint(40, 60)


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of pre-sorted data (q in [0, 100])."""
    if not sorted_values:
        raise ValueError("cannot take a percentile of no data")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]
