"""The session model: application profiles → packet timelines.

A *session* is one client-initiated connection (TCP) or transaction train
(UDP).  :class:`SessionFactory` expands a session into a list of packet
tuples — ``(ts, proto, src, sport, dst, dport, flags, size)`` — which the
generator batches into a :class:`~repro.net.packet.PacketArray` without ever
materializing per-packet objects (sessions are the unit of work, packets are
rows).

Timeline of a TCP session::

    out SYN ──> in SYN+ACK ──> out ACK            (handshake)
    repeat: out request(s) ──> in response(s) ──> out ACK   (exchanges)
    close:  client FIN / server idle-timeout FIN / RST

Server idle-timeout closes arrive 15-240 s (multiples of ~15/30/60 s, with
jitter) after the last activity — the mechanism behind Figure 2b's comb of
out-in-delay peaks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.net.packet import TcpFlags
from repro.traffic.applications import ApplicationProfile
from repro.traffic.distributions import (
    LifetimeDistribution,
    PacketSizeDistribution,
    ReplyDelayDistribution,
)

#: A packet as a plain tuple (ts, proto, src, sport, dst, dport, flags, size).
PacketTuple = Tuple[float, int, int, int, int, int, int, int]

_SYN = int(TcpFlags.SYN)
_SYNACK = int(TcpFlags.SYN | TcpFlags.ACK)
_ACK = int(TcpFlags.ACK)
_PSH_ACK = int(TcpFlags.PSH | TcpFlags.ACK)
_FIN_ACK = int(TcpFlags.FIN | TcpFlags.ACK)
_RST = int(TcpFlags.RST)
_NONE = int(TcpFlags.NONE)

#: Client-side turnaround between receiving and answering (seconds).
_TURNAROUND = 0.002
#: Gap between back-to-back packets of one train.
_TRAIN_GAP = 0.0015


@dataclass(frozen=True)
class SessionSpec:
    """Everything needed to expand one session into packets."""

    profile: ApplicationProfile
    client_addr: int
    client_port: int
    server_addr: int
    server_port: int
    start_ts: float


class SessionFactory:
    """Expands :class:`SessionSpec` into packet tuples.

    One factory per workload; owns the calibrated distributions and an RNG
    so expansions are deterministic given the seed.
    """

    def __init__(self, rng: random.Random):
        self._rng = rng
        self.lifetimes = LifetimeDistribution()
        self.delays = ReplyDelayDistribution()
        self.sizes = PacketSizeDistribution()
        #: Fraction of TCP sessions that end in an abortive RST.
        self.rst_close_probability = 0.05
        #: Fraction of TCP sessions followed by a post-close straggler — a
        #: retransmitted/duplicate packet from the server arriving after the
        #: connection is torn down (real traces are full of these; they are
        #: the packets a close-tracking SPI filter drops "precisely").
        self.straggler_probability = 0.19
        #: Of the stragglers, how many arrive shortly after the close (inside
        #: the bitmap's expiry window) versus much later (outside it).
        self.short_straggler_fraction = 0.82

    # -- public ------------------------------------------------------------

    def build(self, spec: SessionSpec) -> List[PacketTuple]:
        """All packets of one session, in timestamp order."""
        if spec.profile.is_tcp:
            return self._build_tcp(spec)
        return self._build_udp(spec)

    def sample_lifetime(self, profile: ApplicationProfile) -> float:
        return self.lifetimes.sample(self._rng) * profile.lifetime_scale

    # -- helpers -------------------------------------------------------------

    def _out(
        self, pkts: List[PacketTuple], ts: float, spec: SessionSpec, flags: int, size: int
    ) -> None:
        pkts.append(
            (
                ts,
                spec.profile.protocol,
                spec.client_addr,
                spec.client_port,
                spec.server_addr,
                spec.server_port,
                flags,
                size,
            )
        )

    def _in(
        self, pkts: List[PacketTuple], ts: float, spec: SessionSpec, flags: int, size: int
    ) -> None:
        pkts.append(
            (
                ts,
                spec.profile.protocol,
                spec.server_addr,
                spec.server_port,
                spec.client_addr,
                spec.client_port,
                flags,
                size,
            )
        )

    # -- TCP ------------------------------------------------------------------

    def _build_tcp(self, spec: SessionSpec) -> List[PacketTuple]:
        rng = self._rng
        profile = spec.profile
        pkts: List[PacketTuple] = []
        lifetime = self.sample_lifetime(profile)
        deadline = spec.start_ts + lifetime

        # Handshake.
        now = spec.start_ts
        self._out(pkts, now, spec, _SYN, self.sizes.sample_control(rng))
        handshake_delay = self.delays.sample(rng)
        now += handshake_delay
        self._in(pkts, now, spec, _SYNACK, self.sizes.sample_control(rng))
        now += _TURNAROUND
        self._out(pkts, now, spec, _ACK, self.sizes.sample_control(rng))

        # Request/response exchanges until the sampled lifetime is spent.
        last_incoming = now
        while True:
            now = self._exchange(pkts, now, spec)
            last_incoming = now
            think = rng.expovariate(1.0 / profile.mean_think_time)
            if now + think >= deadline:
                break
            now += think

        # Close.
        close_roll = rng.random()
        if close_roll < self.rst_close_probability:
            # Abortive close: a bare RST from whichever side gives up.
            now += rng.uniform(0.001, 0.5)
            if rng.random() < 0.5:
                self._out(pkts, now, spec, _RST, 40)
            else:
                self._in(pkts, now, spec, _RST, 40)
            close_ts = now
        elif (
            profile.server_close_probability
            and close_roll < self.rst_close_probability + profile.server_close_probability
        ):
            # Server idle-timeout close: the FIN arrives a keep-alive
            # timeout after the last activity (Figure 2b's peaks).
            idle = profile.pick_idle_close(rng)
            fin_ts = last_incoming + idle
            self._in(pkts, fin_ts, spec, _FIN_ACK, 40)
            t = fin_ts + _TURNAROUND
            self._out(pkts, t, spec, _ACK, 40)
            self._out(pkts, t + _TRAIN_GAP, spec, _FIN_ACK, 40)
            self._in(pkts, t + _TRAIN_GAP + self.delays.sample(rng), spec, _ACK, 40)
            close_ts = t + _TRAIN_GAP
        else:
            # Active client close.
            now += rng.uniform(0.001, 0.5)
            self._out(pkts, now, spec, _FIN_ACK, 40)
            reply_ts = now + self.delays.sample(rng)
            self._in(pkts, reply_ts, spec, _FIN_ACK, 40)
            self._out(pkts, reply_ts + _TURNAROUND, spec, _ACK, 40)
            close_ts = reply_ts + _TURNAROUND

        # Post-close straggler: a duplicate/retransmitted server packet.
        if rng.random() < self.straggler_probability:
            if rng.random() < self.short_straggler_fraction:
                delay = rng.uniform(3.0, 12.0)    # inside the bitmap's window
            else:
                delay = rng.uniform(25.0, 90.0)   # outside it
            self._in(pkts, close_ts + delay, spec, _PSH_ACK, self.sizes.sample_data(rng))

        # Server-initiated data channels (active FTP / P2P, Section 5.1).
        lo, hi = profile.inbound_channels
        if hi > 0:
            pkts.extend(self._inbound_channels(spec, rng.randint(lo, hi),
                                               spec.start_ts + 0.5))
            pkts.sort(key=lambda row: row[0])
        return pkts

    def _inbound_channels(self, spec: SessionSpec, count: int,
                          start: float) -> List[PacketTuple]:
        """Server-initiated data channels, optionally hole-punched first.

        The remote side connects from a fresh source port to a new local
        port the client announced in-band.  A filter-aware client sends the
        Section 5.1 punch packet (from the announced local port toward the
        server) right before each inbound connect.
        """
        rng = self._rng
        rows: List[PacketTuple] = []
        t = start
        for channel in range(count):
            local_port = (spec.client_port + 1 + channel) % 64512 + 1024
            remote_port = rng.randint(1024, 65535)
            t += rng.uniform(0.2, 3.0)
            if rng.random() < spec.profile.hole_punch_probability:
                # The punch: any outgoing packet from (client, local_port)
                # to the server (its port is irrelevant to the bitmap key).
                rows.append((t, spec.profile.protocol, spec.client_addr,
                             local_port, spec.server_addr,
                             rng.randint(1024, 65535), _ACK, 40))
                t += 0.01
            # Inbound SYN from the server's fresh source port.
            rows.append((t, spec.profile.protocol, spec.server_addr,
                         remote_port, spec.client_addr, local_port, _SYN, 48))
            handshake = t + self.delays.sample(rng)
            rows.append((handshake, spec.profile.protocol, spec.client_addr,
                         local_port, spec.server_addr, remote_port,
                         _SYNACK, 48))
            # A short burst of inbound data, acked by the client.
            data_t = handshake + _TURNAROUND
            for i in range(rng.randint(2, 6)):
                rows.append((data_t + i * _TRAIN_GAP, spec.profile.protocol,
                             spec.server_addr, remote_port, spec.client_addr,
                             local_port, _PSH_ACK, self.sizes.sample_data(rng)))
            rows.append((data_t + 6 * _TRAIN_GAP, spec.profile.protocol,
                         spec.client_addr, local_port, spec.server_addr,
                         remote_port, _ACK, 40))
            t = data_t + 6 * _TRAIN_GAP
        return rows

    def _exchange(self, pkts: List[PacketTuple], now: float, spec: SessionSpec) -> float:
        """One request/response round; returns the finish timestamp."""
        rng = self._rng
        profile = spec.profile
        n_req = rng.randint(*profile.request_packets)
        for i in range(n_req):
            self._out(pkts, now + i * _TRAIN_GAP, spec, _PSH_ACK, self.sizes.sample_data(rng))
        now += (n_req - 1) * _TRAIN_GAP + self.delays.sample(rng)
        n_resp = rng.randint(*profile.response_packets)
        for i in range(n_resp):
            self._in(pkts, now + i * _TRAIN_GAP, spec, _PSH_ACK, self.sizes.sample_data(rng))
        now += (n_resp - 1) * _TRAIN_GAP + _TURNAROUND
        # Client acknowledges the response train.
        self._out(pkts, now, spec, _ACK, self.sizes.sample_control(rng))
        return now

    # -- UDP ---------------------------------------------------------------------

    def _build_udp(self, spec: SessionSpec) -> List[PacketTuple]:
        rng = self._rng
        profile = spec.profile
        pkts: List[PacketTuple] = []
        now = spec.start_ts
        rounds = rng.randint(1, 3)
        for round_index in range(rounds):
            n_req = rng.randint(*profile.request_packets)
            for i in range(n_req):
                self._out(pkts, now + i * _TRAIN_GAP, spec, _NONE, rng.randint(60, 300))
            now += (n_req - 1) * _TRAIN_GAP + self.delays.sample(rng)
            n_resp = rng.randint(*profile.response_packets)
            for i in range(n_resp):
                self._in(pkts, now + i * _TRAIN_GAP, spec, _NONE, rng.randint(80, 500))
            now += (n_resp - 1) * _TRAIN_GAP
            if round_index + 1 < rounds:
                now += rng.expovariate(1.0 / profile.mean_think_time)
        return pkts
