"""Classic libpcap import/export for simulated traces.

Lets the synthetic workloads interoperate with real tooling: a trace written
by :func:`write_pcap` opens in tcpdump/Wireshark/scapy, and captures of
simple TCP/UDP-over-IPv4 traffic read back into a
:class:`~repro.net.packet.PacketArray`.

Format notes:

- Classic pcap (not pcapng), microsecond timestamps, little-endian magic.
- Link type 101 (LINKTYPE_RAW): packets start at the IPv4 header — no
  synthetic Ethernet addresses to invent.
- Full IPv4/TCP/UDP headers with *valid checksums* are synthesized; payload
  is zero bytes padded so the IP total length equals the simulated packet
  size (clamped up to the header size).
- The simulation's ground-truth ``label`` rides in the IP TOS/DSCP byte
  (0 = normal, 1 = attack, 2 = background) so round-trips are lossless;
  readers of foreign captures just get whatever TOS the capture had, clamped
  into the known labels.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import List, Tuple, Union

import numpy as np

from repro.net.packet import PACKET_DTYPE, PacketArray
from repro.net.protocols import IPPROTO_TCP, IPPROTO_UDP

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_NS = 0xA1B23C4D  # nanosecond-resolution variant (newer libpcap)
PCAP_VERSION = (2, 4)
LINKTYPE_RAW = 101


def _byteswapped(magic: int) -> int:
    """The magic as read on a host of the opposite byte order."""
    return struct.unpack("<I", struct.pack(">I", magic))[0]


#: Every accepted global-header magic -> (struct endianness, ticks/second).
#: A capture written on a big-endian host shows the byte-swapped magic; the
#: nanosecond variants differ only in sub-second resolution.
_MAGIC_VARIANTS = {
    PCAP_MAGIC: ("<", 1e6),
    _byteswapped(PCAP_MAGIC): (">", 1e6),
    PCAP_MAGIC_NS: ("<", 1e9),
    _byteswapped(PCAP_MAGIC_NS): (">", 1e9),
}

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")
_IPV4_HEADER = struct.Struct("!BBHHHBBHII")
_TCP_HEADER = struct.Struct("!HHIIBBHHH")
_UDP_HEADER = struct.Struct("!HHHH")

_IPV4_LEN = 20
_TCP_LEN = 20
_UDP_LEN = 8


def checksum16(data: bytes) -> int:
    """The Internet checksum (RFC 1071): one's-complement of the one's-
    complement sum of 16-bit words."""
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack(f"!{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def _build_ipv4(proto: int, src: int, dst: int, payload: bytes, tos: int) -> bytes:
    total_length = _IPV4_LEN + len(payload)
    header = _IPV4_HEADER.pack(
        0x45, tos, total_length, 0, 0, 64, proto, 0, src, dst
    )
    check = checksum16(header)
    header = header[:10] + struct.pack("!H", check) + header[12:]
    return header + payload


def _transport_checksum(proto: int, src: int, dst: int, segment: bytes) -> int:
    pseudo = struct.pack("!IIBBH", src, dst, 0, proto, len(segment))
    value = checksum16(pseudo + segment)
    if proto == IPPROTO_UDP and value == 0:
        value = 0xFFFF  # UDP transmits all-ones for a zero checksum
    return value


def _build_tcp(sport: int, dport: int, flags: int, src: int, dst: int,
               payload: bytes) -> bytes:
    header = _TCP_HEADER.pack(sport, dport, 0, 0, (5 << 4), flags, 65535, 0, 0)
    check = _transport_checksum(IPPROTO_TCP, src, dst, header + payload)
    header = header[:16] + struct.pack("!H", check) + header[18:]
    return header + payload


def _build_udp(sport: int, dport: int, src: int, dst: int, payload: bytes) -> bytes:
    length = _UDP_LEN + len(payload)
    header = _UDP_HEADER.pack(sport, dport, length, 0)
    check = _transport_checksum(IPPROTO_UDP, src, dst, header + payload)
    header = header[:6] + struct.pack("!H", check)
    return header + payload


def encode_packet(row) -> bytes:
    """Synthesize the on-the-wire bytes (raw IPv4) for one packet row."""
    proto = int(row["proto"])
    src, dst = int(row["src"]), int(row["dst"])
    sport, dport = int(row["sport"]), int(row["dport"])
    size = int(row["size"])
    if proto == IPPROTO_TCP:
        payload_len = max(0, size - _IPV4_LEN - _TCP_LEN)
        transport = _build_tcp(sport, dport, int(row["flags"]), src, dst,
                               bytes(payload_len))
    elif proto == IPPROTO_UDP:
        payload_len = max(0, size - _IPV4_LEN - _UDP_LEN)
        transport = _build_udp(sport, dport, src, dst, bytes(payload_len))
    else:
        transport = bytes(max(0, size - _IPV4_LEN))
    return _build_ipv4(proto, src, dst, transport, tos=int(row["label"]))


def write_pcap(packets: PacketArray, path: Union[str, Path],
               snaplen: int = 65535) -> int:
    """Write a PacketArray as a classic pcap file; returns packets written."""
    path = Path(path)
    with path.open("wb") as fh:
        fh.write(_GLOBAL_HEADER.pack(
            PCAP_MAGIC, PCAP_VERSION[0], PCAP_VERSION[1], 0, 0, snaplen,
            LINKTYPE_RAW,
        ))
        for row in packets.data:
            wire = encode_packet(row)
            ts = float(row["ts"])
            sec = int(ts)
            usec = int(round((ts - sec) * 1_000_000))
            if usec == 1_000_000:
                sec, usec = sec + 1, 0
            captured = wire[:snaplen]
            fh.write(_RECORD_HEADER.pack(sec, usec, len(captured), len(wire)))
            fh.write(captured)
    return len(packets)


class PcapFormatError(ValueError):
    """The file is not a readable classic pcap capture."""


def read_pcap(path: Union[str, Path]) -> PacketArray:
    """Read a classic pcap (linktype RAW or Ethernet) into a PacketArray.

    All four classic global-header variants are accepted: little- and
    big-endian byte order, microsecond and nanosecond timestamp resolution
    (magics ``0xA1B2C3D4`` / ``0xA1B23C4D`` and their byte-swapped forms).
    Only IPv4 TCP/UDP packets are decoded; anything else raises
    :class:`PcapFormatError` (this is a simulation tool, not a general
    protocol dissector).
    """
    data = Path(path).read_bytes()
    if len(data) < _GLOBAL_HEADER.size:
        raise PcapFormatError("truncated pcap: missing global header")
    magic = struct.unpack_from("<I", data, 0)[0]
    try:
        endian, ticks_per_second = _MAGIC_VARIANTS[magic]
    except KeyError:
        raise PcapFormatError(
            f"bad magic {magic:#x} (pcapng is not supported)") from None
    header = struct.Struct(endian + "IHHiIII")
    record = struct.Struct(endian + "IIII")
    _magic, _vmaj, _vmin, _zone, _sig, _snaplen, linktype = header.unpack_from(data, 0)
    if linktype == LINKTYPE_RAW:
        l2_offset = 0
    elif linktype == 1:  # Ethernet
        l2_offset = 14
    else:
        raise PcapFormatError(f"unsupported linktype {linktype}")

    rows: List[Tuple] = []
    offset = header.size
    while offset < len(data):
        if offset + record.size > len(data):
            raise PcapFormatError("truncated record header")
        sec, frac, incl_len, _orig_len = record.unpack_from(data, offset)
        offset += record.size
        if offset + incl_len > len(data):
            raise PcapFormatError("truncated packet body")
        frame = data[offset:offset + incl_len]
        offset += incl_len
        rows.append(_decode_frame(sec + frac / ticks_per_second,
                                  frame[l2_offset:]))

    out = np.zeros(len(rows), dtype=PACKET_DTYPE)
    for i, row in enumerate(rows):
        out[i] = row
    return PacketArray(out)


def _decode_frame(ts: float, frame: bytes) -> Tuple:
    if len(frame) < _IPV4_LEN:
        raise PcapFormatError("frame shorter than an IPv4 header")
    (ver_ihl, tos, total_length, _ident, _frag, _ttl, proto, _check,
     src, dst) = _IPV4_HEADER.unpack_from(frame, 0)
    if ver_ihl >> 4 != 4:
        raise PcapFormatError(f"not IPv4 (version {ver_ihl >> 4})")
    ihl = (ver_ihl & 0x0F) * 4
    if proto == IPPROTO_TCP:
        if len(frame) < ihl + 14:
            raise PcapFormatError("truncated TCP header")
        sport, dport = struct.unpack_from("!HH", frame, ihl)
        flags = frame[ihl + 13]
    elif proto == IPPROTO_UDP:
        if len(frame) < ihl + _UDP_LEN:
            raise PcapFormatError("truncated UDP header")
        sport, dport = struct.unpack_from("!HH", frame, ihl)
        flags = 0
    else:
        raise PcapFormatError(f"unsupported IP protocol {proto}")
    label = tos if tos in (0, 1, 2) else 0
    return (ts, proto, src, sport, dst, dport, flags,
            min(total_length, 65535), label)


def verify_checksums(path: Union[str, Path]) -> int:
    """Validate the IPv4 and transport checksums of every packet in a pcap.

    Returns the packet count; raises :class:`PcapFormatError` on the first
    bad checksum.  Used by tests to prove the writer emits wire-valid bytes.
    """
    data = Path(path).read_bytes()
    header = _GLOBAL_HEADER
    offset = header.size
    count = 0
    record = _RECORD_HEADER
    while offset < len(data):
        _sec, _usec, incl_len, _orig = record.unpack_from(data, offset)
        offset += record.size
        frame = data[offset:offset + incl_len]
        offset += incl_len
        if checksum16(frame[:_IPV4_LEN]) != 0:
            raise PcapFormatError(f"bad IPv4 checksum in packet {count}")
        proto = frame[9]
        src, dst = struct.unpack_from("!II", frame, 12)
        segment = frame[_IPV4_LEN:]
        pseudo = struct.pack("!IIBBH", src, dst, 0, proto, len(segment))
        if checksum16(pseudo + segment) not in (0, 0xFFFF):
            raise PcapFormatError(f"bad transport checksum in packet {count}")
        count += 1
    return count
