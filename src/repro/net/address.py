"""Integer-backed IPv4 addresses and networks.

The standard library :mod:`ipaddress` module is convenient but heavyweight for
simulation loops that touch millions of addresses.  Here an address is a plain
``int`` wrapped in a tiny value type, and a network is a (prefix, mask) pair.
Everything interoperates with bare integers so hot paths can skip the wrappers
entirely.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Union

_MAX_IPV4 = 0xFFFFFFFF

AddressLike = Union["IPv4Address", int, str]


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad notation into an integer.

    Raises :class:`ValueError` for malformed input (wrong number of octets,
    out-of-range octets, or non-numeric parts).
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address {text!r}: expected 4 octets")
    value = 0
    for part in parts:
        try:
            octet = int(part, 10)
        except ValueError as exc:
            raise ValueError(f"invalid IPv4 address {text!r}: bad octet {part!r}") from exc
        if not 0 <= octet <= 255:
            raise ValueError(f"invalid IPv4 address {text!r}: octet {octet} out of range")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """Format an integer as dotted-quad notation."""
    if not 0 <= value <= _MAX_IPV4:
        raise ValueError(f"IPv4 address value {value:#x} out of range")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def coerce_address(value: AddressLike) -> int:
    """Coerce an address-like value (int, str, IPv4Address) to an integer."""
    if isinstance(value, IPv4Address):
        return value.value
    if isinstance(value, int):
        if not 0 <= value <= _MAX_IPV4:
            raise ValueError(f"IPv4 address value {value:#x} out of range")
        return value
    if isinstance(value, str):
        return parse_ipv4(value)
    raise TypeError(f"cannot interpret {value!r} as an IPv4 address")


@dataclass(frozen=True, order=True)
class IPv4Address:
    """An IPv4 address as an immutable value type around an integer."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= _MAX_IPV4:
            raise ValueError(f"IPv4 address value {self.value:#x} out of range")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        return cls(parse_ipv4(text))

    def __str__(self) -> str:
        return format_ipv4(self.value)

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"

    def __int__(self) -> int:
        return self.value

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self.value + offset)


@dataclass(frozen=True)
class IPv4Network:
    """An IPv4 network (prefix + prefix length).

    The host bits of ``prefix`` must be zero; use :meth:`containing` to build
    the network that contains an arbitrary address.
    """

    prefix: int
    prefix_len: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix_len <= 32:
            raise ValueError(f"prefix length {self.prefix_len} out of range")
        if self.prefix & ~self.netmask & _MAX_IPV4:
            raise ValueError(
                f"prefix {format_ipv4(self.prefix)} has host bits set for /{self.prefix_len}"
            )

    @classmethod
    def parse(cls, text: str) -> "IPv4Network":
        """Parse CIDR notation, e.g. ``"192.168.1.0/24"``."""
        if "/" not in text:
            raise ValueError(f"invalid CIDR {text!r}: missing prefix length")
        addr_text, _, len_text = text.partition("/")
        prefix_len = int(len_text, 10)
        return cls(parse_ipv4(addr_text), prefix_len)

    @classmethod
    def containing(cls, address: AddressLike, prefix_len: int) -> "IPv4Network":
        """Return the /prefix_len network containing ``address``."""
        value = coerce_address(address)
        mask = _mask_for(prefix_len)
        return cls(value & mask, prefix_len)

    @property
    def netmask(self) -> int:
        return _mask_for(self.prefix_len)

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self.prefix_len)

    @property
    def first(self) -> int:
        return self.prefix

    @property
    def last(self) -> int:
        return self.prefix | (~self.netmask & _MAX_IPV4)

    def __contains__(self, address: object) -> bool:
        if isinstance(address, (IPv4Address, int, str)):
            return (coerce_address(address) & self.netmask) == self.prefix
        return False

    def __str__(self) -> str:
        return f"{format_ipv4(self.prefix)}/{self.prefix_len}"

    def __repr__(self) -> str:
        return f"IPv4Network({str(self)!r})"

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.first, self.last + 1))

    def host(self, index: int) -> int:
        """Return the ``index``-th address in the network (0-based)."""
        if not 0 <= index < self.num_addresses:
            raise IndexError(f"host index {index} out of range for {self}")
        return self.prefix + index

    def usable_hosts(self) -> Iterator[int]:
        """Iterate host addresses, skipping network/broadcast for /30 and wider."""
        if self.prefix_len >= 31:
            yield from self
        else:
            yield from range(self.first + 1, self.last)

    def random_host(self, rng: random.Random) -> int:
        """Sample a uniformly random usable host address."""
        if self.prefix_len >= 31:
            return rng.randint(self.first, self.last)
        return rng.randint(self.first + 1, self.last - 1)


def _mask_for(prefix_len: int) -> int:
    if not 0 <= prefix_len <= 32:
        raise ValueError(f"prefix length {prefix_len} out of range")
    if prefix_len == 0:
        return 0
    return (_MAX_IPV4 << (32 - prefix_len)) & _MAX_IPV4


class AddressSpace:
    """A set of networks forming a protected client address space.

    The bitmap filter needs a fast "is this address inside the client
    network?" predicate.  For a handful of networks, a linear scan over
    (prefix, mask) pairs is fastest; membership is O(#networks).
    """

    def __init__(self, networks: Iterable[Union[IPv4Network, str]]):
        self._networks: List[IPv4Network] = []
        for net in networks:
            if isinstance(net, str):
                net = IPv4Network.parse(net)
            self._networks.append(net)
        if not self._networks:
            raise ValueError("AddressSpace requires at least one network")
        # Pre-extract (mask, prefix) pairs for the hot-path membership test.
        self._pairs = tuple((net.netmask, net.prefix) for net in self._networks)

    @classmethod
    def class_c_block(cls, first_network: AddressLike, count: int) -> "AddressSpace":
        """Build ``count`` consecutive /24 networks starting at ``first_network``.

        Mirrors the paper's setup of six consecutive class-C campus networks.
        """
        base = coerce_address(first_network) & ~0xFF
        nets = [IPv4Network(base + (i << 8), 24) for i in range(count)]
        return cls(nets)

    @property
    def networks(self) -> Sequence[IPv4Network]:
        return tuple(self._networks)

    @property
    def num_addresses(self) -> int:
        return sum(net.num_addresses for net in self._networks)

    def contains(self, address: AddressLike) -> bool:
        value = coerce_address(address)
        return any(value & mask == prefix for mask, prefix in self._pairs)

    __contains__ = contains

    def contains_int(self, value: int) -> bool:
        """Hot-path membership test for a bare integer address (no coercion)."""
        return any(value & mask == prefix for mask, prefix in self._pairs)

    def random_host(self, rng: random.Random) -> int:
        """Sample a random host, weighting networks by their size."""
        weights = [net.num_addresses for net in self._networks]
        net = rng.choices(self._networks, weights=weights, k=1)[0]
        return net.random_host(rng)

    def hosts(self, per_network: Optional[int] = None) -> List[int]:
        """Enumerate host addresses, optionally limited per network."""
        out: List[int] = []
        for net in self._networks:
            hosts = net.usable_hosts()
            if per_network is None:
                out.extend(hosts)
            else:
                out.extend(addr for _, addr in zip(range(per_network), hosts))
        return out

    def __repr__(self) -> str:
        inner = ", ".join(str(net) for net in self._networks)
        return f"AddressSpace([{inner}])"
