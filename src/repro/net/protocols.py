"""Protocol numbers and well-known port registry used by the traffic models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

IPPROTO_ICMP = 1
IPPROTO_TCP = 6
IPPROTO_UDP = 17

PROTOCOL_NAMES: Dict[int, str] = {
    IPPROTO_ICMP: "icmp",
    IPPROTO_TCP: "tcp",
    IPPROTO_UDP: "udp",
}

# Well-known server ports referenced by the paper's compatibility discussion
# (Section 5.1) and by the application profiles in repro.traffic.applications.
PORT_FTP_DATA = 20
PORT_FTP = 21
PORT_SSH = 22
PORT_TELNET = 23
PORT_SMTP = 25
PORT_DNS = 53
PORT_HTTP = 80
PORT_POP3 = 110
PORT_NTP = 123
PORT_IMAP = 143
PORT_HTTPS = 443
PORT_SMB = 445
PORT_IMAPS = 993
PORT_POP3S = 995

# Default ephemeral (dynamic) client port range.  Windows XP era used
# 1025-5000; modern stacks use 49152-65535.  The paper's port-reuse effect
# arises because this range is finite and ports are recycled.
EPHEMERAL_PORT_RANGE: Tuple[int, int] = (1024, 65535)


@dataclass(frozen=True)
class ServicePort:
    """A well-known service port with its transport protocol."""

    port: int
    protocol: int
    name: str


WELL_KNOWN_SERVICES: Dict[str, ServicePort] = {
    "ftp-data": ServicePort(PORT_FTP_DATA, IPPROTO_TCP, "ftp-data"),
    "ftp": ServicePort(PORT_FTP, IPPROTO_TCP, "ftp"),
    "ssh": ServicePort(PORT_SSH, IPPROTO_TCP, "ssh"),
    "telnet": ServicePort(PORT_TELNET, IPPROTO_TCP, "telnet"),
    "smtp": ServicePort(PORT_SMTP, IPPROTO_TCP, "smtp"),
    "dns": ServicePort(PORT_DNS, IPPROTO_UDP, "dns"),
    "http": ServicePort(PORT_HTTP, IPPROTO_TCP, "http"),
    "pop3": ServicePort(PORT_POP3, IPPROTO_TCP, "pop3"),
    "ntp": ServicePort(PORT_NTP, IPPROTO_UDP, "ntp"),
    "imap": ServicePort(PORT_IMAP, IPPROTO_TCP, "imap"),
    "https": ServicePort(PORT_HTTPS, IPPROTO_TCP, "https"),
    "smb": ServicePort(PORT_SMB, IPPROTO_TCP, "smb"),
}


def protocol_name(proto: int) -> str:
    """Human-readable protocol name, falling back to the raw number."""
    return PROTOCOL_NAMES.get(proto, f"proto-{proto}")


def is_valid_port(port: int) -> bool:
    return 0 <= port <= 65535
