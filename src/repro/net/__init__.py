"""Network model substrate: addresses, packets, flows, and protocol constants.

This package provides the packet-level vocabulary shared by every other
subsystem: integer-backed IPv4 addresses and networks (:mod:`repro.net.address`),
the :class:`~repro.net.packet.Packet` object and its columnar NumPy twin
:class:`~repro.net.packet.PacketArray`, flow/tuple keys with the directional
hashing rules the bitmap filter uses (:mod:`repro.net.flow`), and protocol
constants (:mod:`repro.net.protocols`).
"""

from repro.net.address import IPv4Address, IPv4Network, AddressSpace
from repro.net.flow import AddressTuple, bitmap_key_incoming, bitmap_key_outgoing
from repro.net.packet import Direction, Packet, PacketArray, TcpFlags
from repro.net.protocols import IPPROTO_ICMP, IPPROTO_TCP, IPPROTO_UDP

__all__ = [
    "IPv4Address",
    "IPv4Network",
    "AddressSpace",
    "AddressTuple",
    "bitmap_key_incoming",
    "bitmap_key_outgoing",
    "Direction",
    "Packet",
    "PacketArray",
    "TcpFlags",
    "IPPROTO_ICMP",
    "IPPROTO_TCP",
    "IPPROTO_UDP",
]
