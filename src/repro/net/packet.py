"""Packet representations: an object form and a columnar NumPy form.

:class:`Packet` is the readable per-packet object used by the reference
implementations and tests.  :class:`PacketArray` stores the same fields as
parallel NumPy arrays so the vectorized bitmap-filter path can process
millions of packets without per-object overhead.  The two forms round-trip
exactly (see ``tests/net/test_packet.py``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.net.address import format_ipv4
from repro.net.protocols import IPPROTO_TCP, IPPROTO_UDP, protocol_name

if TYPE_CHECKING:
    from repro.net.address import AddressSpace


class TcpFlags(enum.IntFlag):
    """TCP header flags (subset used by the simulation)."""

    NONE = 0
    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20

    @property
    def is_pure_syn(self) -> bool:
        """SYN without ACK — a connection-open request."""
        return bool(self & TcpFlags.SYN) and not bool(self & TcpFlags.ACK)

    @property
    def is_pure_fin(self) -> bool:
        """FIN without ACK (rare on the wire, but Section 5.3 treats a
        lone FIN as a signal that still marks the bitmap)."""
        return bool(self & TcpFlags.FIN) and not bool(self & TcpFlags.ACK)

    @property
    def closes_connection(self) -> bool:
        return bool(self & (TcpFlags.FIN | TcpFlags.RST))


class Direction(enum.Enum):
    """Packet direction relative to a protected client network."""

    OUTGOING = "outgoing"  # sent from the client network
    INCOMING = "incoming"  # received by the client network
    TRANSIT = "transit"    # neither endpoint inside (not filtered)
    INTERNAL = "internal"  # both endpoints inside (not filtered)


class PacketLabel(enum.IntEnum):
    """Ground-truth provenance label for evaluation accounting.

    NORMAL is legitimate client traffic; ATTACK is generated attack traffic
    (the Fig. 5 scanner, floods, worms); BACKGROUND is the ever-present
    unsolicited Internet radiation a real capture contains — not counted as
    legitimate when scoring false positives, but not part of a simulated
    attack either.
    """

    NORMAL = 0
    ATTACK = 1
    BACKGROUND = 2


@dataclass(frozen=True)
class Packet:
    """A single simulated packet.

    ``label`` carries ground truth (normal vs. attack) so the evaluation
    pipeline can count false positives/negatives; real filters never read it.
    """

    ts: float
    proto: int
    src: int
    sport: int
    dst: int
    dport: int
    flags: TcpFlags = TcpFlags.NONE
    size: int = 720  # the paper's observed average packet size
    label: PacketLabel = PacketLabel.NORMAL

    @property
    def is_tcp(self) -> bool:
        return self.proto == IPPROTO_TCP

    @property
    def is_udp(self) -> bool:
        return self.proto == IPPROTO_UDP

    @property
    def is_attack(self) -> bool:
        return self.label is PacketLabel.ATTACK

    def direction(self, protected: "AddressSpace") -> Direction:
        """Classify this packet relative to a protected address space."""
        src_in = protected.contains_int(self.src)
        dst_in = protected.contains_int(self.dst)
        if src_in and dst_in:
            return Direction.INTERNAL
        if src_in:
            return Direction.OUTGOING
        if dst_in:
            return Direction.INCOMING
        return Direction.TRANSIT

    def reply(self, ts: float, flags: TcpFlags = TcpFlags.ACK, size: int = 720) -> "Packet":
        """Construct the reverse-direction packet of this one."""
        return Packet(
            ts=ts,
            proto=self.proto,
            src=self.dst,
            sport=self.dport,
            dst=self.src,
            dport=self.sport,
            flags=flags,
            size=size,
            label=self.label,
        )

    def with_ts(self, ts: float) -> "Packet":
        return replace(self, ts=ts)

    def __str__(self) -> str:
        flag_text = ""
        if self.is_tcp and self.flags:
            names = [f.name for f in TcpFlags if f and f in self.flags and f.name]
            flag_text = " [" + "+".join(names) + "]"
        return (
            f"{self.ts:.6f} {protocol_name(self.proto)} "
            f"{format_ipv4(self.src)}:{self.sport} > "
            f"{format_ipv4(self.dst)}:{self.dport}{flag_text} len={self.size}"
        )


#: dtype of the columnar packet representation.
PACKET_DTYPE = np.dtype(
    [
        ("ts", np.float64),
        ("proto", np.uint8),
        ("src", np.uint32),
        ("sport", np.uint16),
        ("dst", np.uint32),
        ("dport", np.uint16),
        ("flags", np.uint8),
        ("size", np.uint16),
        ("label", np.uint8),
    ]
)


class PacketArray:
    """Columnar (structured NumPy) packet storage.

    Exposes each field as an array attribute (``ts``, ``src``, ...) and
    supports slicing, concatenation, time-sorting, and conversion to/from
    :class:`Packet` lists.
    """

    def __init__(self, data: np.ndarray):
        if data.dtype != PACKET_DTYPE:
            raise TypeError(f"expected dtype {PACKET_DTYPE}, got {data.dtype}")
        self._data = data

    # -- construction -----------------------------------------------------

    @classmethod
    def empty(cls, length: int = 0) -> "PacketArray":
        return cls(np.zeros(length, dtype=PACKET_DTYPE))

    @classmethod
    def from_packets(cls, packets: Iterable[Packet]) -> "PacketArray":
        packets = list(packets)
        data = np.zeros(len(packets), dtype=PACKET_DTYPE)
        for i, pkt in enumerate(packets):
            data[i] = (
                pkt.ts,
                pkt.proto,
                pkt.src,
                pkt.sport,
                pkt.dst,
                pkt.dport,
                int(pkt.flags),
                pkt.size,
                int(pkt.label),
            )
        return cls(data)

    @classmethod
    def from_fields(
        cls,
        ts: np.ndarray,
        proto: np.ndarray,
        src: np.ndarray,
        sport: np.ndarray,
        dst: np.ndarray,
        dport: np.ndarray,
        flags: Optional[np.ndarray] = None,
        size: Optional[np.ndarray] = None,
        label: Optional[np.ndarray] = None,
    ) -> "PacketArray":
        n = len(ts)
        data = np.zeros(n, dtype=PACKET_DTYPE)
        data["ts"] = ts
        data["proto"] = proto
        data["src"] = src
        data["sport"] = sport
        data["dst"] = dst
        data["dport"] = dport
        data["flags"] = flags if flags is not None else 0
        data["size"] = size if size is not None else 720
        data["label"] = label if label is not None else 0
        return cls(data)

    @classmethod
    def concatenate(cls, arrays: Sequence["PacketArray"]) -> "PacketArray":
        if not arrays:
            return cls.empty()
        return cls(np.concatenate([arr._data for arr in arrays]))

    # -- field views ------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        return self._data

    @property
    def ts(self) -> np.ndarray:
        return self._data["ts"]

    @property
    def proto(self) -> np.ndarray:
        return self._data["proto"]

    @property
    def src(self) -> np.ndarray:
        return self._data["src"]

    @property
    def sport(self) -> np.ndarray:
        return self._data["sport"]

    @property
    def dst(self) -> np.ndarray:
        return self._data["dst"]

    @property
    def dport(self) -> np.ndarray:
        return self._data["dport"]

    @property
    def flags(self) -> np.ndarray:
        return self._data["flags"]

    @property
    def size(self) -> np.ndarray:
        return self._data["size"]

    @property
    def label(self) -> np.ndarray:
        return self._data["label"]

    # -- container protocol -----------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, index) -> "PacketArray":
        if isinstance(index, (int, np.integer)):
            return self.packet(int(index))  # type: ignore[return-value]
        return PacketArray(self._data[index])

    def __iter__(self) -> Iterator[Packet]:
        for i in range(len(self)):
            yield self.packet(i)

    def packet(self, index: int) -> Packet:
        row = self._data[index]
        return Packet(
            ts=float(row["ts"]),
            proto=int(row["proto"]),
            src=int(row["src"]),
            sport=int(row["sport"]),
            dst=int(row["dst"]),
            dport=int(row["dport"]),
            flags=TcpFlags(int(row["flags"])),
            size=int(row["size"]),
            label=PacketLabel(int(row["label"])),
        )

    def to_packets(self) -> List[Packet]:
        return list(self)

    # -- operations --------------------------------------------------------

    def sorted_by_time(self) -> "PacketArray":
        """Return a copy sorted by timestamp (stable)."""
        order = np.argsort(self.ts, kind="stable")
        return PacketArray(self._data[order])

    def time_slice(self, start: float, end: float) -> "PacketArray":
        """Packets with ``start <= ts < end`` (assumes nothing about order)."""
        mask = (self.ts >= start) & (self.ts < end)
        return PacketArray(self._data[mask])

    def directions(self, protected: "AddressSpace") -> np.ndarray:
        """Vectorized direction classification.

        Returns an int8 array: 0=outgoing, 1=incoming, 2=transit, 3=internal.
        """
        src_in = np.zeros(len(self), dtype=bool)
        dst_in = np.zeros(len(self), dtype=bool)
        for net in protected.networks:
            mask = np.uint32(net.netmask)
            prefix = np.uint32(net.prefix)
            src_in |= (self.src & mask) == prefix
            dst_in |= (self.dst & mask) == prefix
        out = np.full(len(self), DIRECTION_TRANSIT, dtype=np.int8)
        out[src_in & ~dst_in] = DIRECTION_OUTGOING
        out[~src_in & dst_in] = DIRECTION_INCOMING
        out[src_in & dst_in] = DIRECTION_INTERNAL
        return out

    def copy(self) -> "PacketArray":
        return PacketArray(self._data.copy())

    def __repr__(self) -> str:
        span = ""
        if len(self):
            span = f", t=[{self.ts[0]:.3f}, {self.ts[-1]:.3f}]"
        return f"PacketArray(n={len(self)}{span})"


# Integer direction codes used by PacketArray.directions and the vectorized
# filter paths.  Kept in sync with the Direction enum ordering.
DIRECTION_OUTGOING = 0
DIRECTION_INCOMING = 1
DIRECTION_TRANSIT = 2
DIRECTION_INTERNAL = 3

DIRECTION_CODES = {
    Direction.OUTGOING: DIRECTION_OUTGOING,
    Direction.INCOMING: DIRECTION_INCOMING,
    Direction.TRANSIT: DIRECTION_TRANSIT,
    Direction.INTERNAL: DIRECTION_INTERNAL,
}

DIRECTION_FROM_CODE = {code: direction for direction, code in DIRECTION_CODES.items()}
