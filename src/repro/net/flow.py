"""Flow address tuples and the bitmap filter's directional keys.

The paper (Section 3.2) defines an address tuple
``τ = {source-address, source-port, destination-address, destination-port}``
and the inverse tuple ``τ⁻¹`` obtained by swapping endpoints.  An outgoing
packet with tuple ``τ_out`` corresponds to an incoming packet whose tuple
``τ_in`` satisfies ``τ_in⁻¹ == τ_out``.

Section 3.3 further specifies that the bitmap does **not** hash the full
4-tuple: for an outgoing packet only ``{saddr, sport, daddr}`` is hashed
(the remote port is omitted) and for an incoming packet only
``{daddr, dport, saddr}``.  Both reduce to the same key
``(local-address, local-port, remote-address)``, which is what lets
protocols that switch remote ports mid-session (and the Section 5.1 hole
punching trick, where the client cannot know the remote source port in
advance) keep working.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.net.address import format_ipv4
from repro.net.packet import Packet

#: The bitmap key type: (protocol, local address, local port, remote address).
BitmapKey = Tuple[int, int, int, int]

#: Exact flow key used by SPI filters: full 5-tuple in local-first order.
FlowKey = Tuple[int, int, int, int, int]


@dataclass(frozen=True, order=True)
class AddressTuple:
    """The 4-tuple τ of Section 3.2, plus the transport protocol.

    The paper's τ omits the protocol for brevity; a deployed filter must
    distinguish TCP from UDP flows, so we carry it along.
    """

    proto: int
    saddr: int
    sport: int
    daddr: int
    dport: int

    @classmethod
    def of_packet(cls, pkt: Packet) -> "AddressTuple":
        return cls(pkt.proto, pkt.src, pkt.sport, pkt.dst, pkt.dport)

    def inverse(self) -> "AddressTuple":
        """τ⁻¹: swap the two endpoints."""
        return AddressTuple(self.proto, self.daddr, self.dport, self.saddr, self.sport)

    def __str__(self) -> str:
        return (
            f"{format_ipv4(self.saddr)}:{self.sport} -> "
            f"{format_ipv4(self.daddr)}:{self.dport}/{self.proto}"
        )


def bitmap_key_outgoing(proto: int, saddr: int, sport: int, daddr: int) -> BitmapKey:
    """Key marked for an outgoing packet: {saddr, sport, daddr} (Sec. 3.3).

    ``saddr``/``sport`` are the client-side (local) endpoint.
    """
    return (proto, saddr, sport, daddr)


def bitmap_key_incoming(proto: int, daddr: int, dport: int, saddr: int) -> BitmapKey:
    """Key looked up for an incoming packet: {daddr, dport, saddr} (Sec. 3.3).

    ``daddr``/``dport`` are the client-side (local) endpoint, ``saddr`` the
    outside sender.  For a genuine reply this equals the key its request
    marked via :func:`bitmap_key_outgoing`.
    """
    return (proto, daddr, dport, saddr)


def bitmap_key_of_packet(pkt: Packet, outgoing: bool) -> BitmapKey:
    """Directional bitmap key for a packet."""
    if outgoing:
        return bitmap_key_outgoing(pkt.proto, pkt.src, pkt.sport, pkt.dst)
    return bitmap_key_incoming(pkt.proto, pkt.dst, pkt.dport, pkt.src)


def flow_key_of_packet(pkt: Packet, outgoing: bool) -> FlowKey:
    """Canonical (local-first) exact flow key for SPI filters."""
    if outgoing:
        return (pkt.proto, pkt.src, pkt.sport, pkt.dst, pkt.dport)
    return (pkt.proto, pkt.dst, pkt.dport, pkt.src, pkt.sport)


def flow_key_of_tuple(tup: AddressTuple, outgoing: bool) -> FlowKey:
    if outgoing:
        return (tup.proto, tup.saddr, tup.sport, tup.daddr, tup.dport)
    return (tup.proto, tup.daddr, tup.dport, tup.saddr, tup.sport)
