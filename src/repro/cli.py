"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro <experiment> [--scale small|medium|large] [options]
    repro fig4 --scale medium

Experiments: fig2a fig2b fig2c table1 capacity fig4 fig5 insider apd sweep
worm aggregate timing compat robustness resilience throttle collusion all
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.config import SMALL, get_scale


def _scale_arg(parser: argparse.ArgumentParser, default: str = "medium") -> None:
    parser.add_argument(
        "--scale",
        choices=("small", "medium", "large"),
        default=default,
        help="experiment scale (see DESIGN.md section 5)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the workload seed (default: the scale's seed)",
    )


def _resolve_scale(args: argparse.Namespace):
    """The selected scale, with an optional --seed override applied."""
    from dataclasses import replace

    scale = get_scale(args.scale)
    if getattr(args, "seed", None) is not None:
        scale = replace(scale, seed=args.seed)
    return scale


def _cmd_fig2(args: argparse.Namespace, which: str) -> str:
    from repro.experiments.fig2 import delay_comb_offsets, run_fig2

    result = run_fig2(_resolve_scale(args))
    if which == "fig2b":
        offsets = delay_comb_offsets(result)
        comb = ", ".join(f"{x:.0f}s" for x in offsets) or "(none found)"
        return result.report() + f"\n\nFig 2b delay-comb peaks: {comb}"
    return result.report()


def _cmd_table1(args: argparse.Namespace) -> str:
    from repro.experiments.table1 import run_table1

    sizes = (4_000, 16_000, 64_000) if args.scale == "small" else (10_000, 40_000, 160_000)
    return run_table1(sizes=sizes).report()


def _cmd_capacity(args: argparse.Namespace) -> str:
    from repro.experiments.sec41 import run_sec41

    return run_sec41().report()


def _cmd_fig4(args: argparse.Namespace) -> str:
    from repro.experiments.fig4 import run_fig4

    return run_fig4(_resolve_scale(args)).report()


def _cmd_fig5(args: argparse.Namespace) -> str:
    from repro.experiments.fig5 import run_fig5

    return run_fig5(_resolve_scale(args)).report()


def _cmd_insider(args: argparse.Namespace) -> str:
    from repro.experiments.sec52 import run_sec52

    return run_sec52(_resolve_scale(args)).report()


def _cmd_apd(args: argparse.Namespace) -> str:
    from repro.experiments.sec53 import run_sec53

    scale = _resolve_scale(args) if args.scale == "small" else SMALL
    return run_sec53(scale).report()


def _cmd_sweep(args: argparse.Namespace) -> str:
    from repro.experiments.sweep import run_sweep

    return run_sweep().report()


def _cmd_worm(args: argparse.Namespace) -> str:
    from repro.experiments.worm import run_worm

    return run_worm(_resolve_scale(args) if args.scale == "small" else SMALL).report()


def _cmd_aggregate(args: argparse.Namespace) -> str:
    from repro.experiments.aggregation import run_aggregation

    return run_aggregation(_resolve_scale(args) if args.scale == "small" else SMALL).report()


def _cmd_timing(args: argparse.Namespace) -> str:
    from repro.experiments.timing import run_timing_ablation

    return run_timing_ablation(_resolve_scale(args) if args.scale == "small" else SMALL).report()


def _cmd_compat(args: argparse.Namespace) -> str:
    from repro.experiments.compat import run_compat

    return run_compat(_resolve_scale(args) if args.scale == "small" else SMALL).report()


def _cmd_robustness(args: argparse.Namespace) -> str:
    from repro.experiments.robustness import run_robustness

    return run_robustness(_resolve_scale(args) if args.scale == "small" else SMALL).report()


def _cmd_resilience(args: argparse.Namespace) -> str:
    from repro.experiments.resilience import run_resilience

    return run_resilience(_resolve_scale(args) if args.scale == "small" else SMALL).report()


def _cmd_throttle(args: argparse.Namespace) -> str:
    from repro.experiments.throttle_cmp import run_throttle_comparison

    return run_throttle_comparison(_resolve_scale(args) if args.scale == "small" else SMALL).report()


def _cmd_collusion(args: argparse.Namespace) -> str:
    from repro.experiments.sec54 import run_sec54

    return run_sec54(_resolve_scale(args) if args.scale == "small" else SMALL).report()


_EXPERIMENTS = {
    "fig2a": lambda a: _cmd_fig2(a, "fig2a"),
    "fig2b": lambda a: _cmd_fig2(a, "fig2b"),
    "fig2c": lambda a: _cmd_fig2(a, "fig2c"),
    "table1": _cmd_table1,
    "capacity": _cmd_capacity,
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "insider": _cmd_insider,
    "apd": _cmd_apd,
    "sweep": _cmd_sweep,
    "worm": _cmd_worm,
    "aggregate": _cmd_aggregate,
    "timing": _cmd_timing,
    "compat": _cmd_compat,
    "robustness": _cmd_robustness,
    "resilience": _cmd_resilience,
    "throttle": _cmd_throttle,
    "collusion": _cmd_collusion,
}


def _cmd_trace_gen(args: argparse.Namespace) -> str:
    from repro.traffic.generator import ClientNetworkWorkload, WorkloadConfig

    config = WorkloadConfig(duration=args.duration, target_pps=args.pps,
                            seed=args.seed)
    trace = ClientNetworkWorkload(config).generate()
    trace.save_npz(args.out)
    lines = [f"wrote {args.out}: {trace.summary().describe()}"]
    if args.pcap:
        from repro.net.pcap import write_pcap

        count = write_pcap(trace.packets, args.pcap)
        lines.append(f"wrote {args.pcap}: {count} packets (linktype RAW)")
    return "\n".join(lines)


def _cmd_filter(args: argparse.Namespace) -> str:
    """Run a bitmap filter over a saved trace/capture, write the survivors."""
    import numpy as np

    from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig
    from repro.net.address import AddressSpace
    from repro.traffic.trace import Trace

    if args.input.endswith(".pcap"):
        from repro.net.pcap import read_pcap

        if not args.protected:
            raise SystemExit("--protected is required for pcap input "
                             "(e.g. --protected 172.16.0.0/24,172.16.1.0/24)")
        packets = read_pcap(args.input).sorted_by_time()
        protected = AddressSpace(args.protected.split(","))
        trace = Trace(packets, protected)
    else:
        trace = Trace.load_npz(args.input)
        if args.protected:
            trace = Trace(trace.packets, AddressSpace(args.protected.split(",")),
                          trace.metadata)

    config = BitmapFilterConfig(order=args.order, num_vectors=args.k,
                                num_hashes=args.m,
                                rotation_interval=args.dt, seed=args.hash_seed)
    filt = BitmapFilter(config, trace.protected)
    verdicts = filt.process_batch(trace.packets, exact=True)

    lines = [
        f"filter: {filt}",
        f"packets: {len(trace.packets)}  passed: {int(verdicts.sum())}  "
        f"dropped: {int((~verdicts).sum())}",
        f"incoming drop rate: {filt.stats.incoming_drop_rate * 100:.2f}%",
        f"peak utilization: {filt.peak_utilization:.4f}",
    ]
    if args.out:
        survivors = trace.packets[verdicts]
        if args.out.endswith(".pcap"):
            from repro.net.pcap import write_pcap

            write_pcap(survivors, args.out)
        else:
            Trace(survivors, trace.protected,
                  dict(trace.metadata)).save_npz(args.out)
        lines.append(f"wrote {int(verdicts.sum())} surviving packets to {args.out}")
    return "\n".join(lines)


def _cmd_trace_info(args: argparse.Namespace) -> str:
    from repro.analysis.composition import composition
    from repro.traffic.trace import Trace

    trace = Trace.load_npz(args.path)
    nets = ", ".join(str(net) for net in trace.protected.networks)
    report = composition(trace.packets, trace.protected)
    return (f"{args.path}: {trace.summary().describe()}\n"
            f"protected networks: {nets}\n"
            f"metadata: {trace.metadata}\n"
            f"\ncomposition:\n{report.describe()}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the tables and figures of 'Mitigating Active Attacks "
            "Towards Client Networks Using the Bitmap Filter' (DSN 2006)."
        ),
    )
    sub = parser.add_subparsers(dest="experiment", required=True)
    for name in list(_EXPERIMENTS) + ["all"]:
        p = sub.add_parser(name, help=f"regenerate {name}")
        default = "small" if name in ("apd", "worm", "aggregate", "timing", "compat",
                                      "robustness", "resilience", "throttle",
                                      "collusion", "all") else "medium"
        _scale_arg(p, default)

    gen = sub.add_parser("trace-gen", help="generate a synthetic trace file")
    gen.add_argument("--duration", type=float, default=60.0)
    gen.add_argument("--pps", type=float, default=400.0)
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--out", default="trace.npz")
    gen.add_argument("--pcap", default=None,
                     help="also export a libpcap capture (opens in Wireshark)")

    info = sub.add_parser("trace-info", help="summarize a saved trace")
    info.add_argument("path")

    filt = sub.add_parser(
        "filter", help="run a bitmap filter over a saved trace or pcap"
    )
    filt.add_argument("input", help=".npz trace or .pcap capture")
    filt.add_argument("--out", default=None,
                      help="write surviving packets here (.npz or .pcap)")
    filt.add_argument("--protected", default=None,
                      help="comma-separated CIDRs (required for pcap input)")
    filt.add_argument("--order", "-n", type=int, default=20)
    filt.add_argument("--k", type=int, default=4)
    filt.add_argument("--m", type=int, default=3)
    filt.add_argument("--dt", type=float, default=5.0)
    filt.add_argument("--hash-seed", type=int, default=0x5EED)

    export = sub.add_parser("export", help="dump every figure's data as CSV")
    export.add_argument("--out", default="figures")
    _scale_arg(export, "small")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "trace-gen":
        print(_cmd_trace_gen(args))
        return 0
    if args.experiment == "trace-info":
        print(_cmd_trace_info(args))
        return 0
    if args.experiment == "filter":
        print(_cmd_filter(args))
        return 0
    if args.experiment == "export":
        from repro.experiments.export import export_figures

        files = export_figures(args.out, _resolve_scale(args))
        print(f"wrote {len(files)} files to {args.out}:")
        for name in files:
            print(f"  {name}")
        return 0
    if args.experiment == "all":
        for name, fn in _EXPERIMENTS.items():
            print(f"\n{'=' * 72}\n>> {name}\n{'=' * 72}")
            print(fn(args))
        return 0
    print(_EXPERIMENTS[args.experiment](args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
