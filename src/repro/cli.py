"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro <experiment> [--scale small|medium|large] [options]
    repro fig4 --scale medium
    repro fig5 --profile               # append a stage breakdown
    repro stats --experiment fig5      # live telemetry + exporters

Experiment names come from :mod:`repro.experiments.registry`; the parser is
built from that table, so registering a new experiment there is all it
takes to appear here (and in ``repro all``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.registry import EXPERIMENTS, run_experiment


def _scale_arg(parser: argparse.ArgumentParser, default: str = "medium") -> None:
    parser.add_argument(
        "--scale",
        choices=("small", "medium", "large"),
        default=default,
        help="experiment scale (see DESIGN.md section 5)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the workload seed (default: the scale's seed)",
    )


def _experiment_args(parser: argparse.ArgumentParser, default: str) -> None:
    _scale_arg(parser, default)
    parser.add_argument(
        "--profile",
        action="store_true",
        help="collect per-stage wall times and append the breakdown",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="run bitmap filters on the sharded backend with N worker "
             "processes (results are bit-for-bit identical to serial; "
             "see docs/parallel.md)",
    )


def _resolve_scale(args: argparse.Namespace):
    """The selected scale, with an optional --seed override applied."""
    from dataclasses import replace

    from repro.experiments.config import get_scale

    scale = get_scale(args.scale)
    if getattr(args, "seed", None) is not None:
        scale = replace(scale, seed=args.seed)
    return scale


def _run_one(name: str, args: argparse.Namespace) -> str:
    result = run_experiment(
        name,
        args.scale,
        seed=getattr(args, "seed", None),
        profile=getattr(args, "profile", False),
    )
    return result.report()


def _cmd_stats(args: argparse.Namespace) -> str:
    """Run an experiment under a live registry with periodic summaries.

    While the run progresses, a one-line summary of admits/drops/marks/
    rotations prints every ``--every`` simulated Δt ticks.  Afterwards the
    full registry is exported in Prometheus text format and as a JSON-lines
    time series (inline, or to ``--prom-out``/``--jsonl-out`` files).
    """
    from repro.telemetry import (
        JsonLinesSampler,
        LiveSummarySampler,
        to_prometheus,
        use_registry,
    )

    with use_registry() as registry:
        jsonl = JsonLinesSampler()
        registry.add_sampler(jsonl)
        registry.add_sampler(LiveSummarySampler(every=args.every))
        result = run_experiment(
            args.experiment_name,
            args.scale,
            seed=args.seed,
            profile=args.profile,
        )
        prom_text = to_prometheus(registry)
        jsonl_text = jsonl.to_jsonl()

    sections = [result.report()]
    if args.prom_out:
        with open(args.prom_out, "w") as fh:
            fh.write(prom_text)
        sections.append(f"wrote Prometheus metrics to {args.prom_out}")
    else:
        sections.append("--- prometheus ---\n" + prom_text.rstrip("\n"))
    if args.jsonl_out:
        with open(args.jsonl_out, "w") as fh:
            fh.write(jsonl_text)
        sections.append(f"wrote {len(jsonl.rows)} JSON-lines samples "
                        f"to {args.jsonl_out}")
    else:
        sections.append("--- jsonl ---\n" + jsonl_text.rstrip("\n"))
    return "\n\n".join(sections)


def _cmd_trace_gen(args: argparse.Namespace) -> str:
    from repro.traffic.generator import ClientNetworkWorkload, WorkloadConfig

    config = WorkloadConfig(duration=args.duration, target_pps=args.pps,
                            seed=args.seed)
    trace = ClientNetworkWorkload(config).generate()
    trace.save_npz(args.out)
    lines = [f"wrote {args.out}: {trace.summary().describe()}"]
    if args.pcap:
        from repro.net.pcap import write_pcap

        count = write_pcap(trace.packets, args.pcap)
        lines.append(f"wrote {args.pcap}: {count} packets (linktype RAW)")
    return "\n".join(lines)


def _cmd_filter(args: argparse.Namespace) -> str:
    """Run a bitmap filter over a saved trace/capture, write the survivors."""
    from repro.core.bitmap_filter import BitmapFilter, FilterConfig
    from repro.net.address import AddressSpace
    from repro.traffic.trace import Trace

    if args.input.endswith(".pcap"):
        from repro.net.pcap import read_pcap

        if not args.protected:
            raise SystemExit("--protected is required for pcap input "
                             "(e.g. --protected 172.16.0.0/24,172.16.1.0/24)")
        packets = read_pcap(args.input).sorted_by_time()
        protected = AddressSpace(args.protected.split(","))
        trace = Trace(packets, protected)
    else:
        trace = Trace.load_npz(args.input)
        if args.protected:
            trace = Trace(trace.packets, AddressSpace(args.protected.split(",")),
                          trace.metadata)

    config = FilterConfig(order=args.order, num_vectors=args.k,
                          num_hashes=args.m,
                          rotation_interval=args.dt, seed=args.hash_seed)
    filt = BitmapFilter.from_config(config, trace.protected)
    verdicts = filt.process_batch(trace.packets, exact=True)

    lines = [
        f"filter: {filt}",
        f"packets: {len(trace.packets)}  passed: {int(verdicts.sum())}  "
        f"dropped: {int((~verdicts).sum())}",
        f"incoming drop rate: {filt.stats.incoming_drop_rate * 100:.2f}%",
        f"peak utilization: {filt.peak_utilization:.4f}",
    ]
    if args.out:
        survivors = trace.packets[verdicts]
        if args.out.endswith(".pcap"):
            from repro.net.pcap import write_pcap

            write_pcap(survivors, args.out)
        else:
            Trace(survivors, trace.protected,
                  dict(trace.metadata)).save_npz(args.out)
        lines.append(f"wrote {int(verdicts.sum())} surviving packets to {args.out}")
    return "\n".join(lines)


def _cmd_trace_info(args: argparse.Namespace) -> str:
    from repro.analysis.composition import composition
    from repro.traffic.trace import Trace

    trace = Trace.load_npz(args.path)
    nets = ", ".join(str(net) for net in trace.protected.networks)
    report = composition(trace.packets, trace.protected)
    return (f"{args.path}: {trace.summary().describe()}\n"
            f"protected networks: {nets}\n"
            f"metadata: {trace.metadata}\n"
            f"\ncomposition:\n{report.describe()}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the tables and figures of 'Mitigating Active Attacks "
            "Towards Client Networks Using the Bitmap Filter' (DSN 2006)."
        ),
    )
    sub = parser.add_subparsers(dest="experiment", required=True)
    for spec in EXPERIMENTS.values():
        p = sub.add_parser(spec.name, help=spec.help)
        _experiment_args(p, spec.default_scale)
    p = sub.add_parser("all", help="regenerate every experiment")
    _experiment_args(p, "small")

    stats = sub.add_parser(
        "stats",
        help="run an experiment with live telemetry and export the metrics",
    )
    stats.add_argument("--experiment", dest="experiment_name", required=True,
                       choices=tuple(EXPERIMENTS),
                       help="which experiment to instrument")
    stats.add_argument("--every", type=int, default=1,
                       help="print a live summary every N simulated Δt ticks")
    stats.add_argument("--prom-out", default=None,
                       help="write Prometheus text-format metrics here "
                            "(default: inline)")
    stats.add_argument("--jsonl-out", default=None,
                       help="write the JSON-lines time series here "
                            "(default: inline)")
    _experiment_args(stats, "small")

    gen = sub.add_parser("trace-gen", help="generate a synthetic trace file")
    gen.add_argument("--duration", type=float, default=60.0)
    gen.add_argument("--pps", type=float, default=400.0)
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--out", default="trace.npz")
    gen.add_argument("--pcap", default=None,
                     help="also export a libpcap capture (opens in Wireshark)")

    info = sub.add_parser("trace-info", help="summarize a saved trace")
    info.add_argument("path")

    filt = sub.add_parser(
        "filter", help="run a bitmap filter over a saved trace or pcap"
    )
    filt.add_argument("input", help=".npz trace or .pcap capture")
    filt.add_argument("--out", default=None,
                      help="write surviving packets here (.npz or .pcap)")
    filt.add_argument("--protected", default=None,
                      help="comma-separated CIDRs (required for pcap input)")
    filt.add_argument("--order", "-n", type=int, default=20)
    filt.add_argument("--k", type=int, default=4)
    filt.add_argument("--m", type=int, default=3)
    filt.add_argument("--dt", type=float, default=5.0)
    filt.add_argument("--hash-seed", type=int, default=0x5EED)

    export = sub.add_parser("export", help="dump every figure's data as CSV")
    export.add_argument("--out", default="figures")
    _scale_arg(export, "small")
    return parser


def _backend_scope(args: argparse.Namespace):
    """The execution-backend context the run executes under.

    ``--workers N`` installs the sharded backend for the whole command, so
    every ``create_filter`` call inside the experiments fans out; without
    it this is a no-op scope.
    """
    workers = getattr(args, "workers", None)
    if workers is None:
        from contextlib import nullcontext

        return nullcontext()
    from repro.parallel import use_backend

    return use_backend(name="sharded", workers=workers)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    with _backend_scope(args):
        return _dispatch(args)


def _dispatch(args: argparse.Namespace) -> int:
    if args.experiment == "trace-gen":
        print(_cmd_trace_gen(args))
        return 0
    if args.experiment == "trace-info":
        print(_cmd_trace_info(args))
        return 0
    if args.experiment == "filter":
        print(_cmd_filter(args))
        return 0
    if args.experiment == "stats":
        print(_cmd_stats(args))
        return 0
    if args.experiment == "export":
        from repro.experiments.export import export_figures

        files = export_figures(args.out, _resolve_scale(args))
        print(f"wrote {len(files)} files to {args.out}:")
        for name in files:
            print(f"  {name}")
        return 0
    if args.experiment == "all":
        for name in EXPERIMENTS:
            print(f"\n{'=' * 72}\n>> {name}\n{'=' * 72}")
            print(_run_one(name, args))
        return 0
    print(_run_one(args.experiment, args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
